#!/usr/bin/env python3
"""Scenario: provisioning — pay with buffers or pay with bandwidth?

The paper's headline interpretation (Section 1, "Implications"): if the number
of distinct destinations served by a line grows by a factor ``alpha`` while
the offered load per link stays fixed, a designer can avoid drops by either

* multiplying every buffer by ``alpha`` (keep PPTS, keep link speed), or
* multiplying buffers *and* link bandwidth by only ``O(log alpha)``
  (switch to HPTS with ``ceil(log2 alpha)`` levels).

This example prints the analytic tradeoff curve from the bounds and then
validates two points of it empirically with simulations.

Run with::

    python examples/space_bandwidth_tradeoff.py
"""

from __future__ import annotations

from repro import format_table
from repro.analysis.tradeoff import analytic_tradeoff_curve, empirical_tradeoff_point
from repro.core import bounds


def analytic_table() -> None:
    base_destinations = 4
    sigma, rho = 2, 0.5
    points = analytic_tradeoff_curve(
        base_destinations, scale_factors=[2, 4, 8, 16, 32, 64], sigma=sigma, rho=rho
    )
    rows = [
        {
            "alpha": point.scale_factor,
            "destinations": point.destinations,
            "space_only_buffers": point.space_only_buffers,
            "log_alpha_levels": point.bandwidth_multiplier,
            "space+bw buffers": round(point.space_bandwidth_buffers, 1),
            "space saving": round(point.space_saving, 2),
        }
        for point in points
    ]
    print(
        format_table(
            rows,
            title=(
                "Analytic tradeoff: scale destinations by alpha starting from "
                f"d = {base_destinations} (sigma = {sigma})"
            ),
        )
    )


def empirical_points() -> None:
    rows = []
    for d in (8, 32):
        rows.append(
            empirical_tradeoff_point(
                num_nodes=64, num_destinations=d, rho=1.0, sigma=1, num_rounds=250
            )
        )
    print()
    print(
        format_table(
            rows,
            title="Empirical check: measured occupancy on round-robin traffic",
        )
    )


def threshold_note() -> None:
    d = 1024
    threshold = bounds.log_destination_threshold_rate(d)
    space = bounds.destination_upper_bound(d, threshold, 0)
    print(
        f"\nAt rate rho <= 1/log2(d) = {threshold:.3f}, even d = {d} destinations "
        f"need only ~{space:.0f} buffers\n(the O(log d) regime highlighted in the "
        "introduction)."
    )


def main() -> None:
    analytic_table()
    empirical_points()
    threshold_note()


if __name__ == "__main__":
    main()
