#!/usr/bin/env python3
"""Scenario: information gathering (convergecast) on sensor trees.

Proposition 3.5 covers directed trees whose edges all point toward the root —
the classic "information gathering" topology of sensor networks and
aggregation overlays: leaves produce readings that must reach collection
points (the root and selected internal aggregators).

This example runs the tree variant of PPTS on three tree shapes with the same
adversarial traffic intensity and shows that the buffer requirement tracks the
*destination depth* ``d'`` (the maximum number of collection points on any
leaf-root path), not the total number of nodes or destinations.

Each tree is a declarative ``TopologySpec`` (a named family plus params); the
session's topology cache shares the built tree between aggregator selection
and the run itself.

Run with::

    python examples/tree_information_gathering.py
"""

from __future__ import annotations

from repro import Scenario, Session, TopologySpec, format_table


def scenario(session, name, tree_spec, pick_destinations, rho=1.0, sigma=2,
             num_rounds=200) -> dict:
    tree = session.topology(tree_spec)
    destinations = pick_destinations(tree)
    builder = Scenario(tree_spec).adversary(
        "convergecast", rho=rho, sigma=sigma, rounds=num_rounds,
        destinations=destinations,
    )
    if destinations == [tree.root]:
        builder.algorithm("tree-pts")
    else:
        builder.algorithm("tree-ppts", destinations=destinations)
    report = builder.named(name).run(session)
    return {
        "tree": name,
        "nodes": len(tree.nodes),
        "destinations": len(destinations),
        "d_prime": tree.destination_depth(destinations),
        "algorithm": report.algorithm,
        "max_occupancy": report.result.max_occupancy,
        "bound": report.bound,
        "within_bound": report.within_bound,
    }


def main() -> None:
    session = Session()
    rows = [
        # A star: many sensors, one sink — the easiest case (d' = 1).
        scenario(
            session, "star (24 leaves)",
            TopologySpec.tree("star", num_leaves=24),
            lambda tree: [tree.root],
        ),
        # A binary aggregation tree with collection points on one root-leaf path.
        scenario(
            session, "binary depth 4",
            TopologySpec.tree("binary", depth=4),
            lambda tree: [0, 1, 3, 7],
        ),
        # A caterpillar where *every* spine node aggregates: the worst case,
        # since a single leaf-root path passes through all of them
        # (d' = spine length).
        scenario(
            session, "caterpillar (8-spine)",
            TopologySpec.tree("caterpillar", spine_length=8, legs_per_node=2),
            lambda tree: [v for v in tree.nodes if tree.children(v)],
        ),
        # A random recursive tree with a few random aggregators.
        scenario(
            session, "random (40 nodes)",
            TopologySpec.tree("random", num_nodes=40, seed=7),
            lambda tree: [v for v in tree.nodes if tree.children(v)][:5],
        ),
    ]

    print(
        format_table(
            rows,
            title="Tree information gathering: buffer usage tracks the destination depth d'",
        )
    )
    assert all(row["within_bound"] for row in rows)
    print(
        "\nThe bound 1 + d' + sigma depends only on how many collection points "
        "stack up along a single\nleaf-root path — a star with 24 sensors needs "
        "no more buffering than a 3-node chain."
    )


if __name__ == "__main__":
    main()
