#!/usr/bin/env python3
"""Scenario: information gathering (convergecast) on sensor trees.

Proposition 3.5 covers directed trees whose edges all point toward the root —
the classic "information gathering" topology of sensor networks and
aggregation overlays: leaves produce readings that must reach collection
points (the root and selected internal aggregators).

This example runs the tree variant of PPTS on three tree shapes with the same
adversarial traffic intensity and shows that the buffer requirement tracks the
*destination depth* ``d'`` (the maximum number of collection points on any
leaf-root path), not the total number of nodes or destinations.

Run with::

    python examples/tree_information_gathering.py
"""

from __future__ import annotations

from repro import (
    TreeParallelPeakToSink,
    TreePeakToSink,
    binary_tree,
    bounds,
    caterpillar_tree,
    format_table,
    random_tree,
    run_simulation,
    star_tree,
)
from repro.adversary import tree_convergecast_stress


def scenario(name, tree, destinations, rho=1.0, sigma=2, num_rounds=200) -> dict:
    pattern = tree_convergecast_stress(
        tree, rho, sigma, num_rounds, destinations=destinations
    )
    if len(destinations) == 1 and destinations[0] == tree.root:
        algorithm = TreePeakToSink(tree)
        bound = bounds.pts_upper_bound(sigma)
    else:
        algorithm = TreeParallelPeakToSink(tree, destinations=destinations)
        bound = bounds.tree_ppts_upper_bound(
            tree.destination_depth(destinations), sigma
        )
    result = run_simulation(tree, algorithm, pattern)
    return {
        "tree": name,
        "nodes": len(tree.nodes),
        "destinations": len(destinations),
        "d_prime": tree.destination_depth(destinations),
        "algorithm": algorithm.name,
        "max_occupancy": result.max_occupancy,
        "bound": bound,
        "within_bound": result.max_occupancy <= bound,
    }


def main() -> None:
    rows = []

    # A star: many sensors, one sink — the easiest case (d' = 1).
    star = star_tree(24)
    rows.append(scenario("star (24 leaves)", star, [star.root]))

    # A binary aggregation tree with collection points on one root-leaf path.
    btree = binary_tree(4)
    aggregators = [0, 1, 3, 7]
    rows.append(scenario("binary depth 4", btree, aggregators))

    # A caterpillar where *every* spine node aggregates: the worst case, since
    # a single leaf-root path passes through all of them (d' = spine length).
    caterpillar = caterpillar_tree(spine_length=8, legs_per_node=2)
    spine = [v for v in caterpillar.nodes if caterpillar.children(v)]
    rows.append(scenario("caterpillar (8-spine)", caterpillar, spine))

    # A random recursive tree with a few random aggregators.
    tree = random_tree(40, seed=7)
    internal = [v for v in tree.nodes if tree.children(v)][:5]
    rows.append(scenario("random (40 nodes)", tree, internal))

    print(
        format_table(
            rows,
            title="Tree information gathering: buffer usage tracks the destination depth d'",
        )
    )
    assert all(row["within_bound"] for row in rows)
    print(
        "\nThe bound 1 + d' + sigma depends only on how many collection points "
        "stack up along a single\nleaf-root path — a star with 24 sensors needs "
        "no more buffering than a 3-node chain."
    )


if __name__ == "__main__":
    main()
