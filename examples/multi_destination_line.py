#!/usr/bin/env python3
"""Scenario: a store-and-forward line card serving many egress ports.

The paper's motivating setting: packets travel along a line of routers toward
``d`` distinct destinations, with per-link demand bounded by ``(rho, sigma)``.
The question a system designer asks is *how much SRAM per router* is enough to
guarantee zero drops.

This example sweeps the number of destinations and compares three designs on
identical traffic:

* **PPTS** — the paper's algorithm, guaranteed ``1 + d + sigma`` buffers,
* **HPTS** — the hierarchical algorithm at reduced per-level rate, guaranteed
  ``ell * n^(1/ell) + sigma + 1`` buffers,
* **Greedy FIFO** — the classical work-conserving baseline, with no guarantee.

Each design/destination-count pair is one declarative ``ScenarioSpec``; the
whole sweep is a single ``Session.run_many`` batch.

Run with::

    python examples/multi_destination_line.py
"""

from __future__ import annotations

from repro import Scenario, Session, bounds, format_table


def run_sweep(num_nodes: int = 64, sigma: int = 2, num_rounds: int = 300) -> list:
    levels = 2
    branching = int(round(num_nodes ** (1.0 / levels)))
    session = Session()
    rows = []
    for d in (2, 4, 8, 16, 32):
        # Full-rate traffic for PPTS and the greedy baseline; half-rate
        # traffic for HPTS (the ell = 2 hierarchy needs rho <= 1/2; in
        # deployment terms: double the link bandwidth).
        full_rate = dict(rho=1.0, sigma=sigma, rounds=num_rounds, num_destinations=d)
        half_rate = dict(
            rho=1.0 / levels, sigma=sigma, rounds=num_rounds, num_destinations=d
        )
        ppts, greedy, hpts = session.run_many(
            [
                Scenario.line(num_nodes).algorithm("ppts")
                .adversary("round-robin", **full_rate).build(),
                Scenario.line(num_nodes).algorithm("greedy", policy="FIFO")
                .adversary("round-robin", **full_rate).build(),
                Scenario.line(num_nodes)
                .algorithm("hpts", levels=levels, branching=branching, rho=1.0 / levels)
                .adversary("round-robin", **half_rate).build(),
            ]
        )
        rows.append(
            {
                "destinations": d,
                "ppts_measured": ppts.result.max_occupancy,
                "ppts_bound": bounds.ppts_upper_bound(d, sigma),
                "hpts_measured": hpts.result.max_occupancy,
                "hpts_bound": round(
                    bounds.hpts_upper_bound(num_nodes, levels, sigma), 1
                ),
                "greedy_fifo": greedy.result.max_occupancy,
            }
        )
    return rows


def main() -> None:
    rows = run_sweep()
    print(
        format_table(
            rows,
            title=(
                "Buffer space needed as the number of destinations grows "
                "(line of 64 routers, sigma = 2)"
            ),
        )
    )
    print(
        "\nReading the table: the PPTS guarantee (and its measured usage) grows "
        "linearly with d,\nwhile the HPTS guarantee stays flat at "
        "ell * n^(1/ell) + sigma + 1 in exchange for running\nat half rate — "
        "the space-bandwidth tradeoff in the paper's title."
    )


if __name__ == "__main__":
    main()
