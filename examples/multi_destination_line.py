#!/usr/bin/env python3
"""Scenario: a store-and-forward line card serving many egress ports.

The paper's motivating setting: packets travel along a line of routers toward
``d`` distinct destinations, with per-link demand bounded by ``(rho, sigma)``.
The question a system designer asks is *how much SRAM per router* is enough to
guarantee zero drops.

This example sweeps the number of destinations and compares three designs on
identical traffic:

* **PPTS** — the paper's algorithm, guaranteed ``1 + d + sigma`` buffers,
* **HPTS** — the hierarchical algorithm at reduced per-level rate, guaranteed
  ``ell * n^(1/ell) + sigma + 1`` buffers,
* **Greedy FIFO** — the classical work-conserving baseline, with no guarantee.

Run with::

    python examples/multi_destination_line.py
"""

from __future__ import annotations

from repro import (
    GreedyForwarding,
    HierarchicalPeakToSink,
    LineTopology,
    ParallelPeakToSink,
    bounds,
    format_table,
    run_simulation,
)
from repro.adversary import round_robin_destination_stress
from repro.baselines import fifo


def run_sweep(num_nodes: int = 64, sigma: int = 2, num_rounds: int = 300) -> list:
    line = LineTopology(num_nodes)
    levels = 2
    branching = int(round(num_nodes ** (1.0 / levels)))
    rows = []
    for d in (2, 4, 8, 16, 32):
        # Full-rate traffic for PPTS and the greedy baseline.
        pattern = round_robin_destination_stress(line, 1.0, sigma, num_rounds, d)
        ppts = run_simulation(line, ParallelPeakToSink(line), pattern)
        greedy = run_simulation(line, GreedyForwarding(line, fifo), pattern)

        # Half-rate traffic for HPTS (the ell = 2 hierarchy needs rho <= 1/2;
        # in deployment terms: double the link bandwidth).
        hpts_pattern = round_robin_destination_stress(
            line, 1.0 / levels, sigma, num_rounds, d
        )
        hpts = run_simulation(
            line,
            HierarchicalPeakToSink(line, levels, branching, rho=1.0 / levels),
            hpts_pattern,
        )

        rows.append(
            {
                "destinations": d,
                "ppts_measured": ppts.max_occupancy,
                "ppts_bound": bounds.ppts_upper_bound(d, sigma),
                "hpts_measured": hpts.max_occupancy,
                "hpts_bound": round(
                    bounds.hpts_upper_bound(num_nodes, levels, sigma), 1
                ),
                "greedy_fifo": greedy.max_occupancy,
            }
        )
    return rows


def main() -> None:
    rows = run_sweep()
    print(
        format_table(
            rows,
            title=(
                "Buffer space needed as the number of destinations grows "
                "(line of 64 routers, sigma = 2)"
            ),
        )
    )
    print(
        "\nReading the table: the PPTS guarantee (and its measured usage) grows "
        "linearly with d,\nwhile the HPTS guarantee stays flat at "
        "ell * n^(1/ell) + sigma + 1 in exchange for running\nat half rate — "
        "the space-bandwidth tradeoff in the paper's title."
    )


if __name__ == "__main__":
    main()
