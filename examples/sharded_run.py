#!/usr/bin/env python3
"""Sharded execution: split one line across worker processes, identically.

The sharded engine (``docs/SHARDING.md``) partitions a line scenario into
contiguous segments, runs one engine per worker process, and exchanges
boundary packets once per round through a compact columnar hand-off record.
The headline property is *bit-identical results*: ``shards=k`` computes
exactly what ``shards=1`` computes.  This example

1. runs a multi-destination streaming scenario single-process,
2. re-runs it with ``shards=2`` and ``shards=4`` — same spec, one policy
   field — and verifies every result is identical,
3. takes a mid-run checkpoint *per segment*, shows the coordinator stitch
   it into one global snapshot, and resumes that snapshot in-process,
   again bit-identically.

The same switch is available from the shell::

    python -m repro simulate --algorithm greedy --nodes 4096 \
        --rounds 1500 --seed 7 --shards 4

Run with::

    python examples/sharded_run.py
"""

from __future__ import annotations

import os
import tempfile

from repro import Scenario, Session
from repro.network.sharded import plan_segments, run_sharded


def build_scenario(shards: int | None = None, checkpoint_path: str | None = None):
    """A streaming greedy run with enough traffic to keep rounds busy."""
    scenario = (
        Scenario.line(2048)
        .algorithm("greedy")
        .adversary(
            "trickle", rho=1.0, sigma=1.0, rounds=1200, stream=True,
            destinations=[512, 1024, 2047],
        )
        .policy(history="streaming", drain=False, seed=7)
        .named("sharded-demo")
    )
    if shards is not None:
        scenario.policy(shards=shards)
    if checkpoint_path is not None:
        scenario.policy(checkpoint_every=400, checkpoint_path=checkpoint_path)
    return scenario.build()


def main() -> None:
    session = Session()

    print("=== 1. single-process reference ===")
    reference = session.run(build_scenario()).result
    print(f"    injected={reference.packets_injected} "
          f"delivered={reference.packets_delivered} "
          f"max_occupancy={reference.max_occupancy}")

    print("=== 2. the same scenario, sharded ===")
    for shards in (2, 4):
        segments = plan_segments(2048, shards)
        report = session.run(build_scenario(shards=shards))
        identical = report.result == reference
        print(f"    shards={shards}: segments={segments[:2]}... "
              f"identical={identical}")
        assert identical
    print("    sharded results are bit-identical to the single-process run")

    print("=== 3. per-segment checkpoints stitch into one global snapshot ===")
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "sharded.ckpt")
        result, _extras = run_sharded(
            build_scenario(checkpoint_path=path), shards=3, transport="processes"
        )
        assert result == reference
        leftover = sorted(name for name in os.listdir(scratch) if ".seg" in name)
        print(f"    stitched global snapshot: {os.path.basename(path)} "
              f"({os.path.getsize(path) / 1e3:.1f} KB); "
              f"per-segment scaffolding cleaned up: {not leftover}")
        resumed = Session().resume(path)
        assert resumed.result == reference
        print("    resumed from the stitched snapshot: "
              "bit-identical to the uninterrupted run")


if __name__ == "__main__":
    main()
