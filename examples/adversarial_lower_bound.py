#!/usr/bin/env python3
"""Scenario: the Section 5 adversary in action — no protocol escapes the bound.

Theorem 5.1 constructs a ``(rho, 1)``-bounded injection pattern that forces
*every* forwarding protocol (even an offline one) to let some buffer grow to
``Omega(((ell+1) rho - 1) / (2 ell) * n^(1/ell))``.  This example builds the
construction, shows how its "front" F(t) sweeps leftward phase by phase, and
runs several very different algorithms against it — they all pay.

Run with::

    python examples/adversarial_lower_bound.py
"""

from __future__ import annotations

from repro import (
    LowerBoundConstruction,
    Scenario,
    Session,
    format_table,
    tightest_sigma,
)


def describe_construction(construction: LowerBoundConstruction) -> None:
    print(
        f"Construction: m = {construction.branching}, ell = {construction.levels}, "
        f"rho = {construction.rho}\n"
        f"  line length n = (ell+1) m^ell = {construction.num_nodes}\n"
        f"  {construction.num_phases} phases of {construction.phase_length} rounds\n"
        f"  theoretical lower bound on max occupancy: "
        f"{construction.theoretical_bound():.2f}\n"
    )
    rows = []
    for phase in range(0, construction.num_phases, max(1, construction.num_phases // 6)):
        plan = construction.phase_plan(phase)
        rows.append(
            {
                "phase": phase,
                "front F(t)": plan.sites[0],
                "injection sites": " ".join(str(s) for s in plan.sites),
            }
        )
    print(format_table(rows, title="The front sweeps left as phases advance"))
    print()


def run_all_protocols(construction: LowerBoundConstruction) -> None:
    topology = construction.topology()
    pattern = construction.build_pattern()
    sigma = tightest_sigma(pattern, topology, construction.rho)
    print(
        f"Injection pattern: {len(pattern)} packets, measured burstiness "
        f"sigma = {sigma:.2f} at rate rho = {construction.rho}\n"
    )
    protocols = {
        "PPTS": ("ppts", {}),
        "Greedy-FIFO": ("greedy", {"policy": "FIFO"}),
        "Greedy-LIS": ("greedy", {"policy": "LIS"}),
        "Greedy-NTG": ("greedy", {"policy": "NTG"}),
    }
    session = Session()
    specs = [
        Scenario.line(construction.num_nodes)
        .algorithm(algorithm, **params)
        .adversary(
            "lower-bound", rho=construction.rho, sigma=1.0,
            rounds=construction.num_rounds,
            branching=construction.branching, levels=construction.levels,
        )
        .drain(False)
        .named(name)
        .build()
        for name, (algorithm, params) in protocols.items()
    ]
    rows = []
    for name, report in zip(protocols, session.run_many(specs)):
        rows.append(
            {
                "protocol": name,
                "max_occupancy": report.result.max_occupancy,
                "theoretical_floor": round(construction.theoretical_bound(), 2),
                "above_floor": report.result.max_occupancy
                >= construction.theoretical_bound(),
            }
        )
    print(
        format_table(
            rows,
            title="Every protocol is forced above the Theorem 5.1 floor",
        )
    )
    assert all(row["above_floor"] for row in rows)


def main() -> None:
    construction = LowerBoundConstruction(branching=4, levels=2, rho=0.75)
    describe_construction(construction)
    run_all_protocols(construction)


if __name__ == "__main__":
    main()
