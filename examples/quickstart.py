#!/usr/bin/env python3
"""Quickstart: declare a scenario, run it, check the paper's bounds.

Every simulation in this library is one declarative object — a
``ScenarioSpec`` composing *topology x adversary x algorithm x run policy* —
and the fluent ``Scenario`` builder is the quickest way to make one:

1. pick a topology entry point (``Scenario.line(n)``, ``Scenario.tree(...)``),
2. pick a registered forwarding algorithm (``.algorithm("pts")``),
3. pick a registered adversary with its ``(rho, sigma)`` envelope
   (``.adversary("burst", rho=1.0, sigma=3, rounds=200)``),
4. ``.run()`` — and compare the measured worst-case buffer occupancy with the
   closed-form bound from the paper, which the report carries along.

Specs serialise to JSON (``spec.to_json()``), so any run below can also be
replayed from the command line::

    python -m repro simulate --spec scenario.json --json

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario, Session, format_table


def single_destination_demo(session: Session) -> dict:
    """Proposition 3.1: one destination, occupancy stays below 2 + sigma."""
    report = (
        Scenario.line(64)
        .algorithm("pts")
        .adversary("burst", rho=1.0, sigma=3, rounds=200)
        .named("single destination (PTS)")
        .run(session)
    )
    return report.as_row()


def multi_destination_demo(session: Session) -> dict:
    """Proposition 3.2: d destinations, occupancy stays below 1 + d + sigma."""
    report = (
        Scenario.line(64)
        .algorithm("ppts")
        .adversary("round-robin", rho=1.0, sigma=2, rounds=300, num_destinations=12)
        .named("12 destinations (PPTS)")
        .run(session)
    )
    return report.as_row()


def hierarchical_demo(session: Session) -> dict:
    """Theorem 4.1: ell levels at rate <= 1/ell, occupancy <= ell n^(1/ell) + sigma + 1."""
    branching, levels = 4, 3
    spec = (
        Scenario.line(branching**levels)
        .algorithm("hpts", levels=levels, branching=branching, rho=1.0 / levels)
        .adversary(
            "hierarchy", rho=1.0 / levels, sigma=2, rounds=300,
            branching=branching, levels=levels,
        )
        .named(f"hierarchy m={branching}, ell={levels} (HPTS)")
        .build()
    )
    # .build() returns the frozen spec: inspect it, save it, then run it.
    assert spec == type(spec).from_json(spec.to_json())  # JSON round-trip
    return session.run(spec).as_row()


def main() -> None:
    session = Session()  # one session = shared topology cache across runs
    rows = [
        single_destination_demo(session),
        multi_destination_demo(session),
        hierarchical_demo(session),
    ]
    print(
        format_table(
            rows,
            columns=["scenario", "packets", "max_occupancy", "bound", "within_bound"],
            title="Measured worst-case buffer occupancy vs. the paper's bounds",
        )
    )
    assert all(row["within_bound"] for row in rows)
    print("\nAll three bounds hold on these workloads.")


if __name__ == "__main__":
    main()
