#!/usr/bin/env python3
"""Quickstart: route adversarial traffic on a line and check the paper's bounds.

This example walks through the library's core loop in four steps:

1. build a topology (a directed line of buffers),
2. build a ``(rho, sigma)``-bounded adversary,
3. run a forwarding algorithm (PTS, PPTS, HPTS) against it,
4. compare the measured worst-case buffer occupancy with the closed-form
   bound from the paper.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    HierarchicalPeakToSink,
    LineTopology,
    ParallelPeakToSink,
    PeakToSink,
    bounds,
    check_bounded,
    format_table,
    run_simulation,
)
from repro.adversary import (
    pts_burst_stress,
    round_robin_destination_stress,
    hierarchy_stress,
)


def single_destination_demo() -> dict:
    """Proposition 3.1: one destination, occupancy stays below 2 + sigma."""
    line = LineTopology(64)
    rho, sigma = 1.0, 3
    pattern = pts_burst_stress(line, rho, sigma, num_rounds=200)

    # The generator guarantees boundedness; verify it anyway with the
    # independent checker (Definition 2.1).
    report = check_bounded(pattern, line, rho, sigma)
    assert report.bounded, "stress generator produced an over-budget pattern"

    result = run_simulation(line, PeakToSink(line), pattern)
    return {
        "scenario": "single destination (PTS)",
        "packets": result.packets_injected,
        "max_occupancy": result.max_occupancy,
        "bound": bounds.pts_upper_bound(sigma),
    }


def multi_destination_demo() -> dict:
    """Proposition 3.2: d destinations, occupancy stays below 1 + d + sigma."""
    line = LineTopology(64)
    rho, sigma, d = 1.0, 2, 12
    pattern = round_robin_destination_stress(line, rho, sigma, 300, d)
    result = run_simulation(line, ParallelPeakToSink(line), pattern)
    return {
        "scenario": f"{d} destinations (PPTS)",
        "packets": result.packets_injected,
        "max_occupancy": result.max_occupancy,
        "bound": bounds.ppts_upper_bound(d, sigma),
    }


def hierarchical_demo() -> dict:
    """Theorem 4.1: ell levels at rate <= 1/ell, occupancy <= ell n^(1/ell) + sigma + 1."""
    branching, levels = 4, 3
    line = LineTopology(branching**levels)
    rho, sigma = 1.0 / levels, 2
    pattern = hierarchy_stress(line, rho, sigma, 300, branching, levels)
    algorithm = HierarchicalPeakToSink(line, levels, branching, rho=rho)
    result = run_simulation(line, algorithm, pattern)
    return {
        "scenario": f"hierarchy m={branching}, ell={levels} (HPTS)",
        "packets": result.packets_injected,
        "max_occupancy": result.max_occupancy,
        "bound": round(bounds.hpts_upper_bound(line.num_nodes, levels, sigma), 2),
    }


def main() -> None:
    rows = [single_destination_demo(), multi_destination_demo(), hierarchical_demo()]
    for row in rows:
        row["within_bound"] = row["max_occupancy"] <= row["bound"]
    print(
        format_table(
            rows,
            columns=["scenario", "packets", "max_occupancy", "bound", "within_bound"],
            title="Measured worst-case buffer occupancy vs. the paper's bounds",
        )
    )
    assert all(row["within_bound"] for row in rows)
    print("\nAll three bounds hold on these workloads.")


if __name__ == "__main__":
    main()
