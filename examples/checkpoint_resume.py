#!/usr/bin/env python3
"""Checkpoint/resume: survive a crash in the middle of a long run.

A horizon-scale simulation that dies at 90% used to lose everything; with
``repro.checkpoint`` the run leaves periodic snapshots behind and picks up
bit-identically from the last one.  This example

1. runs a streaming scenario uninterrupted to get the reference result,
2. runs the same scenario with ``checkpoint_every`` set, so a snapshot file
   is dropped every 500 injection rounds,
3. pretends the process died: resumes from the file alone (the snapshot
   embeds the scenario spec) and drives the run to completion,
4. verifies the resumed result is *identical* to the uninterrupted one.

The same round trip is available from the shell::

    python -m repro simulate --algorithm pts --rounds 2000 --seed 7 \
        --checkpoint-every 500 --checkpoint run.ckpt
    python -m repro simulate --resume run.ckpt

Run with::

    python examples/checkpoint_resume.py
"""

from __future__ import annotations

import os
import tempfile

from repro import Scenario, Session, load_checkpoint


def build_scenario(checkpoint_path: str | None = None):
    """A memory-lean streaming run: lazy trickle injections on a 4096-line."""
    scenario = (
        Scenario.line(4096)
        .algorithm("pts")
        .adversary("trickle", rho=1.0, sigma=1.0, rounds=2000, stream=True)
        .policy(history="streaming", drain=False, seed=7)
        .named("checkpoint-demo")
    )
    if checkpoint_path is not None:
        scenario.policy(checkpoint_every=500, checkpoint_path=checkpoint_path)
    return scenario.build()


def main() -> None:
    session = Session()

    print("running uninterrupted reference ...")
    reference = session.run(build_scenario())

    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "demo.ckpt")
        print("running again with checkpoint_every=500 ...")
        session.run(build_scenario(checkpoint_path=path))

        snapshot = load_checkpoint(path)
        size_kb = os.path.getsize(path) / 1024
        print(
            f"last snapshot: round {snapshot.round}, {size_kb:.1f} KiB "
            f"(spec hash {snapshot.spec_hash})"
        )

        print("simulating a crash: resuming from the file alone ...")
        resumed = Session().resume(path)

    same = resumed.result == reference.result
    print(
        f"resumed run: {resumed.result.rounds_executed} rounds, "
        f"max occupancy {resumed.result.max_occupancy}, "
        f"{resumed.result.packets_delivered} delivered"
    )
    print(
        "resume is bit-identical to the uninterrupted run"
        if same
        else "MISMATCH: resumed result differs from the uninterrupted run"
    )
    if not same:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
