#!/usr/bin/env python3
"""Scenario: how HPTS sees the line — the Figure 1 hierarchy, in ASCII.

Figure 1 of the paper draws the hierarchical partition for n = 16, m = 2,
ell = 4 and the virtual trajectory of a packet: at every moment a packet
"lives" at the level of its current segment, and hops down one level each
time it reaches an intermediate destination.

This example renders the same picture in the terminal, prints the segment
table for a sample route, and shows how many pseudo-buffers each node needs
(``ell * m = ell * n^(1/ell)`` — the space term of Theorem 4.1).

Run with::

    python examples/hierarchy_visualisation.py
"""

from __future__ import annotations

from repro import HierarchicalPartition, format_table
from repro.experiments.figures import render_figure1, trajectory_table


def main() -> None:
    branching, levels = 2, 4
    source, destination = 2, 13

    print("The Figure 1 partition (n = 16, m = 2, ell = 4):\n")
    print(render_figure1(branching, levels, trajectory=(source, destination)))
    print()

    rows = trajectory_table(branching, levels, source, destination)
    print(
        format_table(
            rows,
            title=f"Segment decomposition of the route {source} -> {destination}",
        )
    )

    partition = HierarchicalPartition(branching**levels, levels, branching)
    print(
        f"\nEach buffer is split into ell * m = {levels} * {branching} = "
        f"{levels * branching} pseudo-buffers,\nwhich is why the Theorem 4.1 space "
        f"bound is ell * n^(1/ell) + sigma + 1 = "
        f"{levels * branching} + sigma + 1."
    )

    print("\nLarger example (n = 81, m = 3, ell = 4), route 5 -> 77:")
    print(format_table(trajectory_table(3, 4, 5, 77)))


if __name__ == "__main__":
    main()
