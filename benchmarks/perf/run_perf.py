#!/usr/bin/env python
"""Engine micro-benchmarks: rounds/sec and end-to-end Session runs.

This is the perf-regression harness the CI quick job runs (and the one to
run by hand before/after engine changes):

* **engine cases** time the raw round loop — ``Simulator.run`` with a fixed
  number of injection rounds and no drain — and report rounds/sec;
* **session cases** time a complete ``Session.run`` (spec resolution,
  simulation, drain, result assembly) and report runs/sec;
* **stream cases** run the memory-lean path (``history="streaming"`` plus a
  lazy ``stream=True`` adversary) at larger ``n``;
* **batch cases** time the vectorized batch-round kernel
  (:mod:`repro.network.batch`) on the batchable line specs, publishing
  ``speedup_vs_delta`` next to each row's ``engine/`` twin;
* **batch_sharded cases** time the batch kernel split across worker
  processes (window mode over shared-memory boundary rings) on a heavy
  n=4096 line/PTS case at 1/2/4 workers, publishing ``speedup_vs_batch``
  next to the single-process ``batch/`` twin.  These rows record the
  machine's core count and are gated only where cores >= workers — on a
  single-core runner the workers timeshare one CPU and wall-clock says
  nothing about the parallel path.

Every engine/stream case also reports **peak memory** (tracemalloc, covering
topology + algorithm construction and the full run), and ``--check`` gates
both directions: throughput must not drop more than ``--tolerance`` below
the baseline, peak memory must not grow more than ``--mem-tolerance`` above
it.

Cases cover line and tree topologies with PTS / PPTS / HPTS / greedy across
``n`` in {64, 1k, 16k} (``--quick`` trims to {64, 256} with shorter horizons
so CI stays fast).

``--smoke-mem`` ignores the case table and instead runs the million-node
streaming smoke: an ``n = 10^6`` line, ``10^4`` injection rounds of the
trickle adversary under PTS with ``history="streaming"``, asserting the
process's peak RSS stays under ``--smoke-limit-mb`` (default 2048).

Throughput is also reported *normalized* by a small pure-Python calibration
loop measured in the same process, so numbers from differently-sized machines
(a laptop vs a CI runner) are comparable and the committed baseline does not
encode one machine's clock speed.

Usage::

    python benchmarks/perf/run_perf.py --quick --output BENCH_engine.json
    python benchmarks/perf/run_perf.py --quick --check benchmarks/perf/baseline.json

``--check`` exits non-zero if any case's normalized throughput regressed more
than ``--tolerance`` (default 30%) below the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from typing import Any, Dict, List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if not any(os.path.basename(p) == "src" for p in sys.path):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.api.session import Session  # noqa: E402
from repro.api.specs import ScenarioSpec  # noqa: E402
from repro.network.simulator import Simulator  # noqa: E402

SCHEMA = "BENCH_engine/v5"

#: (n, engine rounds) per scale tier.  Rounds shrink as n grows so the seed
#: engine's O(n) rounds stay measurable in bounded time.
FULL_SIZES = [(64, 4096), (1024, 1024), (16384, 256)]
QUICK_SIZES = [(64, 1024), (256, 512)]

#: (n, rounds) for the streaming (memory-lean) cases.  These run the lazy
#: trickle adversary with ``history="streaming"`` — footprint is dominated by
#: per-node construction plus packets in flight, not by the horizon.
FULL_STREAM_SIZES = [(65536, 8192), (262144, 2048)]
QUICK_STREAM_SIZES = [(4096, 2048)]

#: The million-node smoke scenario (``--smoke-mem``).
SMOKE_NODES = 1_000_000
SMOKE_ROUNDS = 10_000

#: Memory gates only fire above this baseline peak: tiny-case peaks are
#: allocator-jitter territory and would make the gate flaky.
MEM_GATE_FLOOR_BYTES = 512 * 1024

#: Binary-tree depth giving roughly n nodes (2**(depth+1) - 1).
TREE_DEPTHS = {64: 5, 256: 7, 1024: 9, 16384: 13}


def _calibrate(iterations: int = 300_000, repeats: int = 3):
    """Pure-Python ops/sec of this interpreter on this machine, best of N.

    Returns ``(best, spread)`` where ``spread`` is ``(best - worst) / best``
    over the N samples.  The spread is published in the result JSON: when
    the ±30% CI gate fires, the first question is whether the *calibration*
    was stable — a noisy-neighbour burst during calibration rescales every
    normalized number at once and makes the gate flap with no real
    regression.  A spread above ~10% means the run should be re-tried, not
    trusted.
    """
    samples = []
    for _ in range(repeats):
        accumulator = 0
        start = time.perf_counter()
        for i in range(iterations):
            accumulator += i & 7
        elapsed = time.perf_counter() - start
        samples.append(iterations / elapsed)
    best = max(samples)
    spread = (best - min(samples)) / best if best > 0 else 0.0
    return best, spread


def _line_spec(algorithm: str, n: int, rounds: int) -> ScenarioSpec:
    algo_params: Dict[str, Any] = {}
    adversary: Dict[str, Any] = {
        "name": "bounded",
        "rho": 0.9,
        "sigma": 4.0,
        "rounds": rounds,
        "params": {"num_destinations": 8},
    }
    if algorithm == "pts":
        adversary = {
            "name": "single",
            "rho": 1.0,
            "sigma": 4.0,
            "rounds": rounds,
            "params": {},
        }
    elif algorithm == "hpts":
        algo_params = {"levels": 2}
        adversary["rho"] = 0.5  # Theorem 4.1 needs rho * ell <= 1
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/line/{algorithm}/n{n}",
            "topology": {"kind": "line", "params": {"num_nodes": n}},
            "algorithm": {"name": algorithm, "params": algo_params},
            "adversary": adversary,
            "policy": {"seed": 7, "drain": True},
        }
    )


def _tree_spec(n: int, rounds: int) -> ScenarioSpec:
    depth = TREE_DEPTHS[n]
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/tree/tree-ppts/n{n}",
            "topology": {"kind": "tree", "params": {"family": "binary", "depth": depth}},
            "algorithm": {"name": "tree-ppts", "params": {}},
            "adversary": {
                "name": "bounded",
                "rho": 0.9,
                "sigma": 4.0,
                "rounds": rounds,
                "params": {},
            },
            "policy": {"seed": 7, "drain": True},
        }
    )


def _stream_spec(n: int, rounds: int) -> ScenarioSpec:
    """The memory-lean path: lazy trickle injections, streaming history."""
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/stream/pts/n{n}",
            "topology": {"kind": "line", "params": {"num_nodes": n}},
            "algorithm": {"name": "pts", "params": {}},
            "adversary": {
                "name": "trickle",
                "rho": 1.0,
                "sigma": 1.0,
                "rounds": rounds,
                "params": {"stream": True},
            },
            "policy": {"seed": 7, "drain": False, "history": "streaming"},
        }
    )


def _sharded_smoke_spec(
    n: int, rounds: int, extra_policy: Optional[Dict[str, Any]] = None
) -> ScenarioSpec:
    """The sharded smoke workload: enough per-round move work (greedy visits
    every nonempty buffer) that superstep coordination is a small fraction."""
    policy: Dict[str, Any] = {"seed": 7, "drain": False, "history": "streaming"}
    if extra_policy:
        policy.update(extra_policy)
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/sharded/greedy/n{n}",
            "topology": {"kind": "line", "params": {"num_nodes": n}},
            "algorithm": {"name": "greedy", "params": {}},
            "adversary": {
                "name": "trickle",
                "rho": 1.0,
                "sigma": 1.0,
                "rounds": rounds,
                "params": {
                    "stream": True,
                    "destinations": [n // 4, n // 2, n - 1],
                },
            },
            "policy": policy,
        }
    )


def _time_sharded(spec: ScenarioSpec, shards: int, repeats: int) -> Dict[str, Any]:
    """Time one sharded run (worker spawn + superstep loop), best of N."""
    from repro.network.sharded import run_sharded

    rounds = spec.adversary.rounds
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result, _extras = run_sharded(spec, shards=shards, transport="processes")
        elapsed = min(elapsed, time.perf_counter() - start)
    return {
        "case": f"sharded{shards}/{spec.label}",
        "kind": "sharded",
        "n": result.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "shards": shards,
        "rounds": rounds,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": rounds / elapsed if elapsed > 0 else float("inf"),
    }


def _batch_sharded_spec(n: int, rounds: int,
                        extra_policy: Optional[Dict[str, Any]] = None) -> ScenarioSpec:
    """The batch x shards workload: work-conserving line/PTS under the
    saturating single adversary (rho=1.0).  Work-conserving mode forwards
    from *every* non-empty buffer each round, so per-round cost grows with
    the packets in flight (~n at this rho) — heavy enough that splitting
    the line across workers buys real wall-clock on a multi-core machine
    instead of measuring spawn overhead."""
    policy: Dict[str, Any] = {
        "seed": 7, "drain": False, "engine": "batch", "batch_rounds": 64,
    }
    if extra_policy:
        policy.update(extra_policy)
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/batch-sharded/pts/n{n}",
            "topology": {"kind": "line", "params": {"num_nodes": n}},
            "algorithm": {"name": "pts", "params": {"work_conserving": True}},
            "adversary": {
                "name": "single",
                "rho": 1.0,
                "sigma": 4.0,
                "rounds": rounds,
                "params": {},
            },
            "policy": policy,
        }
    )


def _time_batch_sharded(
    spec: ScenarioSpec, shards: int, repeats: int,
    batch_rounds_per_sec: Optional[float],
) -> Dict[str, Any]:
    """Time the batch kernel split across worker processes (window mode).

    ``speedup_vs_batch`` compares against the single-process batch kernel
    on the identical spec.  The row records ``cpus`` because the number is
    only meaningful as a *parallel* speedup when the machine has at least
    ``shards`` cores: on fewer cores the workers timeshare one CPU and the
    ring waits dominate, so :func:`check_regression` skips these rows
    there (mirroring the sharded smoke's no-wall-clock-gate stance).
    """
    from repro.network.sharded import run_sharded

    rounds = spec.adversary.rounds
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        result, extras = run_sharded(spec, shards=shards, transport="processes")
        elapsed = min(elapsed, time.perf_counter() - start)
    rounds_per_sec = rounds / elapsed if elapsed > 0 else float("inf")
    case = {
        "case": f"batch_sharded{shards}/{spec.label}",
        "kind": "batch_sharded",
        "n": result.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "shards": shards,
        "cpus": os.cpu_count(),
        "transport": extras["engine"]["transport"],
        "rounds": rounds,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": rounds_per_sec,
    }
    if batch_rounds_per_sec:
        case["speedup_vs_batch"] = rounds_per_sec / batch_rounds_per_sec
    return case


def _time_chaos(n: int, rounds: int, shards: int, repeats: int) -> Dict[str, Any]:
    """Time worker-crash recovery: one injected kill mid-run, restart mode.

    Publishes ``recovery_time_s`` — the supervisor's teardown + restitch +
    respawn + rewind cost, measured with an injected perf_counter clock —
    alongside the chaos run's overall rounds/sec.  The recovered result is
    asserted identical to the fault-free run, so this case doubles as an
    end-to-end recovery check in every perf run.
    """
    import tempfile

    from repro.network.faults import FaultEvent, FaultPlan
    from repro.network.sharded import run_sharded

    plan = FaultPlan(events=(
        FaultEvent(kind="crash", round=rounds // 2, segment=0, phase="begin"),
    ))
    recovery_sec = float("inf")
    elapsed = float("inf")
    with tempfile.TemporaryDirectory() as scratch:
        spec = _sharded_smoke_spec(n, rounds, {
            "checkpoint_every": max(rounds // 4, 1),
            "checkpoint_path": os.path.join(scratch, "chaos.ckpt"),
            "recovery": "restart",
            "max_worker_restarts": 2,
        })
        baseline, _ = run_sharded(spec, shards=shards, transport="processes")
        for _ in range(repeats):
            start = time.perf_counter()
            result, extras = run_sharded(
                spec, shards=shards, transport="processes", faults=plan,
                clock=time.perf_counter,
            )
            elapsed = min(elapsed, time.perf_counter() - start)
            recovery = extras["recovery"]
            if recovery["restarts"] != 1 or result != baseline:
                raise RuntimeError(
                    f"chaos case broke: restarts={recovery['restarts']}, "
                    f"identical={result == baseline}"
                )
            recovery_sec = min(recovery_sec, recovery["recovery_time_s"])
    return {
        "case": f"chaos/sharded{shards}/{spec.label}",
        "kind": "chaos",
        "n": n,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "shards": shards,
        "rounds": rounds,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": rounds / elapsed if elapsed > 0 else float("inf"),
        "recovery_time_s": recovery_sec,
        "restarts": 1,
    }


def _specs(sizes: List[tuple]) -> List[ScenarioSpec]:
    specs = []
    for n, rounds in sizes:
        for algorithm in ("pts", "ppts", "hpts", "greedy"):
            specs.append(_line_spec(algorithm, n, rounds))
        specs.append(_tree_spec(n, rounds))
    return specs


def _time_engine(session: Session, spec: ScenarioSpec, repeats: int) -> Dict[str, Any]:
    """Time the raw round loop: fixed injection rounds, no drain, best of N.

    Best-of-N (like :func:`_calibrate`) keeps a single GC pause or
    noisy-neighbor burst on a shared CI runner from reading as a regression.
    Each repeat rebuilds the run from the spec in a fresh packet-id scope, so
    every timing measures the identical execution.
    """
    from repro.core.packet import packet_id_scope

    rounds = spec.adversary.rounds
    elapsed = float("inf")
    for _ in range(repeats):
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = Simulator(
                prepared.topology, prepared.algorithm, prepared.adversary,
                history=spec.policy.history,
            )
            start = time.perf_counter()
            simulator.run(rounds, drain=False)
            elapsed = min(elapsed, time.perf_counter() - start)
    return {
        "case": f"engine/{spec.label}",
        "kind": "engine",
        "n": prepared.topology.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "rounds": rounds,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": rounds / elapsed if elapsed > 0 else float("inf"),
    }


def _time_batch(session: Session, spec: ScenarioSpec, repeats: int) -> Dict[str, Any]:
    """Time the vectorized batch kernel on the same no-drain round loop.

    Mirrors :func:`_time_engine` (fresh packet-id scope per repeat, best of
    N) so ``batch/...`` and ``engine/...`` rows for the same spec are
    directly comparable — their ratio is the kernel's speedup.
    """
    from repro.core.packet import packet_id_scope
    from repro.network.batch import BatchSimulator

    rounds = spec.adversary.rounds
    elapsed = float("inf")
    for _ in range(repeats):
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = BatchSimulator(
                prepared.topology, prepared.algorithm, prepared.adversary,
                history=spec.policy.history,
            )
            start = time.perf_counter()
            simulator.run(rounds, drain=False)
            elapsed = min(elapsed, time.perf_counter() - start)
    return {
        "case": f"batch/{spec.label}",
        "kind": "batch",
        "n": prepared.topology.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "rounds": rounds,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": rounds / elapsed if elapsed > 0 else float("inf"),
    }


def _time_session(session: Session, spec: ScenarioSpec, repeats: int) -> Dict[str, Any]:
    """Time one complete Session.run (resolution + simulation + drain), best of N."""
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        report = session.run(spec)
        elapsed = min(elapsed, time.perf_counter() - start)
    return {
        "case": f"session/{spec.label}",
        "kind": "session",
        "n": report.result.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "rounds": report.result.rounds_executed,
        "max_occupancy": report.result.max_occupancy,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": (
            report.result.rounds_executed / elapsed if elapsed > 0 else float("inf")
        ),
        "runs_per_sec": 1.0 / elapsed if elapsed > 0 else float("inf"),
    }


def _measure_peak_memory(spec: ScenarioSpec, engine: str = "delta") -> int:
    """Peak tracemalloc bytes for one prepared run (construction included).

    Uses an uncached Session so topology construction — the n-proportional
    part of a scenario's footprint — is traced along with the round loop.
    tracemalloc numbers are Python-allocation counts, so they transfer
    across machines (unlike RSS) and can live in the committed baseline.
    """
    from repro.core.packet import packet_id_scope
    from repro.network.batch import BatchSimulator

    simulator_cls = BatchSimulator if engine == "batch" else Simulator
    session = Session(cache_topologies=False)
    rounds = spec.adversary.rounds
    tracemalloc.start()
    try:
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = simulator_cls(
                prepared.topology, prepared.algorithm, prepared.adversary,
                history=spec.policy.history,
            )
            simulator.run(rounds, drain=False)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return peak


def _checkpoint_case(spec: ScenarioSpec) -> Dict[str, Any]:
    """Measure the checkpoint round trip on the streaming case: run to the
    halfway round, save, load + restore; publish the file size so regressions
    in snapshot footprint show up in BENCH_engine.json like memory does."""
    import tempfile

    from repro.checkpoint import load_checkpoint, restore_into
    from repro.core.packet import packet_id_scope

    session = Session(cache_topologies=False)
    rounds = spec.adversary.rounds
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "bench.ckpt")
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = Simulator(
                prepared.topology, prepared.algorithm, prepared.adversary,
                history=spec.policy.history,
            )
            simulator.run(rounds // 2, drain=False)
            start = time.perf_counter()
            ckpt_bytes = simulator.save_checkpoint(path, spec=spec)
            save_sec = time.perf_counter() - start
        with packet_id_scope():
            prepared = session.prepare(spec)
            restored = Simulator(
                prepared.topology, prepared.algorithm, prepared.adversary,
                history=spec.policy.history,
            )
            start = time.perf_counter()
            restore_into(restored, load_checkpoint(path))
            load_sec = time.perf_counter() - start
    return {
        "case": f"checkpoint/{spec.label}",
        "kind": "checkpoint",
        "n": prepared.topology.num_nodes,
        "rounds": rounds // 2,
        "ckpt_bytes": ckpt_bytes,
        "save_sec": save_sec,
        "load_sec": load_sec,
    }


def run_suite(quick: bool, repeats: int) -> Dict[str, Any]:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    stream_sizes = QUICK_STREAM_SIZES if quick else FULL_STREAM_SIZES
    calibration, calibration_spread = _calibrate()
    print(f"calibration: {calibration / 1e6:.2f} Mops/s "
          f"(spread {calibration_spread:.1%} over 3 samples)")
    if calibration_spread > 0.10:
        print("calibration: WARNING - spread above 10%; normalized numbers "
              "from this run are unreliable")
    session = Session()
    cases: List[Dict[str, Any]] = []
    timed_specs = [(spec, "engine") for spec in _specs(sizes)]
    timed_specs += [
        (_stream_spec(n, rounds), "stream") for n, rounds in stream_sizes
    ]
    for spec, kind in timed_specs:
        case = _time_engine(session, spec, repeats)
        case["kind"] = kind
        case["normalized_throughput"] = case["rounds_per_sec"] / (calibration / 1e6)
        case["peak_mem_bytes"] = _measure_peak_memory(spec)
        cases.append(case)
        print(
            f"{case['case']:<40} {case['rounds_per_sec']:>12.0f} rounds/s "
            f"({case['normalized_throughput']:.1f} norm, "
            f"{case['peak_mem_bytes'] / 1e6:.1f} MB peak)"
        )
    # Batch-kernel cases: the vectorized engine on the batchable line specs,
    # one row per (algorithm, n) next to its engine/ twin so the speedup is
    # visible in the JSON and the kernel's throughput is gated like any
    # other case.
    delta_by_case = {case["case"]: case for case in cases}
    for n, rounds in sizes:
        for algorithm in ("pts", "greedy"):
            spec = _line_spec(algorithm, n, rounds)
            case = _time_batch(session, spec, repeats)
            case["normalized_throughput"] = (
                case["rounds_per_sec"] / (calibration / 1e6)
            )
            case["peak_mem_bytes"] = _measure_peak_memory(spec, engine="batch")
            twin = delta_by_case.get(f"engine/{spec.label}")
            speedup = (
                case["rounds_per_sec"] / twin["rounds_per_sec"] if twin else None
            )
            if speedup is not None:
                case["speedup_vs_delta"] = speedup
            cases.append(case)
            print(
                f"{case['case']:<40} {case['rounds_per_sec']:>12.0f} rounds/s "
                f"({case['normalized_throughput']:.1f} norm, "
                + (f"{speedup:.1f}x vs engine, " if speedup is not None else "")
                + f"{case['peak_mem_bytes'] / 1e6:.1f} MB peak)"
            )
    # Batch x shards: the window-mode engine (k-round free-running workers
    # exchanging boundary blocks over shared-memory rings) on the heavy
    # n=4096 line/PTS case, next to its single-process batch/ twin.  The
    # 1-worker row isolates the sharding overhead itself.
    bs_n = 4096
    # Full mode needs a horizon long enough that per-round compute (the
    # parallelizable part) dominates worker spawn; quick mode keeps CI fast
    # and relies on the baseline-relative gate only.
    bs_rounds = 1024 if quick else 16384
    bs_spec = _batch_sharded_spec(bs_n, bs_rounds)
    bs_twin = _time_batch(session, bs_spec, repeats)
    bs_twin["normalized_throughput"] = bs_twin["rounds_per_sec"] / (calibration / 1e6)
    cases.append(bs_twin)
    print(
        f"{bs_twin['case']:<40} {bs_twin['rounds_per_sec']:>12.0f} rounds/s "
        f"({bs_twin['normalized_throughput']:.1f} norm, 1 process)"
    )
    for shards in (1, 2, 4):
        case = _time_batch_sharded(
            bs_spec, shards, repeats, bs_twin["rounds_per_sec"]
        )
        case["normalized_throughput"] = case["rounds_per_sec"] / (calibration / 1e6)
        cases.append(case)
        speedup = case.get("speedup_vs_batch")
        print(
            f"{case['case']:<40} {case['rounds_per_sec']:>12.0f} rounds/s "
            f"({case['normalized_throughput']:.1f} norm, {shards} workers, "
            + (f"{speedup:.2f}x vs batch, " if speedup is not None else "")
            + f"{case['transport']} transport)"
        )
    # Checkpoint round trip on the smallest streaming tier: snapshot size is
    # part of the published surface (resume cost scales with it).
    n_stream, rounds_stream = stream_sizes[0]
    case = _checkpoint_case(_stream_spec(n_stream, rounds_stream))
    cases.append(case)
    print(
        f"{case['case']:<40} {case['ckpt_bytes'] / 1e3:>12.1f} KB ckpt  "
        f"(save {case['save_sec'] * 1e3:.1f} ms, load {case['load_sec'] * 1e3:.1f} ms)"
    )
    # Sharded engine on the smallest streaming tier: publishes the superstep
    # protocol's throughput (spawn + per-round coordination included) so a
    # regression in the hand-off path shows up like any engine case.  The
    # wall-clock *speedup* story depends on core count, so it is measured by
    # the standalone --smoke-mem --smoke-shards mode, not gated here.
    case = _time_sharded(
        _sharded_smoke_spec(n_stream, max(rounds_stream // 4, 64)), 2, repeats
    )
    case["normalized_throughput"] = case["rounds_per_sec"] / (calibration / 1e6)
    cases.append(case)
    print(
        f"{case['case']:<40} {case['rounds_per_sec']:>12.0f} rounds/s "
        f"({case['normalized_throughput']:.1f} norm, 2 workers)"
    )
    # Worker-crash recovery on the same tier: publishes recovery_time_s (the
    # restitch + respawn + rewind cost) and proves chaos == fault-free on
    # every perf run.  Throughput is published unnormalized only — recovery
    # cost is dominated by process spawn, which the calibration loop does
    # not model, so the gate sticks to the regular sharded case above.
    case = _time_chaos(n_stream, max(rounds_stream // 4, 64), 2, repeats)
    cases.append(case)
    print(
        f"{case['case']:<40} {case['recovery_time_s'] * 1e3:>12.1f} ms recovery "
        f"({case['rounds_per_sec']:.0f} rounds/s with 1 injected kill)"
    )
    # End-to-end Session timing on the smallest tier only: it exists to catch
    # regressions in resolution/drain/result assembly, not to re-time the loop.
    n0, rounds0 = sizes[0]
    for algorithm in ("pts", "ppts", "hpts", "greedy"):
        case = _time_session(session, _line_spec(algorithm, n0, rounds0), repeats)
        case["normalized_throughput"] = case["rounds_per_sec"] / (calibration / 1e6)
        cases.append(case)
        print(
            f"{case['case']:<40} {case['runs_per_sec']:>12.2f} runs/s   "
            f"({case['normalized_throughput']:.1f} norm)"
        )
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "calibration_ops_per_sec": calibration,
        "calibration_spread": calibration_spread,
        "cpus": os.cpu_count(),
        "cases": cases,
    }


def check_regression(
    current: Dict[str, Any],
    baseline_path: str,
    tolerance: float,
    mem_tolerance: float = 0.30,
) -> List[str]:
    """Compare normalized throughput and peak memory per case.

    Throughput gates downward (slower than baseline - tolerance fails);
    memory gates upward (fatter than baseline + mem_tolerance fails, for
    cases whose baseline peak exceeds :data:`MEM_GATE_FLOOR_BYTES`).
    """
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    baseline_by_case = {case["case"]: case for case in baseline.get("cases", [])}
    failures = []
    matched = 0
    for case in current["cases"]:
        reference = baseline_by_case.get(case["case"])
        if reference is None:
            print(f"warning: no baseline entry for {case['case']} "
                  f"(regenerate {baseline_path}?)")
            continue
        matched += 1
        if case.get("kind") == "batch_sharded":
            shards = case.get("shards", 1)
            cpus = case.get("cpus") or 1
            if cpus < shards:
                # Fewer cores than workers: the workers timeshare one CPU
                # and ring waits dominate wall-clock, so neither the
                # throughput nor the parallel speedup is meaningful.  Same
                # stance as the sharded smoke (wall-clock is not gated on
                # single-core containers).
                print(f"note: skipping gate for {case['case']} "
                      f"({cpus} cpus < {shards} workers)")
                continue
            reference_speedup = reference.get("speedup_vs_batch")
            current_speedup = case.get("speedup_vs_batch")
            if reference_speedup is not None and current_speedup is not None:
                floor = reference_speedup * (1.0 - tolerance)
                if current_speedup < floor:
                    failures.append(
                        f"{case['case']}: speedup_vs_batch "
                        f"{current_speedup:.2f}x < {floor:.2f}x "
                        f"(baseline {reference_speedup:.2f}x - {tolerance:.0%})"
                    )
        reference_throughput = reference.get("normalized_throughput")
        current_throughput = case.get("normalized_throughput")
        if reference_throughput is not None and current_throughput is not None:
            floor = reference_throughput * (1.0 - tolerance)
            if current_throughput < floor:
                failures.append(
                    f"{case['case']}: normalized throughput "
                    f"{current_throughput:.1f} < "
                    f"{floor:.1f} (baseline {reference_throughput:.1f} "
                    f"- {tolerance:.0%})"
                )
        # Checkpoint size gates upward like memory: a fatter snapshot is a
        # regression in resume cost.
        reference_ckpt = reference.get("ckpt_bytes")
        current_ckpt = case.get("ckpt_bytes")
        if reference_ckpt is not None and current_ckpt is not None:
            ceiling = reference_ckpt * (1.0 + mem_tolerance)
            if current_ckpt > ceiling:
                failures.append(
                    f"{case['case']}: checkpoint size {current_ckpt / 1e3:.1f} KB > "
                    f"{ceiling / 1e3:.1f} KB (baseline {reference_ckpt / 1e3:.1f} KB "
                    f"+ {mem_tolerance:.0%})"
                )
        reference_peak = reference.get("peak_mem_bytes")
        current_peak = case.get("peak_mem_bytes")
        if (
            reference_peak is not None
            and current_peak is not None
            and reference_peak >= MEM_GATE_FLOOR_BYTES
        ):
            ceiling = reference_peak * (1.0 + mem_tolerance)
            if current_peak > ceiling:
                failures.append(
                    f"{case['case']}: peak memory {current_peak / 1e6:.1f} MB > "
                    f"{ceiling / 1e6:.1f} MB (baseline {reference_peak / 1e6:.1f} MB "
                    f"+ {mem_tolerance:.0%})"
                )
    if matched == 0:
        # Renamed cases must not turn the gate green vacuously.
        failures.append(
            f"no current case matched any baseline entry in {baseline_path}; "
            f"regenerate the baseline"
        )
    return failures


def run_smoke(limit_mb: float, nodes: int = SMOKE_NODES,
              rounds: int = SMOKE_ROUNDS, checkpoint: bool = False) -> int:
    """The million-node streaming smoke: bounded-memory proof at full scale.

    Runs ``n = nodes`` line/PTS for ``rounds`` injection rounds with the lazy
    trickle adversary and ``history="streaming"``, then checks the process's
    peak RSS (``ru_maxrss`` — the honest whole-process number, which is why
    this is a standalone mode and not a tracemalloc case) against the limit.

    With ``checkpoint=True`` the same scenario is additionally run as a
    save/restore round trip — run to the halfway round, snapshot, rebuild
    from the file, finish — asserting the resumed ``SimulationResult`` is
    identical to the uninterrupted one and that the whole exercise stays
    inside the same RSS budget.  The snapshot size is reported.
    """
    import gc
    import resource
    import tempfile

    from repro.core.packet import packet_id_scope

    spec = _stream_spec(nodes, rounds)
    session = Session(cache_topologies=False)
    start = time.perf_counter()
    with packet_id_scope():
        prepared = session.prepare(spec)
        build_elapsed = time.perf_counter() - start
        simulator = Simulator(
            prepared.topology, prepared.algorithm, prepared.adversary,
            history=spec.policy.history,
        )
        result = simulator.run(rounds, drain=False)
    elapsed = time.perf_counter() - start
    in_flight = len(simulator.packets)
    print(f"smoke: n={nodes} rounds={rounds} "
          f"injected={result.packets_injected} delivered={result.packets_delivered} "
          f"in_flight={in_flight} max_occupancy={result.max_occupancy}")
    print(f"smoke: construction {build_elapsed:.1f}s, total {elapsed:.1f}s, "
          f"{rounds / max(elapsed - build_elapsed, 1e-9):.0f} rounds/s")

    roundtrip_failed = False
    if checkpoint:
        # Free the reference engine before the round trip so the peak RSS
        # measures one live engine at a time, as a real resume would.
        del simulator, prepared
        gc.collect()
        with tempfile.TemporaryDirectory() as scratch:
            path = os.path.join(scratch, "smoke.ckpt")
            with packet_id_scope():
                prepared = session.prepare(spec)
                partial = Simulator(
                    prepared.topology, prepared.algorithm, prepared.adversary,
                    history=spec.policy.history,
                )
                partial.run(rounds // 2, drain=False)
                ckpt_bytes = partial.save_checkpoint(path, spec=spec)
            del partial, prepared
            gc.collect()
            resumed = Session(cache_topologies=False).resume(path)
        print(f"smoke: checkpoint round trip at round {rounds // 2}, "
              f"{ckpt_bytes / 1e6:.1f} MB snapshot")
        if resumed.result != result:
            print("SMOKE FAILURE: resumed result differs from the "
                  "uninterrupted run")
            roundtrip_failed = True
        else:
            print("smoke: resumed result is identical to the uninterrupted run")

    # ru_maxrss is kilobytes on Linux but bytes on macOS.
    rss_divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / rss_divisor
    print(f"smoke: peak RSS {peak_rss_mb:.0f} MB (limit {limit_mb:.0f} MB)")
    if peak_rss_mb > limit_mb:
        print("SMOKE FAILURE: peak RSS exceeds the documented memory bound")
        return 1
    if roundtrip_failed:
        return 1
    print("smoke ok: streaming run stayed within the memory bound")
    return 0


def run_smoke_sharded(limit_mb: float, nodes: int, rounds: int,
                      shards: int) -> int:
    """The sharded-engine smoke: a horizon-scale line split across worker
    processes, gated on whole-tree peak RSS.

    Runs the greedy/trickle streaming workload (heavy per-round move work,
    O(packets-in-flight) memory) sharded over ``shards`` worker processes
    and gates a *whole-tree* peak-RSS estimate: the coordinator's own peak
    plus ``shards`` times the largest worker peak (``ru_maxrss`` for
    children reports the max over reaped workers, not a sum, so the gate
    conservatively assumes every worker hit that max simultaneously).
    Wall-clock is reported — per-round coordination overhead is a few
    percent of the single-process round cost (see docs/SHARDING.md), so on
    a multi-core machine the supersteps overlap into real speedup — but not
    gated, because this smoke also runs on single-core containers.
    """
    import resource

    from repro.network.sharded import run_sharded

    spec = _sharded_smoke_spec(nodes, rounds)
    start = time.perf_counter()
    result, extras = run_sharded(spec, shards=shards, transport="processes")
    elapsed = time.perf_counter() - start
    print(f"sharded smoke: n={nodes} rounds={rounds} shards={shards} "
          f"segments={extras['segments'][:2]}...")
    print(f"sharded smoke: injected={result.packets_injected} "
          f"delivered={result.packets_delivered} "
          f"max_occupancy={result.max_occupancy}")
    print(f"sharded smoke: total {elapsed:.1f}s, "
          f"{rounds / max(elapsed, 1e-9):.0f} rounds/s across {shards} workers")

    rss_divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    peak_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / rss_divisor
    peak_worker = (
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / rss_divisor
    )
    tree_estimate = peak_self + shards * peak_worker
    print(f"sharded smoke: peak RSS coordinator {peak_self:.0f} MB, "
          f"largest worker {peak_worker:.0f} MB -> whole-tree estimate "
          f"{tree_estimate:.0f} MB (limit {limit_mb:.0f} MB)")
    if tree_estimate > limit_mb:
        print("SMOKE FAILURE: estimated whole-tree peak RSS exceeds the "
              "documented memory bound")
        return 1
    print("smoke ok: sharded run stayed within the memory bound")
    return 0


def run_smoke_chaos(limit_mb: float, nodes: int, rounds: int,
                    shards: int) -> int:
    """The chaos smoke: a horizon-scale sharded streaming run that loses a
    worker mid-flight and must finish anyway, inside the same RSS budget.

    One ``crash`` fault kills a worker process halfway through; the
    supervisor restitches the surviving per-segment checkpoints, respawns a
    replacement and resumes.  The gate: exactly one restart, a result
    identical to the fault-free twin, and the whole-tree peak-RSS estimate
    (coordinator + ``shards`` x largest worker, as in the sharded smoke)
    under the limit — recovery must not double-buffer the line.
    """
    import resource
    import tempfile

    from repro.network.faults import FaultEvent, FaultPlan
    from repro.network.sharded import run_sharded

    plan = FaultPlan(events=(
        FaultEvent(kind="crash", round=rounds // 2, segment=0, phase="begin"),
    ))
    with tempfile.TemporaryDirectory() as scratch:
        spec = _sharded_smoke_spec(nodes, rounds, {
            "checkpoint_every": max(rounds // 4, 1),
            "checkpoint_path": os.path.join(scratch, "chaos.ckpt"),
            "recovery": "restart",
            "max_worker_restarts": 2,
        })
        baseline, _ = run_sharded(spec, shards=shards, transport="processes")
        start = time.perf_counter()
        result, extras = run_sharded(
            spec, shards=shards, transport="processes", faults=plan,
            clock=time.perf_counter,
        )
        elapsed = time.perf_counter() - start
    recovery = extras["recovery"]
    print(f"chaos smoke: n={nodes} rounds={rounds} shards={shards}, "
          f"1 worker killed at round {rounds // 2}")
    print(f"chaos smoke: total {elapsed:.1f}s, restarts={recovery['restarts']}, "
          f"recovery {recovery['recovery_time_s']:.2f}s")
    if recovery["restarts"] != 1:
        print(f"SMOKE FAILURE: expected exactly 1 worker restart, got "
              f"{recovery['restarts']}")
        return 1
    if result != baseline:
        print("SMOKE FAILURE: recovered result differs from the fault-free run")
        return 1
    print("chaos smoke: recovered result is identical to the fault-free run")

    rss_divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    peak_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / rss_divisor
    peak_worker = (
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / rss_divisor
    )
    tree_estimate = peak_self + shards * peak_worker
    print(f"chaos smoke: peak RSS coordinator {peak_self:.0f} MB, "
          f"largest worker {peak_worker:.0f} MB -> whole-tree estimate "
          f"{tree_estimate:.0f} MB (limit {limit_mb:.0f} MB)")
    if tree_estimate > limit_mb:
        print("SMOKE FAILURE: estimated whole-tree peak RSS exceeds the "
              "documented memory bound")
        return 1
    print("smoke ok: recovery stayed within the memory bound")
    return 0


def run_smoke_batch_shards(limit_mb: float, nodes: int = 100_000,
                           rounds: int = 2_000, shards: int = 2) -> int:
    """The batch x shards smoke: a streaming n=1e5 line split across batch
    segment workers, one injected crash mid-window, bit-identical finish.

    Runs the greedy/trickle streaming workload with ``engine="batch"``
    (window mode over shared-memory rings where the host supports it), then
    repeats it with a ``crash`` fault landing *inside* a window — not on a
    checkpoint cut — so recovery has to rewind to the previous cut and
    re-run the torn window.  Gates: exactly one restart, a recovered result
    identical to the fault-free run, and the whole-tree peak-RSS estimate
    (coordinator + ``shards`` x largest worker, as in the sharded smoke)
    under ``limit_mb``.
    """
    import resource
    import tempfile

    from repro.network.faults import FaultEvent, FaultPlan
    from repro.network.sharded import run_sharded

    # checkpoint_every=500 and batch_rounds=64: cuts at 500, 1000, ... land
    # mid-window (500 % 64 != 0) and the crash at round 780 lands mid-window
    # too ([768, 832) clamped to the cut at 1000), so the torn-window rewind
    # path is exercised, not just the clean-cut one.
    crash_round = 780
    plan = FaultPlan(events=(
        FaultEvent(kind="crash", round=crash_round, segment=0, phase="begin"),
    ))
    with tempfile.TemporaryDirectory() as scratch:
        spec = _sharded_smoke_spec(nodes, rounds, {
            "engine": "batch",
            "batch_rounds": 64,
            "checkpoint_every": 500,
            "checkpoint_path": os.path.join(scratch, "batch-shards.ckpt"),
            "recovery": "restart",
            "max_worker_restarts": 2,
        })
        start = time.perf_counter()
        baseline, base_extras = run_sharded(
            spec, shards=shards, transport="processes"
        )
        clean_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        result, extras = run_sharded(
            spec, shards=shards, transport="processes", faults=plan,
            clock=time.perf_counter,
        )
        elapsed = time.perf_counter() - start
    engine = base_extras["engine"]
    recovery = extras["recovery"]
    print(f"batch-shards smoke: n={nodes} rounds={rounds} shards={shards} "
          f"engine={engine['selected']} transport={engine['transport']}")
    print(f"batch-shards smoke: injected={baseline.packets_injected} "
          f"delivered={baseline.packets_delivered} "
          f"max_occupancy={baseline.max_occupancy}")
    print(f"batch-shards smoke: clean {clean_elapsed:.1f}s, with 1 kill at "
          f"round {crash_round} {elapsed:.1f}s "
          f"(restarts={recovery['restarts']}, "
          f"recovery {recovery['recovery_time_s']:.2f}s)")
    if engine["selected"] != "batch":
        print("SMOKE FAILURE: batch engine was not selected")
        return 1
    if recovery["restarts"] != 1:
        print(f"SMOKE FAILURE: expected exactly 1 worker restart, got "
              f"{recovery['restarts']}")
        return 1
    if result != baseline:
        print("SMOKE FAILURE: recovered result differs from the fault-free run")
        return 1
    print("batch-shards smoke: recovered result is identical to the "
          "fault-free run")

    rss_divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    peak_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / rss_divisor
    peak_worker = (
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / rss_divisor
    )
    tree_estimate = peak_self + shards * peak_worker
    print(f"batch-shards smoke: peak RSS coordinator {peak_self:.0f} MB, "
          f"largest worker {peak_worker:.0f} MB -> whole-tree estimate "
          f"{tree_estimate:.0f} MB (limit {limit_mb:.0f} MB)")
    if tree_estimate > limit_mb:
        print("SMOKE FAILURE: estimated whole-tree peak RSS exceeds the "
              "documented memory bound")
        return 1
    print("smoke ok: batch x shards run stayed within the memory bound")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small n, short horizons (CI)")
    parser.add_argument("--output", default="BENCH_engine.json", help="result JSON path")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if throughput or memory regressed vs this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional throughput regression for --check "
                             "(default 0.30)")
    parser.add_argument("--mem-tolerance", type=float, default=0.30,
                        help="allowed fractional peak-memory growth for --check "
                             "(default 0.30)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timings per case, best kept (default: 3 quick, 1 full)")
    parser.add_argument("--smoke-mem", action="store_true",
                        help=f"run the n={SMOKE_NODES} streaming smoke instead of the "
                             f"case table and check its peak RSS")
    parser.add_argument("--smoke-limit-mb", type=float, default=2048.0,
                        help="peak-RSS bound for --smoke-mem (default 2048)")
    parser.add_argument("--smoke-checkpoint", action="store_true",
                        help="with --smoke-mem: also run a save/restore round "
                             "trip at the halfway round and require the "
                             "resumed result to be identical (same RSS budget)")
    parser.add_argument("--smoke-shards", type=int, default=None, metavar="K",
                        help="with --smoke-mem: run the sharded-engine smoke "
                             "(K worker processes) instead of the "
                             "single-process streaming smoke, gating peak RSS "
                             "across coordinator and workers")
    parser.add_argument("--smoke-chaos", action="store_true",
                        help="with --smoke-mem --smoke-shards K: kill one "
                             "worker mid-run and require restitch-recovery to "
                             "finish with an identical result inside the same "
                             "RSS budget")
    parser.add_argument("--smoke-batch-shards", action="store_true",
                        help="run the batch x shards smoke instead of the case "
                             "table: an n=1e5 streaming line on 2 batch "
                             "segment workers with one injected crash "
                             "mid-window, requiring a bit-identical finish "
                             "inside the RSS budget (default limit 768 MB; "
                             "override with --smoke-limit-mb)")
    parser.add_argument("--min-batch-sharded-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless every 2+-worker batch_sharded case "
                             "reaches X speedup_vs_batch (skipped, with a "
                             "note, on machines with fewer cores than "
                             "workers)")
    parser.add_argument("--smoke-nodes", type=int, default=SMOKE_NODES,
                        help=argparse.SUPPRESS)
    parser.add_argument("--smoke-rounds", type=int, default=SMOKE_ROUNDS,
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.smoke_batch_shards:
        limit = args.smoke_limit_mb
        if limit == parser.get_default("smoke_limit_mb"):
            limit = 768.0
        return run_smoke_batch_shards(limit)

    if args.smoke_mem:
        if args.smoke_chaos:
            if args.smoke_shards is None:
                parser.error("--smoke-chaos needs --smoke-shards K")
            return run_smoke_chaos(
                args.smoke_limit_mb, args.smoke_nodes, args.smoke_rounds,
                args.smoke_shards,
            )
        if args.smoke_shards is not None:
            return run_smoke_sharded(
                args.smoke_limit_mb, args.smoke_nodes, args.smoke_rounds,
                args.smoke_shards,
            )
        return run_smoke(args.smoke_limit_mb, args.smoke_nodes, args.smoke_rounds,
                         checkpoint=args.smoke_checkpoint)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 1)
    if repeats < 1:
        parser.error(f"--repeats must be >= 1, got {repeats}")
    results = run_suite(quick=args.quick, repeats=repeats)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {args.output} ({len(results['cases'])} cases, {results['mode']} mode)")

    if args.min_batch_sharded_speedup is not None:
        floor = args.min_batch_sharded_speedup
        for case in results["cases"]:
            if case.get("kind") != "batch_sharded" or case.get("shards", 1) < 2:
                continue
            if (case.get("cpus") or 1) < case["shards"]:
                print(f"note: {case['case']} speedup floor skipped "
                      f"({case.get('cpus')} cpus < {case['shards']} workers)")
                continue
            speedup = case.get("speedup_vs_batch")
            if speedup is not None and speedup < floor:
                print(f"\nPERF REGRESSION: {case['case']} reached only "
                      f"{speedup:.2f}x vs single-process batch "
                      f"(floor {floor:.2f}x)")
                return 1

    if args.check:
        failures = check_regression(
            results, args.check, args.tolerance, args.mem_tolerance
        )
        if failures:
            print("\nPERF/MEM REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"no regression vs {args.check} "
              f"(throughput tolerance {args.tolerance:.0%}, "
              f"memory tolerance {args.mem_tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
