#!/usr/bin/env python
"""Engine micro-benchmarks: rounds/sec and end-to-end Session runs.

This is the perf-regression harness the CI quick job runs (and the one to
run by hand before/after engine changes):

* **engine cases** time the raw round loop — ``Simulator.run`` with a fixed
  number of injection rounds and no drain — and report rounds/sec;
* **session cases** time a complete ``Session.run`` (spec resolution,
  simulation, drain, result assembly) and report runs/sec.

Cases cover line and tree topologies with PTS / PPTS / HPTS / greedy across
``n`` in {64, 1k, 16k} (``--quick`` trims to {64, 256} with shorter horizons
so CI stays fast).

Throughput is also reported *normalized* by a small pure-Python calibration
loop measured in the same process, so numbers from differently-sized machines
(a laptop vs a CI runner) are comparable and the committed baseline does not
encode one machine's clock speed.

Usage::

    python benchmarks/perf/run_perf.py --quick --output BENCH_engine.json
    python benchmarks/perf/run_perf.py --quick --check benchmarks/perf/baseline.json

``--check`` exits non-zero if any case's normalized throughput regressed more
than ``--tolerance`` (default 30%) below the baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if not any(os.path.basename(p) == "src" for p in sys.path):
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.api.session import Session  # noqa: E402
from repro.api.specs import ScenarioSpec  # noqa: E402
from repro.network.simulator import Simulator  # noqa: E402

SCHEMA = "BENCH_engine/v1"

#: (n, engine rounds) per scale tier.  Rounds shrink as n grows so the seed
#: engine's O(n) rounds stay measurable in bounded time.
FULL_SIZES = [(64, 4096), (1024, 1024), (16384, 256)]
QUICK_SIZES = [(64, 1024), (256, 512)]

#: Binary-tree depth giving roughly n nodes (2**(depth+1) - 1).
TREE_DEPTHS = {64: 5, 256: 7, 1024: 9, 16384: 13}


def _calibrate(iterations: int = 300_000, repeats: int = 3) -> float:
    """Pure-Python ops/sec of this interpreter on this machine, best of N."""
    best = 0.0
    for _ in range(repeats):
        accumulator = 0
        start = time.perf_counter()
        for i in range(iterations):
            accumulator += i & 7
        elapsed = time.perf_counter() - start
        best = max(best, iterations / elapsed)
    return best


def _line_spec(algorithm: str, n: int, rounds: int) -> ScenarioSpec:
    algo_params: Dict[str, Any] = {}
    adversary: Dict[str, Any] = {
        "name": "bounded",
        "rho": 0.9,
        "sigma": 4.0,
        "rounds": rounds,
        "params": {"num_destinations": 8},
    }
    if algorithm == "pts":
        adversary = {
            "name": "single",
            "rho": 1.0,
            "sigma": 4.0,
            "rounds": rounds,
            "params": {},
        }
    elif algorithm == "hpts":
        algo_params = {"levels": 2}
        adversary["rho"] = 0.5  # Theorem 4.1 needs rho * ell <= 1
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/line/{algorithm}/n{n}",
            "topology": {"kind": "line", "params": {"num_nodes": n}},
            "algorithm": {"name": algorithm, "params": algo_params},
            "adversary": adversary,
            "policy": {"seed": 7, "drain": True},
        }
    )


def _tree_spec(n: int, rounds: int) -> ScenarioSpec:
    depth = TREE_DEPTHS[n]
    return ScenarioSpec.from_dict(
        {
            "name": f"perf/tree/tree-ppts/n{n}",
            "topology": {"kind": "tree", "params": {"family": "binary", "depth": depth}},
            "algorithm": {"name": "tree-ppts", "params": {}},
            "adversary": {
                "name": "bounded",
                "rho": 0.9,
                "sigma": 4.0,
                "rounds": rounds,
                "params": {},
            },
            "policy": {"seed": 7, "drain": True},
        }
    )


def _specs(sizes: List[tuple]) -> List[ScenarioSpec]:
    specs = []
    for n, rounds in sizes:
        for algorithm in ("pts", "ppts", "hpts", "greedy"):
            specs.append(_line_spec(algorithm, n, rounds))
        specs.append(_tree_spec(n, rounds))
    return specs


def _time_engine(session: Session, spec: ScenarioSpec, repeats: int) -> Dict[str, Any]:
    """Time the raw round loop: fixed injection rounds, no drain, best of N.

    Best-of-N (like :func:`_calibrate`) keeps a single GC pause or
    noisy-neighbor burst on a shared CI runner from reading as a regression.
    Each repeat rebuilds the run from the spec in a fresh packet-id scope, so
    every timing measures the identical execution.
    """
    from repro.core.packet import packet_id_scope

    rounds = spec.adversary.rounds
    elapsed = float("inf")
    for _ in range(repeats):
        with packet_id_scope():
            prepared = session.prepare(spec)
            simulator = Simulator(
                prepared.topology, prepared.algorithm, prepared.adversary
            )
            start = time.perf_counter()
            simulator.run(rounds, drain=False)
            elapsed = min(elapsed, time.perf_counter() - start)
    return {
        "case": f"engine/{spec.label}",
        "kind": "engine",
        "n": prepared.topology.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "rounds": rounds,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": rounds / elapsed if elapsed > 0 else float("inf"),
    }


def _time_session(session: Session, spec: ScenarioSpec, repeats: int) -> Dict[str, Any]:
    """Time one complete Session.run (resolution + simulation + drain), best of N."""
    elapsed = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        report = session.run(spec)
        elapsed = min(elapsed, time.perf_counter() - start)
    return {
        "case": f"session/{spec.label}",
        "kind": "session",
        "n": report.result.num_nodes,
        "algorithm": spec.algorithm.name,
        "topology": spec.topology.kind,
        "rounds": report.result.rounds_executed,
        "max_occupancy": report.result.max_occupancy,
        "repeats": repeats,
        "elapsed_sec": elapsed,
        "rounds_per_sec": (
            report.result.rounds_executed / elapsed if elapsed > 0 else float("inf")
        ),
        "runs_per_sec": 1.0 / elapsed if elapsed > 0 else float("inf"),
    }


def run_suite(quick: bool, repeats: int) -> Dict[str, Any]:
    sizes = QUICK_SIZES if quick else FULL_SIZES
    calibration = _calibrate()
    session = Session()
    cases: List[Dict[str, Any]] = []
    for spec in _specs(sizes):
        case = _time_engine(session, spec, repeats)
        case["normalized_throughput"] = case["rounds_per_sec"] / (calibration / 1e6)
        cases.append(case)
        print(
            f"{case['case']:<40} {case['rounds_per_sec']:>12.0f} rounds/s "
            f"({case['normalized_throughput']:.1f} norm)"
        )
    # End-to-end Session timing on the smallest tier only: it exists to catch
    # regressions in resolution/drain/result assembly, not to re-time the loop.
    n0, rounds0 = sizes[0]
    for algorithm in ("pts", "ppts", "hpts", "greedy"):
        case = _time_session(session, _line_spec(algorithm, n0, rounds0), repeats)
        case["normalized_throughput"] = case["rounds_per_sec"] / (calibration / 1e6)
        cases.append(case)
        print(
            f"{case['case']:<40} {case['runs_per_sec']:>12.2f} runs/s   "
            f"({case['normalized_throughput']:.1f} norm)"
        )
    return {
        "schema": SCHEMA,
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "calibration_ops_per_sec": calibration,
        "cases": cases,
    }


def check_regression(
    current: Dict[str, Any], baseline_path: str, tolerance: float
) -> List[str]:
    """Compare normalized throughput per case; return failure messages."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    baseline_by_case = {case["case"]: case for case in baseline.get("cases", [])}
    failures = []
    matched = 0
    for case in current["cases"]:
        reference = baseline_by_case.get(case["case"])
        if reference is None:
            print(f"warning: no baseline entry for {case['case']} "
                  f"(regenerate {baseline_path}?)")
            continue
        matched += 1
        floor = reference["normalized_throughput"] * (1.0 - tolerance)
        if case["normalized_throughput"] < floor:
            failures.append(
                f"{case['case']}: normalized throughput "
                f"{case['normalized_throughput']:.1f} < "
                f"{floor:.1f} (baseline {reference['normalized_throughput']:.1f} "
                f"- {tolerance:.0%})"
            )
    if matched == 0:
        # Renamed cases must not turn the gate green vacuously.
        failures.append(
            f"no current case matched any baseline entry in {baseline_path}; "
            f"regenerate the baseline"
        )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small n, short horizons (CI)")
    parser.add_argument("--output", default="BENCH_engine.json", help="result JSON path")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if throughput regressed vs this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression for --check (default 0.30)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timings per case, best kept (default: 3 quick, 1 full)")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 1)
    if repeats < 1:
        parser.error(f"--repeats must be >= 1, got {repeats}")
    results = run_suite(quick=args.quick, repeats=repeats)
    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"\nwrote {args.output} ({len(results['cases'])} cases, {results['mode']} mode)")

    if args.check:
        failures = check_regression(results, args.check, args.tolerance)
        if failures:
            print("\nPERF REGRESSION:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"no regression vs {args.check} (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
