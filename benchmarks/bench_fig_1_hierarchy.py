"""E6 — Figure 1: the hierarchical partition and virtual trajectories.

Regenerates the structural content of Figure 1 (n = 16, m = 2, ell = 4): the
nested interval boxes, the base-m labels of the buffers, and the segment
decomposition of a sample packet route, rendered as ASCII art plus a table.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.hierarchy import HierarchicalPartition
from repro.experiments.figures import figure1_data, render_figure1, trajectory_table


def _build_figure():
    data = figure1_data(branching=2, levels=4)
    art = render_figure1(2, 4, trajectory=(2, 13))
    segments = trajectory_table(2, 4, source=2, destination=13)
    return data, art, segments


def test_e6_figure1_partition_and_trajectory(run_once):
    data, art, segments = run_once(_build_figure)
    print()
    print("E6  Figure 1 — hierarchical partition (n = 16, m = 2, ell = 4)")
    print(art)
    print()
    print(format_table(segments, title="Virtual trajectory of a packet 2 -> 13"))

    partition: HierarchicalPartition = data["partition"]
    # Structural assertions mirroring the figure:
    assert data["num_nodes"] == 16
    assert partition.level_partition(3) == [(0, 15)]
    assert partition.level_partition(0)[0] == (0, 1)
    # Every buffer has a 4-digit binary label.
    assert all(len(label) == 4 for label in data["labels"])
    # The sample trajectory descends through strictly decreasing levels and
    # ends at its destination, exactly as drawn in the paper.
    levels = [row["level"] for row in segments]
    assert levels == sorted(levels, reverse=True)
    assert segments[-1]["end"] == 13
