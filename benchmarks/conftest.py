"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's results (see DESIGN.md's
per-experiment index) and prints a measured-vs-bound table.  pytest-benchmark
records the wall-clock cost of regenerating each table; ``run_once`` wraps
``benchmark.pedantic`` so each table is built exactly once per benchmark run
(the tables are deterministic, so repeated timing rounds add no information).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under the benchmark timer."""

    def _run(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return _run
