"""E8 — Motivation: the paper's algorithms vs classical greedy policies.

Runs identical ``(rho, sigma)``-bounded workloads against PTS/PPTS and all six
greedy baselines, reporting worst-case occupancy (the paper's metric) together
with delivery statistics (where greedy, being work-conserving, naturally
shines).  Expected shape: PPTS never exceeds its ``1 + d + sigma`` guarantee,
while the greedy policies have no such guarantee and exceed it on at least one
of the adversarial workloads.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.baselines.greedy import GreedyForwarding
from repro.baselines.policies import ALL_POLICIES
from repro.core.bounds import ppts_upper_bound
from repro.core.ppts import ParallelPeakToSink
from repro.experiments.workloads import multi_destination_workload
from repro.network.simulator import run_simulation

SIGMA = 2
SCENARIOS = [
    ("round_robin d=8", 8, "round_robin"),
    ("round_robin d=32", 32, "round_robin"),
    ("nested d=8", 8, "nested"),
    ("random d=8", 8, "random"),
]


def _build_table():
    rows = []
    for name, d, kind in SCENARIOS:
        workload = multi_destination_workload(
            64, d, rho=1.0, sigma=SIGMA, num_rounds=250, kind=kind, seed=d
        )
        bound = ppts_upper_bound(d, SIGMA)
        algorithms = {"PPTS": ParallelPeakToSink(workload.topology)}
        for policy in ALL_POLICIES:
            algorithms[f"Greedy-{policy.name}"] = GreedyForwarding(
                workload.topology, policy
            )
        for label, algorithm in algorithms.items():
            result = run_simulation(workload.topology, algorithm, workload.pattern)
            rows.append(
                {
                    "workload": name,
                    "algorithm": label,
                    "max_occupancy": result.max_occupancy,
                    "ppts_bound": bound,
                    "within_ppts_bound": result.max_occupancy <= bound,
                    "delivered": result.packets_delivered,
                    "injected": result.packets_injected,
                }
            )
    return rows


def test_e8_baseline_comparison(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="E8  PTS-family vs greedy baselines on identical bounded workloads",
        )
    )
    # PPTS always meets its guarantee; this is the property greedy lacks.
    ppts_rows = [row for row in rows if row["algorithm"] == "PPTS"]
    assert all(row["within_ppts_bound"] for row in ppts_rows)
    # Honest finding (recorded in EXPERIMENTS.md): on single-source line
    # workloads the work-conserving greedy baselines also stay low — their
    # weakness is the *absence of a guarantee*, exhibited by the Section 5
    # adversary in E5, not by these stress patterns.  Here we only require
    # that every baseline simulated cleanly and delivered all its traffic.
    greedy_rows = [row for row in rows if row["algorithm"] != "PPTS"]
    assert all(row["delivered"] == row["injected"] for row in greedy_rows)
    assert len(greedy_rows) == len(SCENARIOS) * len(ALL_POLICIES)
