"""E8 — Motivation: the paper's algorithms vs classical greedy policies.

Runs identical ``(rho, sigma)``-bounded workloads against PTS/PPTS and all six
greedy baselines, reporting worst-case occupancy (the paper's metric) together
with delivery statistics (where greedy, being work-conserving, naturally
shines).  Expected shape: PPTS never exceeds its ``1 + d + sigma`` guarantee,
while the greedy policies have no such guarantee and exceed it on at least one
of the adversarial workloads.  Each (workload, algorithm) pair is one
declarative spec; identical adversary parameters and seeds guarantee all
algorithms face identical traffic.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import Scenario, Session
from repro.baselines.policies import ALL_POLICIES
from repro.core.bounds import ppts_upper_bound

SIGMA = 2
#: (label, number of destinations, adversary registry name)
SCENARIOS = [
    ("round_robin d=8", 8, "round-robin"),
    ("round_robin d=32", 32, "round-robin"),
    ("nested d=8", 8, "nested"),
    ("random d=8", 8, "bounded"),
]


def _algorithms():
    yield "PPTS", ("ppts", {})
    for policy in ALL_POLICIES:
        yield f"Greedy-{policy.name}", ("greedy", {"policy": policy.name})


def _build_table():
    specs = []
    extras = []
    for name, d, adversary in SCENARIOS:
        for label, (algorithm, params) in _algorithms():
            specs.append(
                Scenario.line(64)
                .algorithm(algorithm, **params)
                .adversary(
                    adversary, rho=1.0, sigma=SIGMA, rounds=250, num_destinations=d
                )
                .seed(d)
                .named(name)
                .build()
            )
            extras.append({"workload": name, "ppts_bound": ppts_upper_bound(d, SIGMA)})
    reports = Session().run_many(specs)
    rows = []
    for report, extra in zip(reports, extras):
        rows.append(
            {
                "workload": extra["workload"],
                "algorithm": report.algorithm,
                "max_occupancy": report.result.max_occupancy,
                "ppts_bound": extra["ppts_bound"],
                "within_ppts_bound": report.result.max_occupancy <= extra["ppts_bound"],
                "delivered": report.result.packets_delivered,
                "injected": report.result.packets_injected,
            }
        )
    return rows


def test_e8_baseline_comparison(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="E8  PTS-family vs greedy baselines on identical bounded workloads",
        )
    )
    # PPTS always meets its guarantee; this is the property greedy lacks.
    ppts_rows = [row for row in rows if row["algorithm"] == "PPTS"]
    assert all(row["within_ppts_bound"] for row in ppts_rows)
    # Honest finding (recorded in EXPERIMENTS.md): on single-source line
    # workloads the work-conserving greedy baselines also stay low — their
    # weakness is the *absence of a guarantee*, exhibited by the Section 5
    # adversary in E5, not by these stress patterns.  Here we only require
    # that every baseline simulated cleanly and delivered all its traffic.
    greedy_rows = [row for row in rows if row["algorithm"] != "PPTS"]
    assert all(row["delivered"] == row["injected"] for row in greedy_rows)
    assert len(greedy_rows) == len(SCENARIOS) * len(ALL_POLICIES)
