"""E2 — Proposition 3.2: PPTS keeps every buffer below 1 + d + sigma.

Regenerates the multi-destination result: sweep the number of destinations
(and the burst budget), run PPTS on the round-robin stress that forces the
``+ d`` term, and report measured occupancy against ``1 + d + sigma``.  The
series should grow linearly in ``d`` — matching both the upper bound and the
Omega(d) lower bound (for rho > 1/2) cited in the introduction.
"""

from __future__ import annotations

from repro.core.ppts import ParallelPeakToSink
from repro.experiments.harness import rows_to_table, run_workload
from repro.experiments.workloads import multi_destination_workload

NUM_NODES = 128
DESTINATIONS = [1, 2, 4, 8, 16, 32, 64]
SIGMAS = [0, 2, 4]

COLUMNS = ["d", "sigma", "kind", "max_occupancy", "bound", "within_bound", "packets"]


def _build_table():
    rows = []
    for sigma in SIGMAS:
        for d in DESTINATIONS:
            workload = multi_destination_workload(
                NUM_NODES, d, rho=1.0, sigma=sigma, num_rounds=300, kind="round_robin"
            )
            row = run_workload(workload, lambda w: ParallelPeakToSink(w.topology))
            row.params.update({"sigma": sigma})
            rows.append(row)
    return rows


def test_e2_ppts_destination_sweep_table(run_once):
    rows = run_once(_build_table)
    print()
    print(
        rows_to_table(
            rows, COLUMNS, title="E2  Proposition 3.2 — PPTS, d destinations (n = 128)"
        )
    )
    assert all(row.within_bound for row in rows)
    # Shape check: measured occupancy grows (roughly linearly) with d.
    for sigma in SIGMAS:
        series = [row.max_occupancy for row in rows if row.params["sigma"] == sigma]
        assert series == sorted(series)
        assert series[-1] >= max(4 * series[0], DESTINATIONS[-1] // 2)
