"""E2 — Proposition 3.2: PPTS keeps every buffer below 1 + d + sigma.

Regenerates the multi-destination result: sweep the number of destinations
(and the burst budget), run PPTS on the round-robin stress that forces the
``+ d`` term, and report measured occupancy against ``1 + d + sigma``.  The
series should grow linearly in ``d`` — matching both the upper bound and the
Omega(d) lower bound (for rho > 1/2) cited in the introduction.  All runs go
through :class:`repro.api.Session` as declarative specs.
"""

from __future__ import annotations

from repro.api import Scenario, Session
from repro.analysis.tables import format_table

NUM_NODES = 128
DESTINATIONS = [1, 2, 4, 8, 16, 32, 64]
SIGMAS = [0, 2, 4]

COLUMNS = ["d", "sigma", "kind", "max_occupancy", "bound", "within_bound", "packets"]


def _build_table():
    specs = [
        Scenario.line(NUM_NODES)
        .algorithm("ppts")
        .adversary("round-robin", rho=1.0, sigma=sigma, rounds=300, num_destinations=d)
        .named("multi-dest/round_robin")
        .build()
        for sigma in SIGMAS
        for d in DESTINATIONS
    ]
    reports = Session().run_many(specs)
    return [
        report.as_row({"d": report.params["num_destinations"], "kind": "round_robin"})
        for report in reports
    ]


def test_e2_ppts_destination_sweep_table(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows, COLUMNS, title="E2  Proposition 3.2 — PPTS, d destinations (n = 128)"
        )
    )
    assert all(row["within_bound"] for row in rows)
    # Shape check: measured occupancy grows (roughly linearly) with d.
    for sigma in SIGMAS:
        series = [row["max_occupancy"] for row in rows if row["sigma"] == sigma]
        assert series == sorted(series)
        assert series[-1] >= max(4 * series[0], DESTINATIONS[-1] // 2)
