"""E3 — Proposition 3.5: tree PPTS keeps every buffer below 1 + d' + sigma.

Regenerates the directed-tree result over several tree families (caterpillar,
star, complete binary, random recursive) and destination placements, reporting
measured occupancy against ``1 + d' + sigma`` where ``d'`` is the destination
depth.  The point of the table: the buffer requirement tracks ``d'`` rather
than the number of nodes or the total number of destinations.  Each scenario
is a declarative :class:`repro.api.ScenarioSpec`; the tree topologies are
built once through the session's cache and shared between destination-set
computation and the runs.
"""

from __future__ import annotations

from repro.api import Scenario, Session, TopologySpec
from repro.analysis.tables import format_table

SIGMA = 2
COLUMNS = [
    "tree", "n", "num_destinations", "d_prime",
    "max_occupancy", "bound", "within_bound", "packets",
]


def _scenarios(session: Session):
    caterpillar_spec = TopologySpec.tree("caterpillar", spine_length=8, legs_per_node=2)
    star_spec = TopologySpec.tree("star", num_leaves=32)
    binary_spec = TopologySpec.tree("binary", depth=5)
    random_spec = TopologySpec.tree("random", num_nodes=127, seed=3)

    caterpillar = session.topology(caterpillar_spec)
    star = session.topology(star_spec)
    btree = session.topology(binary_spec)
    rtree = session.topology(random_spec)

    spine = [v for v in caterpillar.nodes if caterpillar.children(v)]
    r_internal = [v for v in rtree.nodes if rtree.children(v)][:6]
    return [
        ("star-32/root", star_spec, star, [star.root]),
        ("caterpillar-8/root", caterpillar_spec, caterpillar, [caterpillar.root]),
        ("caterpillar-8/spine", caterpillar_spec, caterpillar, spine),
        ("binary-d5/root", binary_spec, btree, [btree.root]),
        ("binary-d5/one-path", binary_spec, btree, [0, 1, 3, 7, 15]),
        ("random-127/internal", random_spec, rtree, r_internal),
    ]


def _build_table():
    session = Session()
    specs = []
    extras = []
    for name, topology_spec, tree, destinations in _scenarios(session):
        scenario = Scenario(topology_spec).adversary(
            "convergecast", rho=1.0, sigma=SIGMA, rounds=200, destinations=destinations
        )
        if destinations == [tree.root]:
            scenario.algorithm("tree-pts")
        else:
            scenario.algorithm("tree-ppts", destinations=destinations)
        specs.append(scenario.named(f"tree/{name}").build())
        extras.append(
            {
                "tree": name,
                "num_destinations": len(destinations),
                "d_prime": tree.destination_depth(destinations),
            }
        )
    reports = session.run_many(specs)
    return [report.as_row(extra) for report, extra in zip(reports, extras)]


def test_e3_tree_destination_depth_table(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows, COLUMNS, title="E3  Proposition 3.5 — directed trees (sigma = 2)"
        )
    )
    assert all(row["within_bound"] for row in rows)
    # Shape checks: the *guarantee* scales with d' rather than tree size (the
    # 127-node random tree has a smaller bound than the 24-node caterpillar
    # whose destinations stack on one path), and at least one workload pushes
    # its bound hard enough to show the guarantee is not vacuous.
    by_name = {row["tree"]: row for row in rows}
    assert by_name["caterpillar-8/spine"]["bound"] > by_name["random-127/internal"]["bound"]
    assert by_name["star-32/root"]["bound"] == by_name["binary-d5/root"]["bound"]
    assert any(row["max_occupancy"] >= row["bound"] / 2 for row in rows)
