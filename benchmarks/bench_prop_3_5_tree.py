"""E3 — Proposition 3.5: tree PPTS keeps every buffer below 1 + d' + sigma.

Regenerates the directed-tree result over several tree families (caterpillar,
star, complete binary, random recursive) and destination placements, reporting
measured occupancy against ``1 + d' + sigma`` where ``d'`` is the destination
depth.  The point of the table: the buffer requirement tracks ``d'`` rather
than the number of nodes or the total number of destinations.
"""

from __future__ import annotations

from repro.core.tree import TreeParallelPeakToSink, TreePeakToSink
from repro.experiments.harness import rows_to_table, run_workload
from repro.experiments.workloads import tree_workload
from repro.network.topology import binary_tree, caterpillar_tree, random_tree, star_tree

SIGMA = 2
COLUMNS = [
    "tree", "n", "num_destinations", "d_prime",
    "max_occupancy", "bound", "within_bound", "packets",
]


def _scenarios():
    caterpillar = caterpillar_tree(spine_length=8, legs_per_node=2)
    spine = [v for v in caterpillar.nodes if caterpillar.children(v)]
    star = star_tree(32)
    btree = binary_tree(5)
    rtree = random_tree(127, seed=3)
    r_internal = [v for v in rtree.nodes if rtree.children(v)][:6]
    return [
        ("star-32/root", star, [star.root]),
        ("caterpillar-8/root", caterpillar, [caterpillar.root]),
        ("caterpillar-8/spine", caterpillar, spine),
        ("binary-d5/root", btree, [btree.root]),
        ("binary-d5/one-path", btree, [0, 1, 3, 7, 15]),
        ("random-127/internal", rtree, r_internal),
    ]


def _build_table():
    rows = []
    for name, tree, destinations in _scenarios():
        workload = tree_workload(
            tree, rho=1.0, sigma=SIGMA, num_rounds=200, destinations=destinations
        )
        if destinations == [tree.root]:
            factory = lambda w: TreePeakToSink(w.topology)
        else:
            factory = lambda w: TreeParallelPeakToSink(
                w.topology, destinations=w.params["destinations"]
            )
        row = run_workload(workload, factory)
        row.params.update(
            {
                "tree": name,
                "n": len(tree.nodes),
                "num_destinations": len(destinations),
            }
        )
        rows.append(row)
    return rows


def test_e3_tree_destination_depth_table(run_once):
    rows = run_once(_build_table)
    print()
    print(
        rows_to_table(
            rows, COLUMNS, title="E3  Proposition 3.5 — directed trees (sigma = 2)"
        )
    )
    assert all(row.within_bound for row in rows)
    # Shape checks: the *guarantee* scales with d' rather than tree size (the
    # 127-node random tree has a smaller bound than the 24-node caterpillar
    # whose destinations stack on one path), and at least one workload pushes
    # its bound hard enough to show the guarantee is not vacuous.
    by_name = {row.params["tree"]: row for row in rows}
    assert by_name["caterpillar-8/spine"].bound > by_name["random-127/internal"].bound
    assert by_name["star-32/root"].bound == by_name["binary-d5/root"].bound
    assert any(row.max_occupancy >= row.bound / 2 for row in rows)
