"""E4 — Theorem 4.1: HPTS keeps every buffer below ell * n^(1/ell) + sigma + 1.

Regenerates the hierarchical result: sweep the branching factor ``m`` and
number of levels ``ell`` (with the rate at the theorem's limit
``rho = 1/ell``), run HPTS on level-spanning stress and random traffic, and
report measured occupancy against the bound.  The comparison column shows the
PPTS bound ``1 + d + sigma`` with ``d = n - 1`` — the guarantee one would be
stuck with without the hierarchy — to exhibit the exponential gap.  All runs
are declarative specs executed by one :class:`repro.api.Session`.
"""

from __future__ import annotations

from repro.adversary.generators import hierarchy_random_destinations
from repro.api import Scenario, Session
from repro.analysis.tables import format_table
from repro.core.bounds import ppts_upper_bound

SIGMA = 2

#: (branching m, levels ell) grid: n = m**ell ranges from 16 to 256.
GRID = [
    (4, 1),
    (4, 2),
    (2, 4),
    (4, 3),
    (3, 4),
    (2, 7),
    (16, 2),
]

COLUMNS = [
    "m", "ell", "n", "kind", "max_occupancy", "bound", "within_bound",
    "flat_ppts_bound", "packets",
]


def _specs():
    for branching, levels in GRID:
        rho = 1.0 / levels
        n = branching**levels
        for kind in ("hierarchy", "random"):
            scenario = Scenario.line(n).algorithm(
                "hpts", levels=levels, branching=branching, rho=rho
            )
            if kind == "hierarchy":
                scenario.adversary(
                    "hierarchy", rho=rho, sigma=SIGMA, rounds=60 * levels,
                    branching=branching, levels=levels,
                )
            else:
                scenario.adversary(
                    "bounded", rho=rho, sigma=SIGMA, rounds=60 * levels,
                    num_destinations=hierarchy_random_destinations(n, branching, levels),
                ).seed(branching * levels)
            yield (branching, levels, kind), scenario.named(f"hierarchy/{kind}").build()


def _build_table():
    pairs = list(_specs())
    reports = Session().run_many([spec for _, spec in pairs])
    rows = []
    for ((branching, levels, kind), _), report in zip(pairs, reports):
        n = branching**levels
        rows.append(
            report.as_row(
                {
                    "m": branching,
                    "ell": levels,
                    "kind": kind,
                    "flat_ppts_bound": ppts_upper_bound(max(1, n - 1), SIGMA),
                }
            )
        )
    return rows


def test_e4_hpts_hierarchy_sweep_table(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            COLUMNS,
            title="E4  Theorem 4.1 — HPTS with ell levels at rho = 1/ell (sigma = 2)",
        )
    )
    assert all(row["within_bound"] for row in rows)
    # Shape check: for every multi-level configuration the HPTS guarantee is
    # strictly below the flat PPTS guarantee, and the gap widens with n.
    multi_level = [row for row in rows if row["ell"] > 1]
    assert all(row["bound"] < row["flat_ppts_bound"] for row in multi_level)
