"""E4 — Theorem 4.1: HPTS keeps every buffer below ell * n^(1/ell) + sigma + 1.

Regenerates the hierarchical result: sweep the branching factor ``m`` and
number of levels ``ell`` (with the rate at the theorem's limit
``rho = 1/ell``), run HPTS on level-spanning stress and random traffic, and
report measured occupancy against the bound.  The comparison column shows the
PPTS bound ``1 + d + sigma`` with ``d = n - 1`` — the guarantee one would be
stuck with without the hierarchy — to exhibit the exponential gap.
"""

from __future__ import annotations

from repro.core.bounds import ppts_upper_bound
from repro.core.hpts import HierarchicalPeakToSink
from repro.experiments.harness import rows_to_table, run_workload
from repro.experiments.workloads import hierarchical_workload

SIGMA = 2

#: (branching m, levels ell) grid: n = m**ell ranges from 16 to 256.
GRID = [
    (4, 1),
    (4, 2),
    (2, 4),
    (4, 3),
    (3, 4),
    (2, 7),
    (16, 2),
]

COLUMNS = [
    "m", "ell", "n", "kind", "max_occupancy", "bound", "within_bound",
    "flat_ppts_bound", "packets",
]


def _build_table():
    rows = []
    for branching, levels in GRID:
        rho = 1.0 / levels
        for kind in ("hierarchy", "random"):
            workload = hierarchical_workload(
                branching, levels, rho, SIGMA, num_rounds=60 * levels,
                kind=kind, seed=branching * levels,
            )
            row = run_workload(
                workload,
                lambda w, b=branching, l=levels, r=rho: HierarchicalPeakToSink(
                    w.topology, l, b, rho=r
                ),
            )
            n = branching**levels
            row.params.update(
                {"flat_ppts_bound": ppts_upper_bound(max(1, n - 1), SIGMA)}
            )
            rows.append(row)
    return rows


def test_e4_hpts_hierarchy_sweep_table(run_once):
    rows = run_once(_build_table)
    print()
    print(
        rows_to_table(
            rows,
            COLUMNS,
            title="E4  Theorem 4.1 — HPTS with ell levels at rho = 1/ell (sigma = 2)",
        )
    )
    assert all(row.within_bound for row in rows)
    # Shape check: for every multi-level configuration the HPTS guarantee is
    # strictly below the flat PPTS guarantee, and the gap widens with n.
    multi_level = [row for row in rows if row.params["ell"] > 1]
    assert all(
        row.bound < row.params["flat_ppts_bound"] for row in multi_level
    )
