"""EXT-1 — Extension: buffer space vs. locality radius (the paper's open problem).

The paper's algorithms are centralized; its conclusion names decentralized
(local) forwarding as the main open problem, with prior/concurrent work
showing a ``Theta(rho * ceil(log n / r) + sigma)`` space requirement for
locality ``r`` on the single-destination line.

This extension benchmark measures how the occupancy achieved by the
locality-``r`` threshold rule (``repro.core.local``) decays as ``r`` grows
from 0 (purely local) to ``n`` (which provably recovers PTS and its
``2 + sigma`` bound), alongside the fully-local Downhill baseline.  No bound
from the paper is claimed for intermediate radii; the table records the
empirical tradeoff.  Every (workload, algorithm) pair is a declarative spec;
identical adversary params/seeds keep the traffic identical across radii.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import Scenario, Session
from repro.core.bounds import pts_upper_bound

NUM_NODES = 128
SIGMA = 4
RADII = [0, 1, 2, 4, 8, 16, 32, 64, 128]

#: (workload label, adversary registry name, seed)
WORKLOADS = [
    ("burst-stress", "burst", 0),
    ("random", "single", 13),
]


def _algorithms():
    for radius in RADII:
        yield f"Local-r{radius}", radius, ("local", {"locality": radius})
    yield "Downhill", 1, ("downhill", {})
    yield "PTS", NUM_NODES, ("pts", {})


def _build_table():
    specs = []
    extras = []
    for workload_name, adversary, seed in WORKLOADS:
        for label, radius, (algorithm, params) in _algorithms():
            specs.append(
                Scenario.line(NUM_NODES)
                .algorithm(algorithm, **params)
                .adversary(adversary, rho=1.0, sigma=SIGMA, rounds=300)
                .seed(seed)
                .named(workload_name)
                .build()
            )
            extras.append(
                {"workload": workload_name, "algorithm": label, "radius": radius}
            )
    reports = Session().run_many(specs)
    rows = []
    for report, extra in zip(reports, extras):
        rows.append(
            {
                **extra,
                "max_occupancy": report.result.max_occupancy,
                "pts_bound": pts_upper_bound(SIGMA),
                "delivered": report.result.packets_delivered,
            }
        )
    return rows


def test_ext_locality_tradeoff(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title=(
                "EXT-1  Occupancy vs locality radius on the single-destination line "
                f"(n = {NUM_NODES}, sigma = {SIGMA})"
            ),
        )
    )
    # The r = n rule equals PTS and therefore meets the 2 + sigma bound.
    full_view = [
        row
        for row in rows
        if row["radius"] == NUM_NODES and row["algorithm"].startswith("Local")
    ]
    assert all(row["max_occupancy"] <= row["pts_bound"] for row in full_view)
    pts_rows = {row["workload"]: row for row in rows if row["algorithm"] == "PTS"}
    for row in full_view:
        assert row["max_occupancy"] == pts_rows[row["workload"]]["max_occupancy"]
    # Coarse trend: widening the view from r = 0 to r = n never makes the
    # worst-case occupancy worse (individual intermediate radii may wobble on
    # random workloads, which the table records).
    for workload in {row["workload"] for row in rows}:
        series = [
            row["max_occupancy"]
            for row in rows
            if row["workload"] == workload and row["algorithm"].startswith("Local")
        ]
        assert series[-1] <= series[0]
