"""CI smoke: the job service survives ``kill -9`` without losing a job.

The scenario the service exists for, end to end and out of process:

1. compute fault-free twin rows in-process (``Session().run``),
2. start a **real** ``repro service serve`` process,
3. submit ``--jobs`` jobs through the unix socket,
4. SIGKILL the server mid-run — no drain, no atexit, nothing,
5. start a fresh server over the same data directory,
6. require every job to finish ``done`` with a result row **bit-identical**
   to its twin, inside the same peak-RSS budget as the engine smokes.

Run from the repo root::

    PYTHONPATH=src python benchmarks/service_chaos_smoke.py --smoke-limit-mb 768

Exit codes: 0 ok, 1 contract violation (lost job, diverged row, or RSS over
budget) — CI-friendly, like ``benchmarks/perf/run_perf.py``.
"""

from __future__ import annotations

import argparse
import os
import resource
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.api import ScenarioSpec, Session  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.errors import ServiceUnavailableError  # noqa: E402

MAX_RUNNING = 2


def job_spec(seed: int, rounds: int) -> dict:
    return {
        "name": f"smoke-{seed}",
        "topology": {"kind": "line", "params": {"num_nodes": 6 + seed}},
        "adversary": {"name": "single", "rho": 0.5, "sigma": 2.0,
                      "rounds": rounds},
        "algorithm": {"name": "greedy", "params": {}},
        "policy": {"seed": seed},
    }


def start_server(data_dir: str, socket_path: str) -> subprocess.Popen:
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "service", "serve",
         "--data", data_dir, "--socket", socket_path,
         "--max-running", str(MAX_RUNNING)],
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    client = ServiceClient(socket_path, timeout=10.0)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if client.ping():
            return process
        if process.poll() is not None:
            raise SystemExit(
                f"server exited during startup (code {process.returncode})"
            )
        time.sleep(0.1)
    raise SystemExit("server never came up")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=20_000,
                        help="injection rounds per job (~0.5 s of simulation)")
    parser.add_argument("--smoke-limit-mb", type=float, default=768.0)
    args = parser.parse_args()

    print(f"service chaos smoke: {args.jobs} jobs x {args.rounds} rounds, "
          f"max_running={MAX_RUNNING}")
    session = Session()
    twins = {
        seed: session.run(
            ScenarioSpec.from_dict(job_spec(seed, args.rounds))
        ).as_row()
        for seed in range(args.jobs)
    }

    failures = 0
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as scratch:
        data_dir = os.path.join(scratch, "data")
        socket_path = os.path.join(scratch, "svc.sock")
        start = time.perf_counter()
        server = start_server(data_dir, socket_path)
        client = ServiceClient(socket_path, timeout=10.0)
        # checkpoint_every is sized so each job snapshots ~10 times: enough
        # that the killed server's running jobs resume mid-run, without the
        # fsync storm a per-default-cadence (every 20 rounds) run would be.
        job_ids = {
            seed: client.submit(job_spec(seed, args.rounds),
                                submit_key=f"smoke-{seed}",
                                checkpoint_every=max(args.rounds // 10, 1))["job"]
            for seed in range(args.jobs)
        }
        print(f"submitted {len(job_ids)} jobs")

        # Let the pool get properly mid-flight: some jobs done, some holding
        # leases, some still queued — then kill -9 the whole server.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            states = [row["state"] for row in client.ls()]
            if states.count("done") >= 1 and "running" in states:
                break
            time.sleep(0.05)
        print(f"states at kill time: {sorted(states)}")
        os.kill(server.pid, signal.SIGKILL)
        server.wait(timeout=30)
        print(f"server killed (SIGKILL, pid {server.pid})")

        server = start_server(data_dir, socket_path)
        print("server restarted over the same journal")
        for seed, job_id in job_ids.items():
            try:
                view = client.wait(job_id, timeout=300)
            except ServiceUnavailableError:
                print(f"SMOKE FAILURE: server died again waiting on {job_id}")
                failures += 1
                continue
            if view["state"] != "done":
                print(f"SMOKE FAILURE: {job_id} ended {view['state']!r} "
                      f"({view.get('error_type')}: {view.get('error_message')})")
                failures += 1
            elif view["result"] != twins[seed]:
                print(f"SMOKE FAILURE: {job_id} survived the crash but its "
                      f"result row diverged from the fault-free twin")
                failures += 1
        elapsed = time.perf_counter() - start
        recovered = args.jobs - failures
        print(f"{recovered}/{args.jobs} jobs done bit-identical to their "
              f"twins, {elapsed:.1f}s total")
        client.drain()
        server.wait(timeout=30)

    # ru_maxrss is kilobytes on Linux, bytes on macOS.  RUSAGE_CHILDREN
    # reports the max over reaped children (each server process folds in its
    # own reaped workers), so the tree estimate conservatively assumes the
    # server and a full worker pool all peaked simultaneously.
    rss_divisor = 1024.0 ** 2 if sys.platform == "darwin" else 1024.0
    peak_self = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / rss_divisor
    peak_child = (
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / rss_divisor
    )
    tree_estimate = peak_self + (1 + MAX_RUNNING) * peak_child
    print(f"peak RSS: harness {peak_self:.0f} MB, largest child "
          f"{peak_child:.0f} MB -> whole-tree estimate {tree_estimate:.0f} MB "
          f"(limit {args.smoke_limit_mb:.0f} MB)")
    if tree_estimate > args.smoke_limit_mb:
        print("SMOKE FAILURE: estimated whole-tree peak RSS exceeds the "
              "documented memory bound")
        failures += 1
    if failures:
        return 1
    print("smoke ok: no accepted job was lost, every result bit-identical, "
          "memory inside the bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
