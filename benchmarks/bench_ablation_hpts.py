"""E9 — Ablation: which HPTS design choices carry the Theorem 4.1 bound?

HPTS combines three mechanisms (DESIGN.md lists them as explicit design
decisions): phase batching (the ell-reduction), the time-division level
schedule, and pre-bad activation across segment hand-offs.  This benchmark
re-runs the Theorem 4.1 workloads with each mechanism toggled and reports the
measured occupancy of every variant against the bound.  Variants are plain
algorithm-spec params, so the whole ablation is a list of declarative specs.

Expected shape: the full algorithm (descending schedule, pre-bad activation,
phase batching) meets the bound on every workload; ablated variants may or may
not — whichever way it comes out is recorded in EXPERIMENTS.md, which is the
point of an ablation.
"""

from __future__ import annotations

from repro.adversary.generators import hierarchy_random_destinations
from repro.analysis.tables import format_table
from repro.api import Scenario, Session
from repro.core.bounds import hpts_upper_bound

SIGMA = 2

#: (branching, levels) pairs exercised by the ablation.
GRID = [(4, 2), (2, 4), (4, 3)]

VARIANTS = {
    "full (descending)": dict(),
    "ascending schedule": dict(level_schedule="ascending"),
    "no pre-bad activation": dict(activate_pre_bad=False),
    "no phase batching": dict(batch_acceptance=False),
}


def _build_table():
    specs = []
    extras = []
    for branching, levels in GRID:
        rho = 1.0 / levels
        n = branching**levels
        bound = hpts_upper_bound(n, levels, SIGMA)
        for kind in ("hierarchy", "random"):
            for variant, options in VARIANTS.items():
                scenario = Scenario.line(n).algorithm(
                    "hpts", levels=levels, branching=branching, rho=rho, **options
                )
                if kind == "hierarchy":
                    scenario.adversary(
                        "hierarchy", rho=rho, sigma=SIGMA, rounds=60 * levels,
                        branching=branching, levels=levels,
                    )
                else:
                    scenario.adversary(
                        "bounded", rho=rho, sigma=SIGMA, rounds=60 * levels,
                        num_destinations=hierarchy_random_destinations(
                            n, branching, levels
                        ),
                    ).seed(7 * branching + levels)
                specs.append(scenario.named(f"hierarchy/{kind}").build())
                extras.append(
                    {
                        "m": branching,
                        "ell": levels,
                        "kind": kind,
                        "variant": variant,
                        "bound": round(bound, 2),
                    }
                )
    reports = Session().run_many(specs)
    rows = []
    for report, extra in zip(reports, extras):
        rows.append(
            {
                **extra,
                "max_occupancy": report.result.max_occupancy,
                "max_staged": report.result.max_staged,
                "within_bound": report.result.max_occupancy <= extra["bound"],
            }
        )
    return rows


def test_e9_hpts_ablation(run_once):
    rows = run_once(_build_table)
    print()
    print(format_table(rows, title="E9  HPTS ablation (sigma = 2, rho = 1/ell)"))
    # The full algorithm always meets the Theorem 4.1 bound.
    full_rows = [row for row in rows if row["variant"] == "full (descending)"]
    assert all(row["within_bound"] for row in full_rows)
    # Every variant still runs without capacity violations (the simulation
    # itself would have raised) and produces a deterministic table.
    assert len(rows) == len(GRID) * 2 * len(VARIANTS)
