"""EXT-2 — Extension: tree algorithms on unions of trees (forests).

The paper's conclusion singles out the union-of-trees topology ("the output of
many routing algorithms") as an important next step.  Because forest
components are node-disjoint, the tree algorithms and their ``1 + d' + sigma``
guarantee apply component-wise with ``d'`` the maximum component destination
depth — this benchmark validates exactly that on forests assembled from the
tree families used in E3.
"""

from __future__ import annotations

from repro.adversary.stress import tree_convergecast_stress
from repro.analysis.tables import format_table
from repro.core.bounds import tree_ppts_upper_bound
from repro.core.tree import TreeParallelPeakToSink
from repro.network.forest import ForestTopology
from repro.network.simulator import run_simulation
from repro.network.topology import TreeTopology, binary_tree, caterpillar_tree, star_tree

SIGMA = 2


def _relabel(tree: TreeTopology, offset: int) -> TreeTopology:
    """Shift every node id by ``offset`` so components stay disjoint."""
    return TreeTopology(
        {
            node + offset: (None if tree.parent(node) is None else tree.parent(node) + offset)
            for node in tree.nodes
        }
    )


def _scenarios():
    small_forest = ForestTopology(
        [caterpillar_tree(4, 1), _relabel(star_tree(8), 100)]
    )
    mixed_forest = ForestTopology(
        [
            caterpillar_tree(6, 2),
            _relabel(binary_tree(3), 200),
            _relabel(star_tree(12), 400),
        ]
    )
    return [
        ("caterpillar + star", small_forest),
        ("caterpillar + binary + star", mixed_forest),
    ]


def _build_table():
    rows = []
    for name, forest in _scenarios():
        destinations = []
        for tree in forest.trees:
            internal = [v for v in tree.nodes if tree.children(v)]
            destinations.extend(internal[:3])
        pattern = tree_convergecast_stress(forest, 1.0, SIGMA, 150, destinations)
        algorithm = TreeParallelPeakToSink(forest, destinations=destinations)
        result = run_simulation(forest, algorithm, pattern)
        d_prime = forest.destination_depth(destinations)
        bound = tree_ppts_upper_bound(d_prime, SIGMA)
        rows.append(
            {
                "forest": name,
                "components": forest.num_components,
                "n": forest.num_nodes,
                "destinations": len(destinations),
                "d_prime": d_prime,
                "max_occupancy": result.max_occupancy,
                "bound": bound,
                "within_bound": result.max_occupancy <= bound,
                "packets": result.packets_injected,
            }
        )
    return rows


def test_ext_forest_union_of_trees(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="EXT-2  Tree PPTS on unions of trees (sigma = 2)",
        )
    )
    assert all(row["within_bound"] for row in rows)
    assert all(row["components"] >= 2 for row in rows)
