"""EXT-2 — Extension: tree algorithms on unions of trees (forests).

The paper's conclusion singles out the union-of-trees topology ("the output of
many routing algorithms") as an important next step.  Because forest
components are node-disjoint, the tree algorithms and their ``1 + d' + sigma``
guarantee apply component-wise with ``d'`` the maximum component destination
depth — this benchmark validates exactly that on forests assembled from the
tree families used in E3.  Forests are declared as ``"forest"`` topology
specs (per-component tree families with id offsets) and executed through
:class:`repro.api.Session`.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.api import Scenario, Session, TopologySpec
from repro.core.bounds import tree_ppts_upper_bound

SIGMA = 2


def _scenarios():
    small_forest = TopologySpec.forest(
        [
            {"family": "caterpillar", "spine_length": 4, "legs_per_node": 1},
            {"family": "star", "num_leaves": 8, "offset": 100},
        ]
    )
    mixed_forest = TopologySpec.forest(
        [
            {"family": "caterpillar", "spine_length": 6, "legs_per_node": 2},
            {"family": "binary", "depth": 3, "offset": 200},
            {"family": "star", "num_leaves": 12, "offset": 400},
        ]
    )
    return [
        ("caterpillar + star", small_forest),
        ("caterpillar + binary + star", mixed_forest),
    ]


def _build_table():
    session = Session()
    specs = []
    extras = []
    for name, forest_spec in _scenarios():
        forest = session.topology(forest_spec)
        destinations = []
        for tree in forest.trees:
            internal = [v for v in tree.nodes if tree.children(v)]
            destinations.extend(internal[:3])
        d_prime = forest.destination_depth(destinations)
        specs.append(
            Scenario(forest_spec)
            .algorithm("tree-ppts", destinations=destinations)
            .adversary(
                "convergecast", rho=1.0, sigma=SIGMA, rounds=150,
                destinations=destinations,
            )
            .named(name)
            .build()
        )
        extras.append(
            {
                "forest": name,
                "components": forest.num_components,
                "destinations": len(destinations),
                "d_prime": d_prime,
                "bound": tree_ppts_upper_bound(d_prime, SIGMA),
            }
        )
    reports = session.run_many(specs)
    rows = []
    for report, extra in zip(reports, extras):
        rows.append(
            {
                "forest": extra["forest"],
                "components": extra["components"],
                "n": report.result.num_nodes,
                "destinations": extra["destinations"],
                "d_prime": extra["d_prime"],
                "max_occupancy": report.result.max_occupancy,
                "bound": extra["bound"],
                "within_bound": report.result.max_occupancy <= extra["bound"],
                "packets": report.result.packets_injected,
            }
        )
    return rows


def test_ext_forest_union_of_trees(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="EXT-2  Tree PPTS on unions of trees (sigma = 2)",
        )
    )
    assert all(row["within_bound"] for row in rows)
    assert all(row["components"] >= 2 for row in rows)
