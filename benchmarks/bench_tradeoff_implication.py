"""E7 — Section 1 implications: the space-bandwidth tradeoff, quantified.

Regenerates the paper's headline interpretation: starting from a line system
with ``d`` destinations, scale the number of destinations by ``alpha`` at
fixed per-link load and compare the two remedies —

* space only: multiply buffers by ``alpha`` (stay with PPTS), vs.
* space + bandwidth: multiply both by ``O(log alpha)`` (switch to HPTS with
  ``ceil(log2 alpha)`` levels).

The analytic table comes straight from the bounds; the empirical rows check
two points of the curve by simulation.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.analysis.tradeoff import analytic_tradeoff_curve, empirical_tradeoff_point

BASE_DESTINATIONS = 4
SCALE_FACTORS = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
SIGMA = 2
RHO = 0.5


def _build_tables():
    analytic = analytic_tradeoff_curve(BASE_DESTINATIONS, SCALE_FACTORS, SIGMA, RHO)
    empirical = [
        empirical_tradeoff_point(
            num_nodes=64, num_destinations=d, rho=1.0, sigma=1, num_rounds=250
        )
        for d in (8, 32)
    ]
    return analytic, empirical


def test_e7_space_bandwidth_tradeoff(run_once):
    analytic, empirical = run_once(_build_tables)
    analytic_rows = [
        {
            "alpha": point.scale_factor,
            "destinations": point.destinations,
            "space_only_buffers": point.space_only_buffers,
            "levels": point.bandwidth_multiplier,
            "space_bw_buffers": round(point.space_bandwidth_buffers, 1),
            "space_saving": round(point.space_saving, 2),
        }
        for point in analytic
    ]
    print()
    print(
        format_table(
            analytic_rows,
            title=(
                "E7  Section 1 implication — scale destinations by alpha "
                f"(base d = {BASE_DESTINATIONS}, sigma = {SIGMA}, rho = {RHO})"
            ),
        )
    )
    print()
    print(format_table(empirical, title="Empirical spot-checks (round-robin stress)"))

    # Shape checks: the space-only cost grows linearly in alpha while the
    # bandwidth route grows like log(alpha), so the saving ratio increases and
    # eventually exceeds 2x.
    savings = [point.space_saving for point in analytic]
    assert savings == sorted(savings)
    assert savings[-1] > 2.0
    # Empirically both algorithms respect their bounds at each spot-check.
    for row in empirical:
        assert row["ppts_measured"] <= row["ppts_bound"]
        assert row["hpts_measured"] <= row["hpts_bound"]
