"""E1 — Proposition 3.1: PTS keeps every buffer below 2 + sigma.

Regenerates the single-destination result as a table: for a grid of line
lengths, rates and burst parameters, run PTS against both the deterministic
burst stress and a random bounded adversary, and report the measured maximum
occupancy next to the ``2 + sigma`` bound.  Every run is declared as a
:class:`repro.api.ScenarioSpec` and executed through one shared
:class:`repro.api.Session`.
"""

from __future__ import annotations

from repro.api import Scenario, Session
from repro.analysis.tables import format_table

#: (n, rho, sigma) grid — the sweep DESIGN.md lists for E1.
GRID = [
    (16, 1.0, 0),
    (16, 1.0, 4),
    (64, 0.5, 2),
    (64, 1.0, 2),
    (128, 1.0, 4),
    (256, 1.0, 8),
    (256, 0.25, 8),
]

COLUMNS = [
    "n", "rho", "sigma", "kind", "max_occupancy", "bound", "within_bound", "packets",
]


def _specs():
    for n, rho, sigma in GRID:
        for kind in ("stress", "random"):
            adversary = "burst" if kind == "stress" else "single"
            yield kind, (
                Scenario.line(n)
                .algorithm("pts")
                .adversary(adversary, rho=rho, sigma=sigma, rounds=200)
                .seed(n)
                .named(f"single-dest/{kind}")
                .build()
            )


def _build_table():
    pairs = list(_specs())
    reports = Session().run_many([spec for _, spec in pairs])
    return [
        report.as_row({"kind": kind})
        for (kind, _), report in zip(pairs, reports)
    ]


def test_e1_pts_single_destination_table(run_once):
    rows = run_once(_build_table)
    print()
    print(format_table(rows, COLUMNS, title="E1  Proposition 3.1 — PTS, single destination"))
    assert all(row["within_bound"] for row in rows)
    # Shape check: the bound is nearly saturated under stress (the +sigma term
    # is really needed), demonstrating the result is tight, not vacuous.
    stressed = [row for row in rows if row["kind"] == "stress"]
    assert any(row["max_occupancy"] >= row["bound"] - 1 for row in stressed)
