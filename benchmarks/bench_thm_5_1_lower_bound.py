"""E5 — Theorem 5.1: the adversary that forces Omega(n^(1/ell)) buffers.

Regenerates the lower-bound result: build the Section 5 construction for a
grid of (m, ell, rho), run several very different forwarding protocols
(the paper's PPTS plus greedy baselines) against it, and report the largest
buffer occupancy each protocol was forced into, next to the theoretical floor
``((ell+1) rho - 1) / (2 ell) * n^(1/ell)``.

Expected shape: every protocol's measured occupancy is at least the floor, and
the forced occupancy grows with ``n^(1/ell)`` as the construction scales.
Every run is a declarative spec using the registered ``"lower-bound"``
adversary; the audited burstiness column is measured from an independently
materialised copy of the pattern.
"""

from __future__ import annotations

from repro.adversary.bounded import tightest_sigma
from repro.adversary.lower_bound import LowerBoundConstruction
from repro.analysis.tables import format_table
from repro.api import Scenario, Session

#: (branching m, levels ell, rho) grid; rho > 1/(ell+1) keeps the bound positive.
GRID = [
    (3, 2, 0.5),
    (4, 2, 0.5),
    (6, 2, 0.5),
    (4, 2, 0.75),
    (3, 3, 0.5),
]

#: protocol label -> (algorithm name, params) for the spec.
PROTOCOLS = {
    "PPTS": ("ppts", {}),
    "Greedy-FIFO": ("greedy", {"policy": "FIFO"}),
    "Greedy-LIS": ("greedy", {"policy": "LIS"}),
    "Greedy-NTG": ("greedy", {"policy": "NTG"}),
}


def _build_table():
    session = Session()
    specs = []
    extras = []
    for branching, levels, rho in GRID:
        construction = LowerBoundConstruction(branching, levels, rho)
        floor = construction.theoretical_bound()
        sigma = tightest_sigma(
            construction.build_pattern(), construction.topology(), rho
        )
        for name, (algorithm, params) in PROTOCOLS.items():
            specs.append(
                Scenario.line(construction.num_nodes)
                .algorithm(algorithm, **params)
                .adversary(
                    "lower-bound", rho=rho, sigma=1.0,
                    rounds=construction.num_rounds,
                    branching=branching, levels=levels,
                )
                .drain(False)
                .named(f"lower-bound/m{branching}-ell{levels}")
                .build()
            )
            extras.append(
                {
                    "m": branching,
                    "ell": levels,
                    "rho": rho,
                    "sigma_measured": round(sigma, 2),
                    "protocol": name,
                    "theoretical_floor": round(floor, 2),
                    "floor": floor,
                }
            )
    reports = session.run_many(specs)
    rows = []
    for report, extra in zip(reports, extras):
        floor = extra.pop("floor")
        row = report.as_row(extra)
        row["above_floor"] = report.result.max_occupancy >= floor - 1e-9
        rows.append(row)
    return rows


def test_e5_lower_bound_forces_all_protocols(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            [
                "m", "ell", "rho", "n", "sigma_measured", "protocol",
                "max_occupancy", "theoretical_floor", "above_floor",
            ],
            title="E5  Theorem 5.1 — forced occupancy under the Section 5 adversary",
        )
    )
    assert all(row["above_floor"] for row in rows)
    # Shape check: at fixed (ell, rho) the forced occupancy grows with m
    # (i.e. with n^(1/ell)) for the greedy baseline.
    fifo_by_m = {
        row["m"]: row["max_occupancy"]
        for row in rows
        if row["protocol"] == "Greedy-FIFO" and row["ell"] == 2 and row["rho"] == 0.5
    }
    assert fifo_by_m[3] <= fifo_by_m[4] <= fifo_by_m[6]
