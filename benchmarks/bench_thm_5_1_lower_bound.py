"""E5 — Theorem 5.1: the adversary that forces Omega(n^(1/ell)) buffers.

Regenerates the lower-bound result: build the Section 5 construction for a
grid of (m, ell, rho), run several very different forwarding protocols
(the paper's PPTS plus greedy baselines) against it, and report the largest
buffer occupancy each protocol was forced into, next to the theoretical floor
``((ell+1) rho - 1) / (2 ell) * n^(1/ell)``.

Expected shape: every protocol's measured occupancy is at least the floor, and
the forced occupancy grows with ``n^(1/ell)`` as the construction scales.
"""

from __future__ import annotations

from repro.adversary.bounded import tightest_sigma
from repro.baselines.greedy import GreedyForwarding
from repro.baselines.policies import fifo, longest_in_system, nearest_to_go
from repro.core.ppts import ParallelPeakToSink
from repro.experiments.workloads import lower_bound_workload
from repro.analysis.tables import format_table
from repro.network.simulator import run_simulation

#: (branching m, levels ell, rho) grid; rho > 1/(ell+1) keeps the bound positive.
GRID = [
    (3, 2, 0.5),
    (4, 2, 0.5),
    (6, 2, 0.5),
    (4, 2, 0.75),
    (3, 3, 0.5),
]

PROTOCOLS = {
    "PPTS": lambda topology: ParallelPeakToSink(topology),
    "Greedy-FIFO": lambda topology: GreedyForwarding(topology, fifo),
    "Greedy-LIS": lambda topology: GreedyForwarding(topology, longest_in_system),
    "Greedy-NTG": lambda topology: GreedyForwarding(topology, nearest_to_go),
}


def _build_table():
    rows = []
    for branching, levels, rho in GRID:
        workload = lower_bound_workload(branching, levels, rho)
        topology = workload.topology
        floor = workload.params["theoretical_bound"]
        sigma = tightest_sigma(workload.pattern, topology, rho)
        for name, factory in PROTOCOLS.items():
            result = run_simulation(topology, factory(topology), workload.pattern, drain=False)
            rows.append(
                {
                    "m": branching,
                    "ell": levels,
                    "rho": rho,
                    "n": workload.params["n"],
                    "sigma_measured": round(sigma, 2),
                    "protocol": name,
                    "max_occupancy": result.max_occupancy,
                    "theoretical_floor": round(floor, 2),
                    "above_floor": result.max_occupancy >= floor - 1e-9,
                }
            )
    return rows


def test_e5_lower_bound_forces_all_protocols(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="E5  Theorem 5.1 — forced occupancy under the Section 5 adversary",
        )
    )
    assert all(row["above_floor"] for row in rows)
    # Shape check: at fixed (ell, rho) the forced occupancy grows with m
    # (i.e. with n^(1/ell)) for the greedy baseline.
    fifo_by_m = {
        row["m"]: row["max_occupancy"]
        for row in rows
        if row["protocol"] == "Greedy-FIFO" and row["ell"] == 2 and row["rho"] == 0.5
    }
    assert fifo_by_m[3] <= fifo_by_m[4] <= fifo_by_m[6]
