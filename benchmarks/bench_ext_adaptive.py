"""EXT-3 — Extension: adaptive adversaries vs the paper's algorithms.

The upper-bound theorems quantify over *all* ``(rho, sigma)``-bounded
adversaries, including adaptive ones that watch the buffers and aim at
whatever is already congested.  The oblivious stress patterns used in E1-E4
cannot rule out that adaptivity breaks the algorithms in practice; this
extension benchmark runs the configuration-aware Hotspot and Blocking
adversaries against PTS, PPTS and HPTS and records the measured occupancy
against each algorithm's bound, plus the audited burstiness of what the
adversary actually injected.

Each scenario is a declarative spec; because the audit needs the adversary
instance after the run, specs are resolved with :meth:`Session.prepare` and
executed as prepared runs.
"""

from __future__ import annotations

from repro.adversary.bounded import tightest_sigma
from repro.analysis.tables import format_table
from repro.api import Scenario, Session

SIGMA = 2
ROUNDS = 200


def _specs():
    return [
        (
            "PTS vs Hotspot",
            Scenario.line(32)
            .algorithm("pts")
            .adversary("hotspot", rho=1.0, sigma=SIGMA, rounds=ROUNDS)
            .seed(1),
        ),
        (
            "PTS vs Blocking",
            Scenario.line(32)
            .algorithm("pts")
            .adversary("blocking", rho=1.0, sigma=SIGMA, rounds=ROUNDS),
        ),
        (
            "PPTS vs Hotspot (d=4)",
            Scenario.line(48)
            .algorithm("ppts")
            .adversary(
                "hotspot", rho=1.0, sigma=SIGMA, rounds=ROUNDS,
                destinations=[12, 24, 36, 47],
            )
            .seed(2),
        ),
        (
            "HPTS vs Hotspot (ell=2)",
            Scenario.line(16)
            .algorithm("hpts", levels=2, branching=4, rho=0.5)
            .adversary(
                "hotspot", rho=0.5, sigma=SIGMA, rounds=ROUNDS,
                destinations=[5, 9, 13, 15],
            )
            .seed(3),
        ),
    ]


def _build_table():
    session = Session()
    rows = []
    for label, scenario in _specs():
        spec = scenario.named(label).policy(rounds=ROUNDS).build()
        prepared = session.prepare(spec)
        report = session.run(prepared)
        realized = prepared.adversary.realized_pattern()
        rows.append(
            {
                "scenario": label,
                "n": prepared.topology.num_nodes,
                "packets": len(realized),
                "audited_sigma": round(
                    tightest_sigma(realized, prepared.topology, prepared.adversary.rho), 2
                ),
                "max_occupancy": report.result.max_occupancy,
                "bound": None if report.bound is None else round(report.bound, 2),
                "within_bound": report.within_bound,
            }
        )
    return rows


def test_ext_adaptive_adversaries(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="EXT-3  Adaptive (configuration-aware) adversaries vs PTS/PPTS/HPTS",
        )
    )
    # The bounds hold even under adaptive pressure, and every adversary stayed
    # within its declared burst budget (audited independently).
    assert all(row["within_bound"] for row in rows)
    assert all(row["audited_sigma"] <= SIGMA + 1e-9 for row in rows)
    assert all(row["packets"] > 0 for row in rows)
