"""EXT-3 — Extension: adaptive adversaries vs the paper's algorithms.

The upper-bound theorems quantify over *all* ``(rho, sigma)``-bounded
adversaries, including adaptive ones that watch the buffers and aim at
whatever is already congested.  The oblivious stress patterns used in E1-E4
cannot rule out that adaptivity breaks the algorithms in practice; this
extension benchmark runs the configuration-aware Hotspot and Blocking
adversaries against PTS, PPTS and HPTS and records the measured occupancy
against each algorithm's bound, plus the audited burstiness of what the
adversary actually injected.
"""

from __future__ import annotations

from repro.adversary.adaptive import BlockingAdversary, HotspotAdversary
from repro.adversary.bounded import tightest_sigma
from repro.analysis.tables import format_table
from repro.core.bounds import hpts_upper_bound, ppts_upper_bound, pts_upper_bound
from repro.core.hpts import HierarchicalPeakToSink
from repro.core.ppts import ParallelPeakToSink
from repro.core.pts import PeakToSink
from repro.network.simulator import run_simulation
from repro.network.topology import LineTopology

SIGMA = 2
ROUNDS = 200


def _scenarios():
    # (label, line, adversary factory, algorithm factory, bound)
    line32 = LineTopology(32)
    line48 = LineTopology(48)
    line16 = LineTopology(16)
    return [
        (
            "PTS vs Hotspot",
            line32,
            lambda: HotspotAdversary(line32, 1.0, SIGMA, ROUNDS, seed=1),
            lambda: PeakToSink(line32),
            pts_upper_bound(SIGMA),
        ),
        (
            "PTS vs Blocking",
            line32,
            lambda: BlockingAdversary(line32, 1.0, SIGMA, ROUNDS),
            lambda: PeakToSink(line32),
            pts_upper_bound(SIGMA),
        ),
        (
            "PPTS vs Hotspot (d=4)",
            line48,
            lambda: HotspotAdversary(
                line48, 1.0, SIGMA, ROUNDS, destinations=[12, 24, 36, 47], seed=2
            ),
            lambda: ParallelPeakToSink(line48),
            ppts_upper_bound(4, SIGMA),
        ),
        (
            "HPTS vs Hotspot (ell=2)",
            line16,
            lambda: HotspotAdversary(
                line16, 0.5, SIGMA, ROUNDS, destinations=[5, 9, 13, 15], seed=3
            ),
            lambda: HierarchicalPeakToSink(line16, 2, 4, rho=0.5),
            hpts_upper_bound(16, 2, SIGMA),
        ),
    ]


def _build_table():
    rows = []
    for label, line, adversary_factory, algorithm_factory, bound in _scenarios():
        adversary = adversary_factory()
        result = run_simulation(
            line, algorithm_factory(), adversary, num_rounds=ROUNDS
        )
        realized = adversary.realized_pattern()
        rows.append(
            {
                "scenario": label,
                "n": line.num_nodes,
                "packets": len(realized),
                "audited_sigma": round(tightest_sigma(realized, line, adversary.rho), 2),
                "max_occupancy": result.max_occupancy,
                "bound": round(bound, 2),
                "within_bound": result.max_occupancy <= bound,
            }
        )
    return rows


def test_ext_adaptive_adversaries(run_once):
    rows = run_once(_build_table)
    print()
    print(
        format_table(
            rows,
            title="EXT-3  Adaptive (configuration-aware) adversaries vs PTS/PPTS/HPTS",
        )
    )
    # The bounds hold even under adaptive pressure, and every adversary stayed
    # within its declared burst budget (audited independently).
    assert all(row["within_bound"] for row in rows)
    assert all(row["audited_sigma"] <= SIGMA + 1e-9 for row in rows)
    assert all(row["packets"] > 0 for row in rows)
