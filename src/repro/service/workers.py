"""Lease-based worker processes: one supervised process per running job.

The server (:class:`~repro.service.server.JobService`) leases a job to a
fresh worker process.  The worker:

1. starts a daemon heartbeat thread that touches the job's heartbeat file
   every ``heartbeat_interval`` seconds — the server declares the lease
   expired (and kills + retries the job) when the file goes stale for
   longer than ``lease_seconds``,
2. runs the job's :class:`~repro.api.specs.ScenarioSpec` through
   :class:`~repro.api.Session` with ``checkpoint_every`` periodic snapshots
   (``Session.resume`` when a checkpoint from an earlier attempt exists, so
   a retry continues from the last durable round boundary instead of from
   scratch — and always inside a fresh packet-id scope, never a stale one),
3. atomically writes the canonical result row (done) or a typed error
   payload (deterministic logic failure) and exits with a disciplined code:

   * ``0``  — done; the result file is durable,
   * ``3``  — the simulation raised a typed :class:`ReproError`; retrying
     would deterministically recur, so the server fails the job immediately
     with the original error type preserved,
   * anything else / signal death — worker crash; the server retries with
     backoff from the last checkpoint until the budget runs out.

Deterministic chaos (the ``directive`` payload, derived from a
:class:`~repro.network.faults.FaultPlan` by the server) is installed
in-process and never leaks outside the worker: ``slow`` delays the worker
*before* heartbeats start (exercising lease expiry), ``crash`` at phase
``"running"`` kills the process right after its first durable checkpoint
commit, and ``crash`` at phase ``"checkpointing"`` kills it just *before*
the first save would happen (so recovery falls back to a clean round-0
replay).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Optional

from ..checkpoint import _atomic_write

__all__ = ["worker_entry", "WorkerHandle", "canonical_result_row"]

#: Worker exit code for a typed, deterministic simulation failure.
LOGIC_FAILURE_EXIT = 3
#: Worker exit code used by injected crash faults (distinguishable in logs).
_CHAOS_EXIT = 11


def canonical_result_row(report: Any) -> Dict[str, Any]:
    """The result row stored for a done job (canonical, JSON-safe).

    This is the same row the CLI's ``--json`` output prints, which is what
    the differential crash suite compares byte-for-byte between a faulted
    run and its crash-free twin.
    """
    row = report.as_row()
    if report.recovery is not None:
        row["recovery"] = report.recovery
    return row


def _atomic_json(path: str, payload: Dict[str, Any]) -> None:
    """Durably publish a JSON payload (two-phase write, then rename)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    _atomic_write(path, blob.encode("utf-8"))


def _load_json(path: str) -> Optional[Dict[str, Any]]:
    """Read a JSON payload written by :func:`_atomic_json`, or ``None``.

    Atomic publication means the file either exists complete or not at all;
    a parse failure therefore means foreign damage and reads as absent.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _start_heartbeat(path: str, interval: float) -> None:
    """Touch ``path`` every ``interval`` seconds from a daemon thread."""

    def beat() -> None:
        while True:
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
                os.utime(path, None)
            except OSError:
                return  # the server cleaned the file up: the lease is over
            time.sleep(interval)

    thread = threading.Thread(target=beat, name="job-heartbeat", daemon=True)
    thread.start()


def _install_checkpoint_crash(phase: str) -> None:
    """Arm a deterministic in-process crash around the first checkpoint save.

    Patches ``Simulator.save_checkpoint`` *in this worker process only* —
    the server and sibling workers are unaffected.  Phase ``"checkpointing"``
    dies before any bytes are written (the previous snapshot, if any, stays
    intact thanks to the two-phase checkpoint write); phase ``"running"``
    dies immediately after the first durable commit.
    """
    from ..network.simulator import Simulator

    original = Simulator.save_checkpoint

    def crashing(self: Any, path: str, *, spec: Optional[object] = None) -> int:
        if phase == "checkpointing":
            os._exit(_CHAOS_EXIT)
        written = original(self, path, spec=spec)
        os._exit(_CHAOS_EXIT)
        return written  # pragma: no cover - unreachable

    Simulator.save_checkpoint = crashing  # type: ignore[method-assign]


def worker_entry(payload: Dict[str, Any]) -> None:
    """Process entry point: execute one leased job (see module docstring)."""
    from ..api import ScenarioSpec, Session
    from ..api.builder import Scenario
    from ..network.errors import ReproError

    directive = payload.get("directive") or {}
    delay = directive.get("delay", 0.0)
    if delay:
        # A stalled worker: no heartbeats yet, so a delay longer than the
        # lease exercises the expiry -> kill -> resume path.
        time.sleep(delay)
    _start_heartbeat(payload["heartbeat_path"], payload["heartbeat_interval"])
    crash_phase = directive.get("crash_phase")
    if crash_phase is not None:
        _install_checkpoint_crash(crash_phase)

    def log(message: str) -> None:
        with open(payload["log_path"], "a", encoding="utf-8") as handle:
            handle.write(f"[worker pid={os.getpid()}] {message}\n")

    checkpoint_path = payload["checkpoint_path"]
    try:
        spec = ScenarioSpec.from_dict(payload["spec"])
        spec = (
            Scenario.from_spec(spec)
            .policy(
                checkpoint_every=payload["checkpoint_every"],
                checkpoint_path=checkpoint_path,
            )
            .build()
        )
        if os.path.exists(checkpoint_path):
            log(f"resuming from checkpoint {os.path.basename(checkpoint_path)}")
            report = Session().resume(checkpoint_path, spec=spec)
        else:
            log("starting from round 0")
            report = Session().run(spec)
    except ReproError as error:
        # Deterministic logic failure: record the typed error and exit with
        # the disciplined code so the server fails the job without retrying.
        log(f"typed failure: {type(error).__name__}: {error}")
        _atomic_json(
            payload["error_path"],
            {"type": type(error).__name__, "message": str(error)},
        )
        os._exit(LOGIC_FAILURE_EXIT)
    _atomic_json(payload["result_path"], canonical_result_row(report))
    log(f"done: max_occupancy={report.max_occupancy}")


class WorkerHandle:
    """Server-side view of one leased worker process."""

    __slots__ = (
        "job_id", "process", "heartbeat_path", "lease_seconds", "started",
    )

    def __init__(
        self,
        job_id: str,
        process: Any,
        heartbeat_path: str,
        lease_seconds: float,
    ) -> None:
        self.job_id = job_id
        self.process = process
        self.heartbeat_path = heartbeat_path
        self.lease_seconds = lease_seconds
        self.started = time.time()

    def alive(self) -> bool:
        return bool(self.process.is_alive())

    @property
    def exitcode(self) -> Optional[int]:
        return self.process.exitcode

    def last_heartbeat(self) -> float:
        """Wall-clock time of the last sign of life (spawn counts as one)."""
        try:
            beat = os.path.getmtime(self.heartbeat_path)
        except OSError:
            beat = self.started
        return max(self.started, beat)

    def lease_expired(self, now: Optional[float] = None) -> bool:
        reference = time.time() if now is None else now
        return (reference - self.last_heartbeat()) > self.lease_seconds

    def kill(self) -> None:
        """Hard-stop the worker and reap it (idempotent)."""
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=10.0)
