"""Durable, append-only job journal with CRC'd records and segment rotation.

This is the crash-safety backbone of :class:`~repro.service.server.JobService`:
every lifecycle transition is appended (and optionally fsync'd) *before* it
takes effect in memory, so ``kill -9`` of the server at any instant loses at
most the record currently being written — and that torn tail is detected and
discarded on replay, never misread.

File layout (all integers little-endian), one or more segment files
``journal-<seq>.log`` in the journal directory::

    MAGIC ("REPROJRNL", 9 bytes)
    u32   format version
    ...   records: u32 payload length | u32 CRC-32 of payload | payload
          (payload = canonical JSON, sorted keys, utf-8)

Durability follows the two-phase idiom of :mod:`repro.checkpoint`:

* appends write + flush + fsync the active segment (``fsync=False`` trades
  power-loss durability for speed; process crashes are still safe because
  the kernel holds the written bytes),
* rotation writes the compaction snapshot to a temp file, fsyncs it,
  atomically renames it into place as the *next* segment, fsyncs the
  directory entry, and only then unlinks the older segments — a crash at
  any point leaves either the old segment chain or the complete new one.

Replay tolerates exactly one kind of damage: a truncated or CRC-failing
record at the *very end of the last segment* (the ``kill -9``-mid-append
artifact), which is discarded and truncated away on the next open.  Damage
anywhere else raises the typed
:class:`~repro.service.errors.JournalCorruptError`.
"""

from __future__ import annotations

import json
import os
import re
import struct
import tempfile
import zlib
from typing import Any, Dict, List, Optional, Tuple

from .errors import JournalCorruptError, JournalError

__all__ = ["Journal", "JOURNAL_MAGIC", "JOURNAL_VERSION"]

JOURNAL_MAGIC = b"REPROJRNL"
JOURNAL_VERSION = 1

_HEADER = struct.Struct(f"<{len(JOURNAL_MAGIC)}sI")
_FRAME = struct.Struct("<II")
_SEGMENT_RE = re.compile(r"^journal-(\d{8})\.log$")


def _segment_name(sequence: int) -> str:
    return f"journal-{sequence:08d}.log"


def _encode_record(record: Dict[str, Any]) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


class Journal:
    """Append-only write-ahead log of JSON records across rotated segments."""

    __slots__ = ("directory", "fsync", "max_segment_bytes", "_sequence",
                 "_path", "_handle")

    def __init__(
        self,
        directory: str,
        *,
        fsync: bool = True,
        max_segment_bytes: int = 1 << 20,
    ) -> None:
        if max_segment_bytes < 4096:
            raise JournalError(
                f"max_segment_bytes must be >= 4096, got {max_segment_bytes}"
            )
        self.directory = os.path.abspath(directory)
        self.fsync = fsync
        self.max_segment_bytes = max_segment_bytes
        os.makedirs(self.directory, exist_ok=True)
        self._sequence, created = self._discover_active()
        self._path = os.path.join(self.directory, _segment_name(self._sequence))
        if created:
            self._write_new_segment(self._path, [])
        #: Byte offset of the end of the last *valid* record (torn tails are
        #: truncated away here so appends never land after garbage).
        self._repair_active_tail()
        self._handle = open(self._path, "ab")

    # -- introspection -----------------------------------------------------------

    @property
    def active_path(self) -> str:
        return self._path

    @property
    def active_size(self) -> int:
        return os.path.getsize(self._path)

    def segments(self) -> List[str]:
        """Every segment path, oldest first."""
        found: List[Tuple[int, str]] = []
        for name in os.listdir(self.directory):
            match = _SEGMENT_RE.match(name)
            if match:
                found.append((int(match.group(1)), os.path.join(self.directory, name)))
        return [path for _, path in sorted(found)]

    # -- the write path ----------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record to the active segment."""
        blob = _encode_record(record)
        self._handle.write(blob)
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())

    def rotate(self, snapshot_records: List[Dict[str, Any]]) -> None:
        """Atomically start a new segment seeded with ``snapshot_records``.

        The snapshot must capture everything the older segments said (the
        server passes one compacted ``{"type": "snapshot", ...}`` record);
        once the new segment is durable the old ones are unlinked.
        """
        old_segments = self.segments()
        self._handle.close()
        self._sequence += 1
        new_path = os.path.join(self.directory, _segment_name(self._sequence))
        self._write_new_segment(new_path, snapshot_records)
        self._path = new_path
        self._handle = open(self._path, "ab")
        for stale in old_segments:
            os.unlink(stale)

    def close(self) -> None:
        self._handle.close()

    # -- the read path -----------------------------------------------------------

    def replay(self) -> List[Dict[str, Any]]:
        """Every record across all segments, oldest first.

        A torn/CRC-failing record at the tail of the *last* segment is
        discarded (crash-mid-append); damage anywhere else raises
        :class:`JournalCorruptError`.
        """
        self._handle.flush()
        records: List[Dict[str, Any]] = []
        segments = self.segments()
        for position, path in enumerate(segments):
            last = position == len(segments) - 1
            segment_records, valid_end, clean = _read_segment(path)
            if not clean and not last:
                raise JournalCorruptError(
                    f"journal segment {path} is damaged at byte {valid_end} "
                    f"but is not the final segment — records after the damage "
                    f"would be lost; restore the journal directory from backup"
                )
            records.extend(segment_records)
        return records

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _fsync_directory(directory: str) -> None:
        # Best-effort, mirroring repro.checkpoint._atomic_write: directories
        # cannot be opened for fsync on some platforms.
        try:
            directory_fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    def _discover_active(self) -> Tuple[int, bool]:
        existing = self.segments()
        if not existing:
            return 1, True
        match = _SEGMENT_RE.match(os.path.basename(existing[-1]))
        assert match is not None
        return int(match.group(1)), False

    def _write_new_segment(self, path: str, records: List[Dict[str, Any]]) -> None:
        """Two-phase segment creation: temp file, fsync, rename, dir fsync."""
        blob = _HEADER.pack(JOURNAL_MAGIC, JOURNAL_VERSION)
        for record in records:
            blob += _encode_record(record)
        descriptor, temp_path = tempfile.mkstemp(prefix=".jrnl-", dir=self.directory)
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(temp_path, path)
            if self.fsync:
                self._fsync_directory(self.directory)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    def _repair_active_tail(self) -> None:
        """Truncate a torn tail left by a crash mid-append."""
        _, valid_end, clean = _read_segment(self._path)
        if clean:
            return
        with open(self._path, "r+b") as handle:
            handle.truncate(valid_end)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())


def _read_segment(path: str) -> Tuple[List[Dict[str, Any]], int, bool]:
    """Parse one segment; returns ``(records, valid_end_offset, clean)``.

    ``clean`` is False when trailing bytes after ``valid_end_offset`` could
    not be parsed as a complete, CRC-valid record (the torn-tail case; the
    caller decides whether that is tolerable).
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _HEADER.size:
        raise JournalCorruptError(
            f"journal segment {path} is shorter than its header "
            f"({len(data)} < {_HEADER.size} bytes) — not a journal segment"
        )
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != JOURNAL_MAGIC:
        raise JournalCorruptError(
            f"journal segment {path} has bad magic {magic!r} — not a journal "
            f"segment"
        )
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal segment {path} has format version {version}; this "
            f"library reads version {JOURNAL_VERSION}"
        )
    records: List[Dict[str, Any]] = []
    offset = _HEADER.size
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            return records, offset, False
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > len(data):
            return records, offset, False
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return records, offset, False
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return records, offset, False
        records.append(record)
        offset = end
    return records, offset, True
