"""Typed synchronous client for the job service's Unix-socket protocol.

One JSON line out, one JSON line back, one connection per call.  Failures
are never stringly-typed: a server-side error deserialises back into the
exception class it was on the server (:func:`~repro.service.errors.
error_from_wire`), and transport-level trouble — no socket, nobody
listening, or a connection that died before the reply — raises
:class:`~repro.service.errors.ServiceUnavailableError` with the recovery
recipe in the message (resubmit with the same ``submit_key``; admission is
idempotent on it, so a retry can never double-run a job).
"""

from __future__ import annotations

import json
import os
import socket
import time
from typing import Any, Dict, List, Optional

from .errors import ServiceError, ServiceUnavailableError, error_from_wire

__all__ = ["ServiceClient"]


class ServiceClient:
    """Thin, dependency-free client: one method per service verb."""

    __slots__ = ("socket_path", "timeout")

    def __init__(self, socket_path: str, *, timeout: float = 30.0) -> None:
        self.socket_path = socket_path
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------

    def _call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        connection.settimeout(self.timeout)
        try:
            try:
                connection.connect(self.socket_path)
            except OSError as error:
                raise ServiceUnavailableError(
                    f"cannot reach the job service on {self.socket_path} "
                    f"({error}); is 'repro service serve' running?"
                ) from error
            blob = (json.dumps(request, sort_keys=True) + "\n").encode("utf-8")
            try:
                connection.sendall(blob)
                reply = self._read_line(connection)
            except (OSError, socket.timeout) as error:
                raise ServiceUnavailableError(
                    f"the job service connection failed mid-call ({error}); "
                    f"the server may have crashed.  Restart it with "
                    f"'repro service serve' — accepted jobs are journalled "
                    f"and will recover; resubmit with the same submit_key "
                    f"and admission stays exactly-once."
                ) from error
        finally:
            connection.close()
        if not reply:
            raise ServiceUnavailableError(
                "the job service closed the connection before replying (it "
                "crashed or the reply was lost).  The submission may or may "
                "not have been admitted: resubmit with the same submit_key — "
                "admission is idempotent on it, so this is safe either way."
            )
        try:
            response = json.loads(reply.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                f"the job service sent an unparseable reply: {error}"
            ) from error
        if not isinstance(response, dict):
            raise ServiceError(
                f"the job service replied with {type(response).__name__}, "
                f"expected an object"
            )
        if not response.get("ok"):
            raise error_from_wire(response.get("error"))
        return response

    @staticmethod
    def _read_line(connection: socket.socket) -> bytes:
        chunks: List[bytes] = []
        while True:
            chunk = connection.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)

    # -- verbs -------------------------------------------------------------------

    def submit(
        self,
        spec: Dict[str, Any],
        *,
        tenant: str = "default",
        priority: int = 0,
        submit_key: Optional[str] = None,
        max_retries: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit one scenario; returns ``{"job": id, "state": ...}``.

        Pass a ``submit_key`` (any caller-chosen string) to make admission
        idempotent: a resubmission after a lost reply returns the already
        admitted job instead of queueing a duplicate.
        """
        request: Dict[str, Any] = {
            "op": "submit",
            "spec": spec,
            "tenant": tenant,
            "priority": priority,
        }
        if submit_key is not None:
            request["submit_key"] = submit_key
        if max_retries is not None:
            request["max_retries"] = max_retries
        if checkpoint_every is not None:
            request["checkpoint_every"] = checkpoint_every
        return self._call(request)

    def ls(self) -> List[Dict[str, Any]]:
        return list(self._call({"op": "ls"})["jobs"])

    def info(self, job_id: str) -> Dict[str, Any]:
        return dict(self._call({"op": "info", "job": job_id})["info"])

    def logs(self, job_id: str) -> str:
        return str(self._call({"op": "logs", "job": job_id})["text"])

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._call({"op": "cancel", "job": job_id})

    def stats(self) -> Dict[str, Any]:
        return self._call({"op": "stats"})

    def cleanup(self) -> List[str]:
        """Purge terminal jobs and their files; returns the purged ids."""
        return list(self._call({"op": "cleanup"})["purged"])

    def drain(self) -> Dict[str, Any]:
        """Ask the server to drain gracefully (stop admitting, then exit)."""
        return self._call({"op": "drain"})

    # -- conveniences ------------------------------------------------------------

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 120.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Block until ``job_id`` reaches a terminal state; returns its info.

        Tolerates the service restarting mid-wait (the socket comes and
        goes); raises :class:`ServiceError` on timeout.
        """
        deadline = time.monotonic() + timeout
        last_unavailable: Optional[ServiceUnavailableError] = None
        while time.monotonic() < deadline:
            try:
                view = self.info(job_id)
            except ServiceUnavailableError as error:
                last_unavailable = error
                time.sleep(poll_interval)
                continue
            if view["state"] in ("done", "failed", "cancelled"):
                return view
            time.sleep(poll_interval)
        detail = f" (last transport error: {last_unavailable})" if last_unavailable else ""
        raise ServiceError(
            f"job {job_id} did not reach a terminal state within {timeout}s"
            f"{detail}"
        )

    def ping(self) -> bool:
        """Whether a live service answers on the socket."""
        if not os.path.exists(self.socket_path):
            return False
        try:
            self.stats()
        except ServiceError:
            return False
        return True
