"""Job lifecycle records and the legal state machine.

A job is one accepted :class:`~repro.api.specs.ScenarioSpec` execution.  Its
lifecycle is a small, closed state machine::

    queued ──────► running ──────► done
      ▲  │            │  │
      │  │            │  └───────► failed      (typed: JobFailedError, or the
      │  │            │                         worker's own ReproError)
      │  └──► cancelled ◄─────────┘ (cancel verb, from queued or running)
      │               │
      └───────────────┘ requeue: worker crash / lease expiry / drain /
                        stale-lease recovery — resumes from the last
                        durable checkpoint, never from a stale packet-id
                        scope (every attempt runs Session.run/resume inside
                        a fresh scope)

``done``, ``failed`` and ``cancelled`` are terminal.  Every transition is
journalled before it takes effect in memory (write-ahead), which is what
lets :meth:`~repro.service.server.JobService.recover` rebuild the exact
lifecycle state of every job after ``kill -9``.

The module is deliberately deterministic and clock-free: ordering decisions
belong to :mod:`repro.service.scheduler`, wall-clock leases to the server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .errors import JobError

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "LEGAL_TRANSITIONS",
    "JobRecord",
]

#: Every lifecycle state a job can be in.
JOB_STATES: Tuple[str, ...] = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES: Tuple[str, ...] = ("done", "failed", "cancelled")

#: ``state -> states it may move to``.  Anything else is a server bug and
#: raises :class:`JobError` rather than silently corrupting the journal.
LEGAL_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "queued": ("running", "cancelled", "failed"),
    "running": ("done", "failed", "cancelled", "queued"),
    "done": (),
    "failed": (),
    "cancelled": (),
}


@dataclass(slots=True)
class JobRecord:
    """The server-side state of one accepted job.

    Everything here round-trips through the journal (``to_dict`` /
    ``from_dict``), so a snapshot record can replace an arbitrary prefix of
    the log during segment rotation.
    """

    job_id: str
    #: Admission order, 0-based.  Also the ``segment`` coordinate service
    #: fault plans target (see docs/SERVICE.md).
    index: int
    tenant: str
    priority: int
    spec: Dict[str, Any]
    submit_key: Optional[str] = None
    state: str = "queued"
    #: Worker failures absorbed so far (server crashes do not count — a
    #: restitched service resumes the job with its budget intact).
    attempts: int = 0
    max_retries: int = 3
    checkpoint_every: int = 20
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    #: Canonical result row (set when ``state == "done"``).
    result: Optional[Dict[str, Any]] = field(default=None)

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise JobError(
                f"unknown job state {self.state!r}; expected one of {list(JOB_STATES)}"
            )
        if self.priority < 0:
            raise JobError(
                f"job priority must be >= 0, got {self.priority!r}"
            )
        if self.max_retries < 0:
            raise JobError(
                f"job max_retries must be >= 0, got {self.max_retries!r}"
            )
        if self.checkpoint_every < 1:
            raise JobError(
                f"job checkpoint_every must be >= 1, got {self.checkpoint_every!r}"
            )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(
        self,
        state: str,
        *,
        error_type: Optional[str] = None,
        error_message: Optional[str] = None,
        result: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Apply one legal transition (raises :class:`JobError` otherwise)."""
        if state not in JOB_STATES:
            raise JobError(
                f"unknown job state {state!r}; expected one of {list(JOB_STATES)}"
            )
        if state not in LEGAL_TRANSITIONS[self.state]:
            raise JobError(
                f"illegal transition {self.state!r} -> {state!r} for "
                f"{self.job_id} (legal: {list(LEGAL_TRANSITIONS[self.state])})"
            )
        self.state = state
        if error_type is not None:
            self.error_type = error_type
            self.error_message = error_message
        if result is not None:
            self.result = result

    # -- journal round-trip ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "index": self.index,
            "tenant": self.tenant,
            "priority": self.priority,
            "spec": self.spec,
            "submit_key": self.submit_key,
            "state": self.state,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "checkpoint_every": self.checkpoint_every,
            "error_type": self.error_type,
            "error_message": self.error_message,
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        if not isinstance(payload, dict):
            raise JobError(
                f"job record must be a JSON object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "job_id", "index", "tenant", "priority", "spec", "submit_key",
            "state", "attempts", "max_retries", "checkpoint_every",
            "error_type", "error_message", "result",
        }
        if unknown:
            raise JobError(f"job record has unknown keys {sorted(unknown)}")
        for required in ("job_id", "index", "tenant", "priority", "spec"):
            if required not in payload:
                raise JobError(f"job record is missing required key {required!r}")
        return cls(**payload)

    def public_view(self) -> Dict[str, Any]:
        """The ``info`` / ``ls`` row (everything except the raw spec)."""
        view = self.to_dict()
        view["spec_name"] = (self.spec or {}).get("name")
        del view["spec"]
        return view
