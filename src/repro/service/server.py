"""The crash-safe simulation job service.

:class:`JobService` is a long-running asyncio server whose headline property
is that **no accepted job is ever lost and no failure mode is untyped**:

* every lifecycle transition is written ahead to the durable journal
  (:mod:`repro.service.journal`), so ``kill -9`` of the server recovers every
  job to its exact lifecycle state on restart (:meth:`JobService.recover`),
* each running job holds a heartbeat lease in a supervised worker process
  (:mod:`repro.service.workers`); a dead worker or expired lease triggers
  bounded retry-with-backoff that resumes from the job's last durable
  checkpoint — never from a stale packet-id scope — and exhausting the
  budget lands the job in the typed terminal
  :class:`~repro.service.errors.JobFailedError` state,
* admission is bounded and fair (:mod:`repro.service.scheduler`): a full
  queue rejects with :class:`~repro.service.errors.ServiceOverloadedError`
  instead of growing without bound, and per-tenant fair share plus priority
  decide who runs next,
* ``SIGTERM`` drains gracefully: admission stops, running jobs are requeued
  at their last checkpoint, the journal is flushed, and a later ``serve``
  on the same data directory picks every job back up.

Deterministic service-level chaos reuses
:class:`~repro.network.faults.FaultPlan`: events target
``(round=attempt, segment=admission index, phase)`` with the service phases
``queued`` / ``running`` / ``checkpointing`` / ``draining`` (see
docs/SERVICE.md for the exact semantics of each (kind, phase) pair).

Protocol: one JSON-line request/response per Unix-socket connection; the
typed thin client lives in :mod:`repro.service.client`.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket as socket_module
import threading
import time
from typing import Any, Dict, List, Optional

from ..api.specs import ScenarioSpec, SpecError
from ..network.errors import ReproError
from ..network.faults import FaultInjector, FaultPlan
from .errors import (
    JobNotFoundError,
    ServiceError,
    ServiceUnavailableError,
    error_to_wire,
)
from .jobs import LEGAL_TRANSITIONS, JobRecord
from .journal import Journal
from .scheduler import check_admission, select_next
from .workers import WorkerHandle, _load_json, worker_entry

__all__ = ["JobService"]

#: Fields a job's auxiliary files use, keyed by suffix.
_JOB_SUFFIXES = (".ckpt", ".result.json", ".error.json", ".log", ".hb")


class JobService:
    """Durable job queue + lease-based worker pool over one data directory.

    Parameters
    ----------
    data_dir:
        Everything durable lives here: ``journal/`` (the write-ahead log)
        and ``jobs/`` (per-job checkpoint / result / error / log files).
        Restarting a service on the same directory recovers every job.
    socket_path:
        Unix socket to serve on (default ``<data_dir>/service.sock``).
    max_running:
        Worker-pool width — concurrent leases.
    max_queue_depth:
        Admission bound on *queued* jobs (typed rejection past it).
    lease_seconds:
        Heartbeat staleness after which a worker is declared dead.
    heartbeat_interval:
        How often workers touch their heartbeat file.
    poll_interval:
        Supervisor cadence (reap / lease-check / launch).
    retry_backoff:
        Base of the exponential requeue delay after a worker failure.
    default_max_retries / default_checkpoint_every:
        Per-job defaults when a submission does not pin its own.
    faults:
        Optional :class:`FaultPlan` of deterministic service-level chaos.
    fsync:
        Fsync journal appends (disable only in throwaway tests).
    crash_mode:
        What an injected server crash does: ``"abort"`` (default) stops the
        event loop abruptly in-process — the test half of the differential
        crash suite; ``"exit"`` calls ``os._exit(1)`` for real, which is
        what ``repro service serve`` uses so an external ``kill -9`` and an
        injected crash are indistinguishable.
    """

    def __init__(
        self,
        data_dir: str,
        *,
        socket_path: Optional[str] = None,
        max_running: int = 2,
        max_queue_depth: int = 64,
        lease_seconds: float = 30.0,
        heartbeat_interval: float = 0.5,
        poll_interval: float = 0.05,
        retry_backoff: float = 0.05,
        default_max_retries: int = 3,
        default_checkpoint_every: int = 20,
        faults: Optional[FaultPlan] = None,
        fsync: bool = True,
        crash_mode: str = "abort",
    ) -> None:
        if max_running < 1:
            raise ServiceError(f"max_running must be >= 1, got {max_running}")
        if max_queue_depth < 1:
            raise ServiceError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if crash_mode not in ("abort", "exit"):
            raise ServiceError(
                f"crash_mode must be 'abort' or 'exit', got {crash_mode!r}"
            )
        self.data_dir = os.path.abspath(data_dir)
        self.jobs_dir = os.path.join(self.data_dir, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.socket_path = socket_path or os.path.join(self.data_dir, "service.sock")
        self.max_running = max_running
        self.max_queue_depth = max_queue_depth
        self.lease_seconds = lease_seconds
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.retry_backoff = retry_backoff
        self.default_max_retries = default_max_retries
        self.default_checkpoint_every = default_checkpoint_every
        self.crash_mode = crash_mode
        self.journal = Journal(os.path.join(self.data_dir, "journal"), fsync=fsync)
        self._injector = FaultInjector(faults) if faults is not None else None
        self._mp = multiprocessing.get_context("spawn")

        self._jobs: Dict[str, JobRecord] = {}
        self._workers: Dict[str, WorkerHandle] = {}
        #: Earliest wall-clock time a requeued job may be leased again.
        self._ready_at: Dict[str, float] = {}
        self._counter = 0
        self._draining = False
        self._crashed = False

        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self, timeout: float = 30.0) -> "JobService":
        """Recover, bind the socket, and serve from a background thread."""
        if self._thread is not None:
            raise ServiceError("JobService.start() called twice")
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-job-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServiceError(
                f"job service did not come up within {timeout}s "
                f"(data_dir={self.data_dir})"
            )
        if self._failure is not None:
            failure = self._failure
            self._thread.join(timeout=5.0)
            raise ServiceError(f"job service failed to start: {failure}") from failure
        return self

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain: stop admitting, requeue running jobs, flush, exit."""
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass  # the loop finished between the check and the call
        self.join(timeout)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for the serving thread; re-raise an unexpected server bug."""
        if self._thread is not None:
            self._thread.join(timeout)
        if self._failure is not None and not self._crashed:
            raise ServiceError(
                f"job service died unexpectedly: {self._failure}"
            ) from self._failure

    def is_alive(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    @property
    def crashed(self) -> bool:
        """Whether an injected fault (or :meth:`crash`) took the server down."""
        return self._crashed

    def crash(self) -> None:
        """Chaos/testing surface: die like ``kill -9`` (no drain, no flush).

        Everything already journalled is durable; everything else is lost —
        exactly the contract :meth:`recover` is tested against.
        """
        self._crashed = True
        self._kill_all_workers()
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(stop_event.set)
            except RuntimeError:
                pass

    # -- recovery (also the stale-job cleanup pass) ------------------------------

    def recover(self) -> Dict[str, str]:
        """Rebuild the job table from the journal and clean up stale leases.

        Returns ``{job_id: action}`` describing what recovery did:
        ``"completed"`` (the worker's result landed but the old server died
        before recording it), ``"failed"`` (likewise for a typed worker
        error), or ``"requeued"`` (stale lease — the job resumes from its
        last checkpoint).  Orphaned files of unknown jobs are removed.
        """
        table: Dict[str, JobRecord] = {}
        for record in self.journal.replay():
            rtype = record.get("type")
            if rtype == "submit":
                job = JobRecord.from_dict(record["job"])
                table[job.job_id] = job
            elif rtype == "state":
                job = table.get(record["job"])
                if job is None:
                    raise ServiceError(
                        f"journal names unknown job {record.get('job')!r} in a "
                        f"state record — the journal directory was truncated "
                        f"or mixed between services"
                    )
                job.state = record["state"]
                job.attempts = record.get("attempts", job.attempts)
                if record.get("error_type") is not None:
                    job.error_type = record["error_type"]
                    job.error_message = record.get("error_message")
            elif rtype == "snapshot":
                table = {
                    payload["job_id"]: JobRecord.from_dict(payload)
                    for payload in record["jobs"]
                }
            elif rtype == "purge":
                table.pop(record["job"], None)
            # drain markers and unknown (newer) record types replay as no-ops

        self._jobs = table
        self._counter = 1 + max((job.index for job in table.values()), default=-1)
        actions: Dict[str, str] = {}
        for job_id in sorted(table, key=lambda jid: table[jid].index):
            job = table[job_id]
            if job.state == "done" and job.result is None:
                job.result = _load_json(self._job_path(job_id, ".result.json"))
            if job.state != "running":
                continue
            # Stale lease: the previous server died while this job held one.
            result = _load_json(self._job_path(job_id, ".result.json"))
            error = _load_json(self._job_path(job_id, ".error.json"))
            if result is not None:
                self._set_state(job, "done", result=result)
                actions[job_id] = "completed"
            elif error is not None:
                self._set_state(
                    job, "failed",
                    error_type=error.get("type", "JobFailedError"),
                    error_message=error.get("message", "worker failed"),
                )
                actions[job_id] = "failed"
            else:
                self._set_state(job, "queued")
                self._log(job, "stale lease: requeued at last checkpoint")
                actions[job_id] = "requeued"
        self._sweep_orphan_files()
        return actions

    def _sweep_orphan_files(self) -> None:
        """Remove job files that no live job owns (stale-job cleanup)."""
        known = set(self._jobs)
        for name in sorted(os.listdir(self.jobs_dir)):
            for suffix in _JOB_SUFFIXES:
                if name.endswith(suffix):
                    job_id = name[: -len(suffix)]
                    if job_id not in known:
                        os.unlink(os.path.join(self.jobs_dir, name))
                    break

    # -- the serving thread ------------------------------------------------------

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve_main())
        except BaseException as failure:  # surfaced by join(); never swallowed
            self._failure = failure
            self._ready.set()
            if not isinstance(failure, Exception):
                raise

    async def _serve_main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.recover()
        self._clear_stale_socket()
        server = await asyncio.start_unix_server(
            self._handle, path=self.socket_path, limit=1 << 20
        )
        self._ready.set()
        supervisor = asyncio.create_task(self._supervise())
        try:
            await self._stop_event.wait()
        finally:
            supervisor.cancel()
            try:
                await supervisor
            except asyncio.CancelledError:
                pass
            server.close()
            await server.wait_closed()
            if self._crashed:
                self._kill_all_workers()
            else:
                self._drain_running()
                self._remove_socket()
                self.journal.close()

    def _clear_stale_socket(self) -> None:
        if not os.path.exists(self.socket_path):
            return
        probe = socket_module.socket(socket_module.AF_UNIX, socket_module.SOCK_STREAM)
        try:
            probe.settimeout(1.0)
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale leftover from a dead server
        else:
            probe.close()
            raise ServiceError(
                f"another job service is already serving on {self.socket_path}"
            )
        finally:
            probe.close()

    def _remove_socket(self) -> None:
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass

    # -- supervision -------------------------------------------------------------

    async def _supervise(self) -> None:
        while True:
            await asyncio.sleep(self.poll_interval)
            if self._crashed or self._draining:
                continue
            now = time.time()
            self._reap(now)
            self._launch(now)
            self._maybe_rotate()

    def _reap(self, now: float) -> None:
        for job_id in sorted(self._workers):
            handle = self._workers[job_id]
            job = self._jobs[job_id]
            if handle.alive():
                if handle.lease_expired(now):
                    handle.kill()
                    self._workers.pop(job_id)
                    stale = now - handle.last_heartbeat()
                    self._worker_failed(
                        job,
                        f"lease expired: no heartbeat for {stale:.2f}s "
                        f"(lease_seconds={self.lease_seconds})",
                        now,
                    )
                continue
            handle.kill()  # reap the exit status
            self._workers.pop(job_id)
            exitcode = handle.exitcode
            if exitcode == 0:
                result = _load_json(self._job_path(job_id, ".result.json"))
                if result is not None:
                    self._set_state(job, "done", result=result)
                    self._log(job, "done")
                    continue
                self._worker_failed(
                    job, "worker exited 0 without publishing a result", now
                )
            elif exitcode == 3:
                error = _load_json(self._job_path(job_id, ".error.json")) or {}
                self._set_state(
                    job, "failed",
                    error_type=error.get("type", "JobFailedError"),
                    error_message=error.get("message", "worker logic failure"),
                )
                self._log(
                    job,
                    f"failed (typed, not retried): {job.error_type}: "
                    f"{job.error_message}",
                )
            else:
                self._worker_failed(
                    job, f"worker died with exit code {exitcode}", now
                )

    def _worker_failed(self, job: JobRecord, reason: str, now: float) -> None:
        job.attempts += 1
        if job.attempts > job.max_retries:
            message = (
                f"retry budget exhausted for {job.job_id}: {job.attempts} "
                f"worker failure(s), max_retries={job.max_retries}.  Last "
                f"failure: {reason}.  Raise max_retries on the submission, "
                f"or inspect 'repro service logs {job.job_id}'."
            )
            self._set_state(
                job, "failed",
                error_type="JobFailedError", error_message=message,
            )
            self._log(job, f"failed: {message}")
            return
        backoff = self.retry_backoff * (2 ** (job.attempts - 1))
        self._ready_at[job.job_id] = now + backoff
        self._set_state(job, "queued")
        self._log(
            job,
            f"worker failure ({reason}); retry {job.attempts}/"
            f"{job.max_retries} in {backoff:.2f}s from last checkpoint",
        )

    def _launch(self, now: float) -> None:
        while len(self._workers) < self.max_running:
            runnable = [
                job
                for job in self._jobs.values()
                if job.state == "queued"
                and self._ready_at.get(job.job_id, 0.0) <= now
            ]
            running_by_tenant: Dict[str, int] = {}
            for job_id in self._workers:
                tenant = self._jobs[job_id].tenant
                running_by_tenant[tenant] = running_by_tenant.get(tenant, 0) + 1
            job = select_next(runnable, running_by_tenant)
            if job is None:
                return
            directive = self._worker_directive(job)
            self._set_state(job, "running")
            payload = {
                "spec": job.spec,
                "checkpoint_every": job.checkpoint_every,
                "checkpoint_path": self._job_path(job.job_id, ".ckpt"),
                "result_path": self._job_path(job.job_id, ".result.json"),
                "error_path": self._job_path(job.job_id, ".error.json"),
                "log_path": self._job_path(job.job_id, ".log"),
                "heartbeat_path": self._job_path(job.job_id, ".hb"),
                "heartbeat_interval": self.heartbeat_interval,
                "directive": directive,
            }
            process = self._mp.Process(
                target=worker_entry, args=(payload,), name=f"job-{job.job_id}"
            )
            process.start()
            self._workers[job.job_id] = WorkerHandle(
                job.job_id,
                process,
                payload["heartbeat_path"],
                self.lease_seconds,
            )
            self._log(
                job,
                f"lease granted (attempt {job.attempts + 1}, pid {process.pid})"
                + (f", chaos directive {directive}" if directive else ""),
            )

    def _worker_directive(self, job: JobRecord) -> Optional[Dict[str, Any]]:
        """Worker-bound chaos for this (attempt, job) lease, if any."""
        if self._injector is None:
            return None
        directive: Dict[str, Any] = {}
        for phase in ("running", "checkpointing"):
            fired = self._injector.directives_for(job.attempts, job.index, phase)
            if fired is None:
                continue
            if fired.get("crash") and "crash_phase" not in directive:
                directive["crash_phase"] = phase
            if fired.get("delay"):
                directive["delay"] = directive.get("delay", 0.0) + fired["delay"]
        return directive or None

    def _maybe_rotate(self) -> None:
        if self.journal.active_size <= self.journal.max_segment_bytes:
            return
        snapshot = {
            "type": "snapshot",
            "jobs": [
                self._jobs[job_id].to_dict()
                for job_id in sorted(self._jobs, key=lambda jid: self._jobs[jid].index)
            ],
        }
        self.journal.rotate([snapshot])

    def _kill_all_workers(self) -> None:
        for job_id in sorted(self._workers):
            self._workers[job_id].kill()
        self._workers.clear()

    def _drain_running(self) -> None:
        """Graceful drain: checkpoint-requeue every running job, flush, stop."""
        self._draining = True
        self.journal.append({"type": "drain", "event": "begin"})
        for job_id in sorted(self._workers):
            handle = self._workers.pop(job_id)
            handle.kill()
            job = self._jobs[job_id]
            self._set_state(job, "queued")
            self._log(job, "drained: requeued at last checkpoint")
            if self._maybe_server_crash("draining", job.index, job.attempts):
                return
        self.journal.append({"type": "drain", "event": "end"})

    # -- durable transitions -----------------------------------------------------

    def _job_path(self, job_id: str, suffix: str) -> str:
        return os.path.join(self.jobs_dir, f"{job_id}{suffix}")

    def _set_state(
        self,
        job: JobRecord,
        state: str,
        *,
        error_type: Optional[str] = None,
        error_message: Optional[str] = None,
        result: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Write-ahead transition: journal first, then apply in memory."""
        if state not in LEGAL_TRANSITIONS[job.state]:
            # advance() would raise the same; check before the journal write
            # so an illegal transition never reaches the durable log.
            job.advance(state)
        self.journal.append(
            {
                "type": "state",
                "job": job.job_id,
                "state": state,
                "attempts": job.attempts,
                "error_type": error_type,
                "error_message": error_message,
            }
        )
        job.advance(
            state,
            error_type=error_type,
            error_message=error_message,
            result=result,
        )

    def _log(self, job: JobRecord, message: str) -> None:
        with open(self._job_path(job.job_id, ".log"), "a", encoding="utf-8") as handle:
            handle.write(f"[service] {job.job_id} {message}\n")

    def _maybe_server_crash(self, phase: str, index: int, attempt: int) -> bool:
        """Fire a server-side fault, if the plan has one at this coordinate."""
        if self._injector is None:
            return False
        fired = self._injector.directives_for(attempt, index, phase)
        if fired is None:
            return False
        if fired.get("delay"):
            time.sleep(fired["delay"])  # a stalled server: blocks the loop
        if fired.get("crash"):
            if self.crash_mode == "exit":
                self._kill_all_workers()
                os._exit(1)
            self.crash()
            return True
        return False

    # -- request handling --------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        response: Optional[Dict[str, Any]] = None
        request: Optional[Dict[str, Any]] = None
        stop_after_reply = False
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        except asyncio.TimeoutError:
            writer.close()
            return
        try:
            decoded = json.loads(line.decode("utf-8"))
            if not isinstance(decoded, dict):
                raise SpecError("request must be a JSON object")
            request = decoded
            op = request.get("op")
            if op == "drain":
                self._draining = True
                response = {"ok": True, "draining": True}
                stop_after_reply = True
            else:
                response = {"ok": True, **self._dispatch(op, request)}
        except ReproError as error:
            response = {"ok": False, "error": error_to_wire(error)}
        except json.JSONDecodeError as error:
            response = {
                "ok": False,
                "error": {"type": "ServiceError", "message": f"bad request: {error}"},
            }

        if self._crashed:
            writer.close()  # the server "died" before replying
            return
        if self._should_drop_reply(request, response):
            writer.close()
            return
        writer.write((json.dumps(response, sort_keys=True) + "\n").encode("utf-8"))
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # client went away; its retry will re-ask
        if stop_after_reply and self._stop_event is not None:
            self._stop_event.set()

    def _should_drop_reply(
        self,
        request: Optional[Dict[str, Any]],
        response: Optional[Dict[str, Any]],
    ) -> bool:
        """A ``drop`` fault at phase ``queued``: lose the submit reply."""
        if (
            self._injector is None
            or request is None
            or response is None
            or request.get("op") != "submit"
            or not response.get("ok")
        ):
            return False
        job = self._jobs.get(response.get("job", ""))
        if job is None:
            return False
        return self._injector.drop_next_send(0, job.index, "queued")

    def _dispatch(self, op: Optional[str], request: Dict[str, Any]) -> Dict[str, Any]:
        if op == "submit":
            return self._op_submit(request)
        if op == "ls":
            return self._op_ls()
        if op == "info":
            return self._op_info(self._require_job(request))
        if op == "logs":
            return self._op_logs(self._require_job(request))
        if op == "cancel":
            return self._op_cancel(self._require_job(request))
        if op == "stats":
            return self._op_stats()
        if op == "cleanup":
            return self._op_cleanup()
        raise ServiceError(
            f"unknown op {op!r}; expected submit/ls/info/logs/cancel/"
            f"stats/cleanup/drain"
        )

    def _require_job(self, request: Dict[str, Any]) -> JobRecord:
        job_id = request.get("job")
        if not isinstance(job_id, str) or not job_id:
            raise ServiceError("request needs a 'job' id string")
        job = self._jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job

    # -- operations --------------------------------------------------------------

    def _op_submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        if self._draining:
            raise ServiceUnavailableError(
                "the service is draining and no longer admits jobs; "
                "resubmit after the next 'repro service serve'"
            )
        submit_key = request.get("submit_key")
        if submit_key is not None and not isinstance(submit_key, str):
            raise SpecError(f"submit_key must be a string, got {submit_key!r}")
        if submit_key:
            for job in self._jobs.values():
                if job.submit_key == submit_key:
                    return {"job": job.job_id, "state": job.state, "duplicate": True}
        spec_payload = request.get("spec")
        if not isinstance(spec_payload, dict):
            raise SpecError(
                f"submit needs a 'spec' JSON object (a ScenarioSpec), got "
                f"{type(spec_payload).__name__}"
            )
        ScenarioSpec.from_dict(spec_payload)  # typed validation before admission
        tenant = request.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise SpecError(f"tenant must be a non-empty string, got {tenant!r}")
        priority = request.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise SpecError(f"priority must be an int, got {priority!r}")
        queued = sum(1 for job in self._jobs.values() if job.state == "queued")
        check_admission(queued, self.max_queue_depth)
        index = self._counter
        self._counter += 1
        job = JobRecord(
            job_id=f"job-{index:06d}",
            index=index,
            tenant=tenant,
            priority=priority,
            spec=spec_payload,
            submit_key=submit_key or None,
            max_retries=request.get("max_retries", self.default_max_retries),
            checkpoint_every=request.get(
                "checkpoint_every", self.default_checkpoint_every
            ),
        )
        self.journal.append({"type": "submit", "job": job.to_dict()})
        self._jobs[job.job_id] = job
        self._log(job, f"queued (tenant={tenant}, priority={priority})")
        self._maybe_server_crash("queued", job.index, 0)
        return {"job": job.job_id, "state": job.state}

    def _op_ls(self) -> Dict[str, Any]:
        rows = [
            {
                "job": job.job_id,
                "tenant": job.tenant,
                "priority": job.priority,
                "state": job.state,
                "attempts": job.attempts,
                "scenario": (job.spec or {}).get("name"),
            }
            for job in sorted(self._jobs.values(), key=lambda j: j.index)
        ]
        return {"jobs": rows}

    def _op_info(self, job: JobRecord) -> Dict[str, Any]:
        return {"info": job.public_view()}

    def _op_logs(self, job: JobRecord) -> Dict[str, Any]:
        path = self._job_path(job.job_id, ".log")
        text = ""
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        return {"text": text}

    def _op_cancel(self, job: JobRecord) -> Dict[str, Any]:
        if job.terminal:
            return {"job": job.job_id, "state": job.state, "already_terminal": True}
        handle = self._workers.pop(job.job_id, None)
        if handle is not None:
            handle.kill()
        self._set_state(job, "cancelled")
        self._log(job, "cancelled")
        return {"job": job.job_id, "state": job.state}

    def _op_stats(self) -> Dict[str, Any]:
        by_state: Dict[str, int] = {}
        for job in self._jobs.values():
            by_state[job.state] = by_state.get(job.state, 0) + 1
        return {
            "jobs": len(self._jobs),
            "by_state": by_state,
            "running_leases": len(self._workers),
            "draining": self._draining,
            "worker_failures": sum(job.attempts for job in self._jobs.values()),
        }

    def _op_cleanup(self) -> Dict[str, Any]:
        """Purge terminal jobs and their files (the stale-job cleanup verb)."""
        purged: List[str] = []
        for job_id in sorted(self._jobs, key=lambda jid: self._jobs[jid].index):
            job = self._jobs[job_id]
            if not job.terminal:
                continue
            self.journal.append({"type": "purge", "job": job_id})
            self._jobs.pop(job_id)
            for suffix in _JOB_SUFFIXES:
                path = self._job_path(job_id, suffix)
                if os.path.exists(path):
                    os.unlink(path)
            purged.append(job_id)
        return {"purged": purged}
