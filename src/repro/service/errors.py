"""Typed error families for the simulation job service.

The service's headline contract is that **no failure mode is untyped**: every
way a job, the queue, the journal or the transport can go wrong has a named
exception class deriving from :class:`~repro.network.errors.ReproError`, so
the CLI maps the whole family to exit code 2 and callers can catch exactly
the failures they can handle.

Errors also cross the client/server socket as data: the server serialises
``{"type": <class name>, "message": <str>}`` and the client rebuilds the
typed exception through :func:`error_from_wire`, so a remote failure raises
in the caller exactly like a local one.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from ..network.errors import ReproError

__all__ = [
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "JobError",
    "JobNotFoundError",
    "JobFailedError",
    "JournalError",
    "JournalCorruptError",
    "error_from_wire",
    "error_to_wire",
]


class ServiceError(ReproError):
    """Base class for job-service failures (:mod:`repro.service`).

    Like the checkpoint and sharding families, every service error derives
    from :class:`ReproError`, so the CLI maps all of them to exit code 2.
    """


class ServiceOverloadedError(ServiceError):
    """Raised when admission control rejects a submission.

    The queue is bounded (``JobService(max_queue_depth=...)``): past the
    limit the service refuses typed-and-loud instead of growing without
    bound.  The message names the knob; the client should back off and
    retry, keeping its ``submit_key`` so the retry stays exactly-once.
    """


class ServiceUnavailableError(ServiceError):
    """Raised when the service cannot be reached or is not accepting work.

    Covers a missing/dead socket, a connection that closed before the reply
    arrived (the server crashed or the response was dropped — resubmit with
    the same ``submit_key`` for exactly-once admission), and submissions
    during a graceful drain.
    """


class JobError(ServiceError):
    """Base class for failures scoped to one job."""


class JobNotFoundError(JobError):
    """Raised when a job id does not exist on the service."""

    def __init__(self, job_id: str, *, message: Optional[str] = None) -> None:
        self.job_id = job_id
        super().__init__(
            message
            or f"no such job {job_id!r}; run 'repro service ls' to list jobs "
            f"(terminal jobs may have been purged by cleanup)"
        )


class JobFailedError(JobError):
    """A job's terminal failure state: its retry budget is exhausted.

    This is the *typed terminal* end of the retry ladder: the supervisor
    absorbed ``max_retries`` worker failures (crash, lease expiry), each
    retry resuming from the job's last durable checkpoint, and gave up.
    The message records the attempt count and the last underlying failure
    so the state is actionable, not just "failed".
    """


class JournalError(ServiceError):
    """Base class for job-journal failures (:mod:`repro.service.journal`)."""


class JournalCorruptError(JournalError):
    """Raised when the journal is damaged beyond the torn-tail allowance.

    Damage in any *non-final* segment, or a file that is not a journal
    segment at all, means bytes were lost in the middle of the log —
    replaying past it could resurrect stale job states, so the journal
    refuses rather than guesses.  (A torn or CRC-failing tail in the *final*
    segment is the expected artifact of ``kill -9`` mid-append and is
    discarded silently.)
    """


#: Exception classes the wire protocol can name.  Anything not listed
#: deserialises as plain :class:`ServiceError` (still typed, still exit 2).
_WIRE_TYPES: Dict[str, Type[ReproError]] = {}


def _register_wire_types() -> None:
    from ..api.specs import SpecError
    from ..network.errors import ConfigurationError

    for cls in (
        ServiceError,
        ServiceOverloadedError,
        ServiceUnavailableError,
        JobError,
        JobFailedError,
        JournalError,
        JournalCorruptError,
        SpecError,
        ConfigurationError,
    ):
        _WIRE_TYPES[cls.__name__] = cls


def error_to_wire(error: ReproError) -> Dict[str, str]:
    """Serialise a typed error for the socket protocol."""
    payload = {"type": type(error).__name__, "message": str(error)}
    job_id = getattr(error, "job_id", None)
    if job_id is not None:
        payload["job"] = job_id
    return payload


def error_from_wire(payload: Optional[Dict[str, str]]) -> ReproError:
    """Rebuild the typed exception a server response describes."""
    if not _WIRE_TYPES:
        _register_wire_types()
    if not isinstance(payload, dict):
        return ServiceError("server reported an error with no detail")
    name = payload.get("type", "")
    message = payload.get("message", "unknown service error")
    if name == "JobNotFoundError":
        return JobNotFoundError(payload.get("job", "?"), message=message)
    cls = _WIRE_TYPES.get(name)
    if cls is None:
        return ServiceError(f"{name}: {message}" if name else message)
    return cls(message)
