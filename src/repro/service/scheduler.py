"""Admission control and fair-share/priority job selection.

Pure, deterministic decision functions — no clocks, no randomness, no I/O —
so scheduling order is a function of the job table alone and the
differential crash suite can rely on it: a restarted service that recovers
the same job table makes the same decisions.

Policy (in tie-break order):

1. **Fair share**: among tenants with runnable jobs, the one holding the
   fewest running leases goes first — one tenant flooding the queue cannot
   starve the others.
2. **Priority**: within a tenant, higher ``priority`` wins.
3. **FIFO**: within a priority, lower admission index (submission order).

Admission is bounded: past ``max_queue_depth`` queued jobs the service
rejects with the typed
:class:`~repro.service.errors.ServiceOverloadedError` instead of growing
without bound.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .errors import ServiceOverloadedError
from .jobs import JobRecord

__all__ = ["check_admission", "select_next"]


def check_admission(queued_count: int, max_queue_depth: int) -> None:
    """Reject (typed, actionable) when the bounded queue is full."""
    if queued_count >= max_queue_depth:
        raise ServiceOverloadedError(
            f"job queue is full ({queued_count}/{max_queue_depth} queued); "
            f"the service sheds load instead of growing without bound — "
            f"retry with backoff (keep the same submit_key for exactly-once "
            f"admission), or raise JobService(max_queue_depth=...)"
        )


def select_next(
    runnable: Sequence[JobRecord],
    running_by_tenant: Dict[str, int],
) -> Optional[JobRecord]:
    """The next job to lease, or ``None`` when nothing is runnable.

    ``runnable`` is the queued jobs whose retry backoff has elapsed;
    ``running_by_tenant`` counts currently-leased jobs per tenant (tenants
    absent from the mapping hold zero leases).
    """
    best: Optional[JobRecord] = None
    best_key = None
    for job in runnable:
        key = (running_by_tenant.get(job.tenant, 0), -job.priority, job.index)
        if best_key is None or key < best_key:
            best = job
            best_key = key
    return best
