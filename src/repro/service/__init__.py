"""The crash-safe simulation job service (``repro service ...``).

A durable front door for running :class:`~repro.api.specs.ScenarioSpec`
simulations as supervised jobs: accepted work is journalled before it is
acknowledged, executed in lease-holding worker processes with periodic
checkpoints, retried with backoff from the last checkpoint on worker death,
and recovered to its exact lifecycle state after ``kill -9`` of the server.
Every failure mode is a typed :class:`~repro.network.errors.ReproError`
subclass.  See docs/SERVICE.md for the design.
"""

from .client import ServiceClient
from .errors import (
    JobError,
    JobFailedError,
    JobNotFoundError,
    JournalCorruptError,
    JournalError,
    ServiceError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from .jobs import JOB_STATES, TERMINAL_STATES, JobRecord
from .journal import Journal
from .server import JobService

__all__ = [
    "JobService",
    "ServiceClient",
    "Journal",
    "JobRecord",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceUnavailableError",
    "JobError",
    "JobNotFoundError",
    "JobFailedError",
    "JournalError",
    "JournalCorruptError",
]
