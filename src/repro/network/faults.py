"""Deterministic fault injection for the sharded runtime.

Chaos testing is only useful when a failing run can be replayed exactly, so
faults here are *data*, not monkey-patching: a :class:`FaultPlan` is a frozen,
JSON-serializable list of :class:`FaultEvent` records ("crash worker 1 at
round 7 during the select phase", "drop the next two sends to worker 0",
"slow worker 2 by 300 ms").  The plan travels through
:class:`~repro.network.sharded.ExecutionPolicy` — never through the
:class:`~repro.api.specs.ScenarioSpec` — so a chaos run and its fault-free
twin share byte-identical specs, spec hashes and checkpoint headers.  That is
what lets the differential recovery suite compare them bit for bit.

Plans can be written by hand, loaded from JSON (``FaultPlan.from_json``) or
drawn reproducibly from a seed (``FaultPlan.sample``), which uses
``random.Random(seed)`` only — the module never touches global RNG state.

The mutable side lives in :class:`FaultInjector`: the coordinator consults it
once per (round, segment, phase) edge.  Crash/slow events fire exactly once
and stay fired across recovery respawns (a replayed superstep must not
re-kill the replacement worker); drop events hold a token count that each
simulated send failure decrements.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FAULT_PHASES",
    "SERVICE_FAULT_PHASES",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
]

#: Supported failure modes.  ``crash`` kills the worker (hard process exit on
#: the process transport), ``slow`` delays the worker before it serves the
#: phase (tripping ``heartbeat_timeout`` when the delay exceeds it), and
#: ``drop`` makes the coordinator's next ``count`` sends to the worker fail,
#: exercising the bounded retry-with-backoff path.
FAULT_KINDS = ("crash", "slow", "drop")

#: Superstep phases a fault can target; ``checkpoint`` covers the periodic
#: per-segment snapshot command between supersteps.
FAULT_PHASES = ("begin", "select", "finish", "checkpoint")

#: Job-lifecycle phases the service layer (:mod:`repro.service`) targets
#: with the same plan machinery.  Coordinates there read differently —
#: ``segment`` is the job's admission index and ``round`` the attempt
#: number — but the algebra (fire-once crash/slow, token-counted drop,
#: JSON round-trip, seeded sampling) is shared.  ``FaultPlan.sample`` only
#: draws from :data:`FAULT_PHASES`; service plans are written explicitly.
SERVICE_FAULT_PHASES = ("queued", "running", "checkpointing", "draining")

_PLAN_VERSION = 1


@dataclass(frozen=True)
class FaultEvent:
    """One injected failure, pinned to a (round, segment, phase) coordinate.

    ``segment`` indexes the *current* segment plan: after a ``fold`` recovery
    merges two segments, surviving workers are renumbered and later events
    target the new indices.  Events whose coordinate never occurs (round past
    the horizon, segment out of range) simply never fire.
    """

    kind: str
    round: int
    segment: int
    phase: str = "begin"
    #: ``slow`` only: seconds the worker sleeps before serving the phase.
    delay: float = 0.0
    #: ``drop`` only: how many consecutive send attempts fail.
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{list(FAULT_KINDS)}"
            )
        if self.phase not in FAULT_PHASES and self.phase not in SERVICE_FAULT_PHASES:
            raise ConfigurationError(
                f"unknown fault phase {self.phase!r}; expected a superstep "
                f"phase {list(FAULT_PHASES)} or a service job-lifecycle "
                f"phase {list(SERVICE_FAULT_PHASES)}"
            )
        if not isinstance(self.round, int) or isinstance(self.round, bool) \
                or self.round < 0:
            raise ConfigurationError(
                f"fault round must be a non-negative int, got {self.round!r}"
            )
        if not isinstance(self.segment, int) or isinstance(self.segment, bool) \
                or self.segment < 0:
            raise ConfigurationError(
                f"fault segment must be a non-negative int, got "
                f"{self.segment!r}"
            )
        if self.kind == "slow":
            if not isinstance(self.delay, (int, float)) \
                    or isinstance(self.delay, bool) or self.delay <= 0:
                raise ConfigurationError(
                    f"slow fault needs delay > 0 seconds, got {self.delay!r}"
                )
        if self.kind == "drop":
            if not isinstance(self.count, int) or isinstance(self.count, bool) \
                    or self.count < 1:
                raise ConfigurationError(
                    f"drop fault needs count >= 1, got {self.count!r}"
                )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "round": self.round,
            "segment": self.segment,
            "phase": self.phase,
            "delay": self.delay,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultEvent":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault event must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        unknown = set(payload) - {"kind", "round", "segment", "phase",
                                  "delay", "count"}
        if unknown:
            raise ConfigurationError(
                f"fault event has unknown keys {sorted(unknown)}"
            )
        for required in ("kind", "round", "segment"):
            if required not in payload:
                raise ConfigurationError(
                    f"fault event is missing required key {required!r}"
                )
        return cls(
            kind=payload["kind"],
            round=payload["round"],
            segment=payload["segment"],
            phase=payload.get("phase", "begin"),
            delay=payload.get("delay", 0.0),
            count=payload.get("count", 1),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable schedule of injected failures.

    Plans are hashable (they ride inside the frozen
    :class:`~repro.network.sharded.ExecutionPolicy`) and round-trip through
    JSON unchanged, so a chaos run can be attached to a bug report and
    replayed byte-identically.  ``seed`` records provenance when the plan was
    drawn by :meth:`sample`; it does not affect execution.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.events, tuple):
            object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise ConfigurationError(
                    f"FaultPlan events must be FaultEvent instances, got "
                    f"{type(event).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": _PLAN_VERSION,
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        version = payload.get("version", _PLAN_VERSION)
        if version != _PLAN_VERSION:
            raise ConfigurationError(
                f"fault plan version {version!r} is not supported (this "
                f"library reads version {_PLAN_VERSION})"
            )
        unknown = set(payload) - {"version", "seed", "events"}
        if unknown:
            raise ConfigurationError(
                f"fault plan has unknown keys {sorted(unknown)}"
            )
        events = payload.get("events", [])
        if not isinstance(events, (list, tuple)):
            raise ConfigurationError(
                f"fault plan 'events' must be a list, got "
                f"{type(events).__name__}"
            )
        return cls(
            events=tuple(FaultEvent.from_dict(event) for event in events),
            seed=payload.get("seed"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {error}"
            ) from error
        return cls.from_dict(payload)

    @classmethod
    def sample(
        cls,
        seed: int,
        *,
        rounds: int,
        shards: int,
        events: int = 3,
        kinds: Sequence[str] = FAULT_KINDS,
        max_delay: float = 0.05,
    ) -> "FaultPlan":
        """Draw a reproducible random plan: same seed, same plan, always.

        Uses a private ``random.Random(seed)`` stream (never the global RNG)
        so sampling a plan cannot perturb anything else, and the plan is a
        pure function of its arguments.
        """
        if rounds < 1 or shards < 1:
            raise ConfigurationError(
                f"FaultPlan.sample needs rounds >= 1 and shards >= 1, got "
                f"rounds={rounds}, shards={shards}"
            )
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; expected a subset of "
                    f"{list(FAULT_KINDS)}"
                )
        rng = random.Random(seed)
        drawn: List[FaultEvent] = []
        for _ in range(events):
            kind = rng.choice(list(kinds))
            drawn.append(
                FaultEvent(
                    kind=kind,
                    round=rng.randrange(rounds),
                    segment=rng.randrange(shards),
                    phase=rng.choice(list(FAULT_PHASES)),
                    delay=(
                        rng.uniform(0.001, max_delay) if kind == "slow" else 0.0
                    ),
                    count=rng.randint(1, 2) if kind == "drop" else 1,
                )
            )
        return cls(events=tuple(drawn), seed=seed)


class FaultInjector:
    """Mutable coordinator-side cursor over a :class:`FaultPlan`.

    Lives in the coordinator (one per run, surviving recovery attempts) and
    is consulted at every (round, segment, phase) edge.  Crash and slow
    events are consumed the first time their coordinate is reached — a
    recovered run that replays the same superstep does not re-fire them.
    Drop events expose per-event token counts through :meth:`drop_next_send`.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, plan: FaultPlan) -> None:
        self._events: Tuple[FaultEvent, ...] = plan.events
        self._remaining: List[int] = [
            event.count if event.kind == "drop" else 1
            for event in plan.events
        ]

    def directives_for(
        self, round_number: int, segment: int, phase: str
    ) -> Optional[Dict[str, Any]]:
        """Worker-bound directives (crash / slow) for one phase command.

        Returns ``None`` when nothing fires, else a payload dict shipped to
        the worker inside the phase command.  Matching events are consumed.
        """
        crash = False
        delay = 0.0
        for index, event in enumerate(self._events):
            if event.kind == "drop" or self._remaining[index] <= 0:
                continue
            if (event.round == round_number and event.segment == segment
                    and event.phase == phase):
                self._remaining[index] = 0
                if event.kind == "crash":
                    crash = True
                else:
                    delay += event.delay
        if not crash and delay == 0.0:
            return None
        return {"crash": crash, "delay": delay}

    def drop_next_send(
        self, round_number: int, segment: int, phase: str
    ) -> bool:
        """Whether the next send for this phase command should be lost.

        Each call that returns ``True`` burns one token of one matching
        ``drop`` event, so an event with ``count=2`` fails exactly two
        consecutive attempts and then lets the retry through.
        """
        for index, event in enumerate(self._events):
            if event.kind != "drop" or self._remaining[index] <= 0:
                continue
            if (event.round == round_number and event.segment == segment
                    and event.phase == phase):
                self._remaining[index] -= 1
                return True
        return False

    def pending(self) -> int:
        """How many events have not fully fired yet (diagnostics only)."""
        return sum(1 for remaining in self._remaining if remaining > 0)
