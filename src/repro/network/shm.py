"""Shared-memory boundary transport for the batch×sharded engine.

Adjacent segment workers exchange one fixed-size columnar int64 block per
round per direction (the merged prefix/suffix view plus at most one packet
hand-off — see ``docs/SHARDING.md``).  Pickling those through the coordinator
pipes costs two hops and a serializer per round; this module gives each
directed segment boundary its own single-producer/single-consumer ring over
:class:`multiprocessing.shared_memory.SharedMemory`, so neighbours exchange
blocks directly with two int64 counter updates and a 96-byte copy.

Layout (all little-endian int64 words)::

    [0..7]    tail  — total blocks published (writer-owned, word 0)
    [8..15]   head  — total blocks consumed (reader-owned, word 8)
    [16..]    data  — ``capacity`` slots of :data:`SLOT_WORDS` words each

The tail and head counters live on separate 64-byte cache lines so the two
sides never write the same line.  The writer fills slot ``tail % capacity``
and *then* publishes the new tail; the reader observes the tail, copies the
slot, and then publishes the new head.  CPython's memoryview stores on an
int64-aligned buffer are single interpreter operations under the GIL-free
process boundary, and x86/arm64 total-store ordering makes the
write-slot-then-bump-tail sequence a safe publication without extra fences.

The ring is a *transport*, never a scheduler: block contents and ordering are
fully determined by the superstep protocol, so simulation results cannot
depend on ring timing.  Timeouts exist only for supervision — a vanished
neighbour surfaces as :class:`~repro.network.errors.WorkerFailedError`, which
the coordinator's recovery machinery treats exactly like a dead pipe.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

from .errors import ShardingProtocolError, WorkerFailedError

__all__ = ["SLOT_WORDS", "BoundaryRing", "shared_memory_available"]

#: Words per ring slot: round stamp + 3 view words + hand-off flag + 5
#: hand-off columns, padded to 12 for a 96-byte (1.5 cache line) slot.
SLOT_WORDS = 12

_SLOT_BYTES = SLOT_WORDS * 8
_HEADER_WORDS = 16  # two 64-byte cache lines: tail @ word 0, head @ word 8
_TAIL = 0
_HEAD = 8

#: Busy-poll iterations before the waiter starts yielding the CPU.
_SPIN_FAST = 512
#: Yield-only (``sleep(0)``) iterations before backing off to short naps.
_SPIN_YIELD = 4096
_NAP_SECONDS = 0.0005

_DEFAULT_TIMEOUT = 60.0


def shared_memory_available(capacity: int = 4) -> bool:
    """Probe whether POSIX shared memory actually works on this host.

    Containers occasionally mount ``/dev/shm`` read-only or not at all; the
    coordinator probes once and falls back to the pickled-pipe relay path
    when the probe fails, keeping the portable transport the default on
    exotic hosts.
    """
    try:
        ring = BoundaryRing(capacity=capacity)
    except (OSError, ValueError, ImportError, ShardingProtocolError):
        return False
    try:
        ring.send_block((0,), timeout=1.0)
        ok = ring.recv_block(timeout=1.0)[0] == 0
    except (OSError, ValueError, WorkerFailedError):
        ok = False
    finally:
        ring.destroy()
    return ok


class BoundaryRing:
    """A SPSC ring of fixed-size int64 blocks in POSIX shared memory.

    Exactly one process writes (:meth:`send_block`) and exactly one process
    reads (:meth:`recv_block`); the coordinator creates one ring per directed
    segment boundary and hands each end to its owning worker by name.
    """

    __slots__ = ("_shm", "_words", "_capacity", "_owner", "_closed")

    def __init__(
        self, name: Optional[str] = None, capacity: int = 256
    ) -> None:
        from multiprocessing import shared_memory

        if name is None:
            if capacity < 2:
                raise ShardingProtocolError(
                    f"ring capacity must be at least 2 slots, got {capacity}"
                )
            size = (_HEADER_WORDS + capacity * SLOT_WORDS) * 8
            self._shm = shared_memory.SharedMemory(create=True, size=size)
            self._owner = True
        else:
            # CPython < 3.13 has no track=False: attaching would re-register
            # the segment with the attacher's resource tracker, which then
            # tries to unlink it at process exit (the coordinator owns ring
            # lifetime) and warns about the already-unlinked name.  Suppress
            # registration for the attach only; the creator's registration
            # is untouched and unlink() retires it.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
            self._owner = False
        self._words = memoryview(self._shm.buf).cast("q")
        if self._owner:
            self._words[_TAIL] = 0
            self._words[_HEAD] = 0
            self._capacity = capacity
        else:
            self._capacity = (len(self._words) - _HEADER_WORDS) // SLOT_WORDS
        self._closed = False

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def capacity(self) -> int:
        return self._capacity

    def send_block(
        self, words: Sequence[int], timeout: float = _DEFAULT_TIMEOUT
    ) -> None:
        """Publish one block, blocking while the ring is full.

        ``words`` may be shorter than :data:`SLOT_WORDS`; the tail of the
        slot is zero-filled so receivers always see a deterministic block.
        """
        if len(words) > SLOT_WORDS:
            raise ShardingProtocolError(
                f"boundary block has {len(words)} words; slots hold {SLOT_WORDS}"
            )
        view = self._words
        capacity = self._capacity
        tail = view[_TAIL]
        if tail - view[_HEAD] >= capacity:
            self._wait(lambda: view[_TAIL] - view[_HEAD] < capacity, timeout,
                       "ring full: neighbouring segment worker stopped consuming")
        base = _HEADER_WORDS + (tail % capacity) * SLOT_WORDS
        count = len(words)
        for index in range(count):
            view[base + index] = words[index]
        for index in range(count, SLOT_WORDS):
            view[base + index] = 0
        view[_TAIL] = tail + 1

    def recv_block(self, timeout: float = _DEFAULT_TIMEOUT) -> Tuple[int, ...]:
        """Consume the next block, blocking while the ring is empty."""
        view = self._words
        head = view[_HEAD]
        if view[_TAIL] <= head:
            self._wait(lambda: view[_TAIL] > head, timeout,
                       "ring empty: neighbouring segment worker stopped producing")
        base = _HEADER_WORDS + (head % self._capacity) * SLOT_WORDS
        block = tuple(view[base:base + SLOT_WORDS])
        view[_HEAD] = head + 1
        return block

    def _wait(self, ready, timeout: float, what: str) -> None:
        # Clock-free supervision: the budget is decremented by the nominal
        # nap length, so the effective timeout is a floor on slept wall-clock
        # rather than an exact deadline.  Precision is irrelevant here — the
        # timeout only exists to surface a vanished neighbour — and avoiding
        # a wall-clock source keeps the engine's determinism lint scope
        # (RPR001) meaningful for this module.
        spins = 0
        remaining = timeout
        while not ready():
            spins += 1
            if spins <= _SPIN_FAST:
                continue
            if spins <= _SPIN_YIELD:
                time.sleep(0)
                continue
            time.sleep(_NAP_SECONDS)
            remaining -= _NAP_SECONDS
            if remaining <= 0:
                raise WorkerFailedError(
                    f"shared-memory hand-off timed out after {timeout:.1f}s "
                    f"({what})"
                )

    def close(self) -> None:
        """Release this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        self._words.release()
        self._shm.close()

    def destroy(self) -> None:
        """Close and, if this end created the ring, unlink the segment.

        ``unlink()`` unregisters from the resource tracker itself; no manual
        ledger maintenance here (see the attach-mode note in ``__init__``).
        """
        owner = self._owner
        try:
            self.close()
        except (OSError, BufferError):  # pragma: no cover - teardown best-effort
            pass
        if owner:
            try:
                self._shm.unlink()
            except OSError:  # pragma: no cover - already unlinked elsewhere
                pass
