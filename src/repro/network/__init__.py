"""Network substrate: topologies, the simulation engine and its records."""

from .errors import (
    BoundednessViolationError,
    CapacityViolationError,
    ConfigurationError,
    ReproError,
    SchedulingError,
    ShardingError,
    ShardingProtocolError,
    TopologyError,
    UnshardableScenarioError,
)
from .events import HistoryPolicy, OccupancyTimeline, RoundRecord, SimulationResult
from .forest import ForestTopology, forest_of
from .sharded import ExecutionPolicy, SegmentSimulator, plan_segments, run_sharded
from .simulator import Simulator, run_simulation
from .topology import (
    LineTopology,
    Topology,
    TreeTopology,
    binary_tree,
    caterpillar_tree,
    random_tree,
    star_tree,
)

__all__ = [
    "BoundednessViolationError",
    "CapacityViolationError",
    "ConfigurationError",
    "ReproError",
    "SchedulingError",
    "ShardingError",
    "ShardingProtocolError",
    "TopologyError",
    "UnshardableScenarioError",
    "ExecutionPolicy",
    "SegmentSimulator",
    "plan_segments",
    "run_sharded",
    "HistoryPolicy",
    "OccupancyTimeline",
    "RoundRecord",
    "SimulationResult",
    "ForestTopology",
    "forest_of",
    "Simulator",
    "run_simulation",
    "LineTopology",
    "Topology",
    "TreeTopology",
    "binary_tree",
    "caterpillar_tree",
    "random_tree",
    "star_tree",
]
