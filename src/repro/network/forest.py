"""Forests: disjoint unions of directed in-trees (the paper's open-problem topology).

The paper's concluding discussion singles out the *union of trees* as an
important next topology, "due to the fact that this topology is the output of
many routing algorithms" (think: the per-destination forwarding trees computed
by a routing protocol).  A forest is the node-disjoint union of directed
in-trees; packets never cross between components, so the tree algorithms apply
component-wise and their bounds hold with ``d'`` taken as the maximum
destination depth over components.

:class:`ForestTopology` exposes the same query surface as
:class:`~repro.network.topology.TreeTopology` (``path``, ``is_upstream``,
``destination_depth``, ...), which means :class:`~repro.core.tree.TreePeakToSink`
and :class:`~repro.core.tree.TreeParallelPeakToSink` run on forests unchanged —
the extension tests and the ``bench_ext_forest`` benchmark exercise exactly
that.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..api.registry import register_topology
from .errors import TopologyError
from .topology import Topology, TreeTopology, build_tree_topology

__all__ = ["ForestTopology", "forest_of", "build_forest_topology"]

Edge = Tuple[int, int]


class ForestTopology(Topology):
    """A node-disjoint union of directed in-trees.

    Parameters
    ----------
    trees:
        The component trees.  Their node sets must be pairwise disjoint; node
        identifiers are global (no re-numbering happens).
    """

    kind = "forest"

    def __init__(self, trees: Sequence[TreeTopology]) -> None:
        if not trees:
            raise TopologyError("a forest needs at least one tree")
        self._trees = list(trees)
        self._component_of: Dict[int, TreeTopology] = {}
        for tree in self._trees:
            for node in tree.nodes:
                if node in self._component_of:
                    raise TopologyError(
                        f"node {node} appears in more than one component tree"
                    )
                self._component_of[node] = tree
        self._nodes = sorted(self._component_of)
        self._edges: List[Edge] = []
        for tree in self._trees:
            self._edges.extend(tree.edges)

    # -- Topology interface ----------------------------------------------------

    @property
    def nodes(self) -> Sequence[int]:
        return self._nodes

    @property
    def edges(self) -> Sequence[Edge]:
        return self._edges

    def next_hop(self, node: int) -> Optional[int]:
        return self._component(node).next_hop(node)

    def path(self, source: int, destination: int) -> List[int]:
        self.validate_route(source, destination)
        return self._component(source).path(source, destination)

    def path_contains(self, source: int, destination: int, buffer: int) -> bool:
        component = self._component(source)
        if destination not in set(component.nodes) or buffer not in set(component.nodes):
            return False
        return component.path_contains(source, destination, buffer)

    def validate_route(self, source: int, destination: int) -> None:
        component = self._component(source)
        if destination not in set(component.nodes):
            raise TopologyError(
                f"no route from {source} to {destination}: the nodes lie in "
                f"different forest components"
            )
        component.validate_route(source, destination)

    # -- forest structure --------------------------------------------------------

    @property
    def trees(self) -> List[TreeTopology]:
        """The component trees."""
        return list(self._trees)

    @property
    def num_components(self) -> int:
        return len(self._trees)

    def component(self, node: int) -> TreeTopology:
        """The component tree containing ``node``."""
        return self._component(node)

    def roots(self) -> List[int]:
        """The root of every component."""
        return [tree.root for tree in self._trees]

    # -- tree-compatible query surface (lets tree algorithms run unchanged) -------

    def parent(self, node: int) -> Optional[int]:
        return self._component(node).parent(node)

    def children(self, node: int) -> List[int]:
        return self._component(node).children(node)

    def depth(self, node: int) -> int:
        return self._component(node).depth(node)

    def leaves(self) -> List[int]:
        result: List[int] = []
        for tree in self._trees:
            result.extend(tree.leaves())
        return sorted(result)

    def is_upstream(self, u: int, v: int) -> bool:
        """``u \\preceq v`` — always false across components."""
        component = self._component(u)
        if v not in set(component.nodes):
            return False
        return component.is_upstream(u, v)

    def subtree(self, v: int) -> List[int]:
        return self._component(v).subtree(v)

    def leaf_root_paths(self) -> List[List[int]]:
        result: List[List[int]] = []
        for tree in self._trees:
            result.extend(tree.leaf_root_paths())
        return result

    def destination_depth(self, destinations: Iterable[int]) -> int:
        """``d'`` over the whole forest: the max component-wise destination depth."""
        destination_list = list(destinations)
        best = 0
        for tree in self._trees:
            component_nodes = set(tree.nodes)
            local = [w for w in destination_list if w in component_nodes]
            missing = [
                w
                for w in destination_list
                if w not in self._component_of
            ]
            if missing:
                raise TopologyError(f"destinations {missing} are not forest nodes")
            if local:
                best = max(best, tree.destination_depth(local))
        return best

    # -- internals ----------------------------------------------------------------

    def _component(self, node: int) -> TreeTopology:
        try:
            return self._component_of[node]
        except KeyError:
            raise TopologyError(f"node {node} is not in the forest") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ForestTopology(components={self.num_components}, n={self.num_nodes})"


def forest_of(
    parent_maps: Sequence[Dict[int, Optional[int]]],
) -> ForestTopology:
    """Build a forest from one parent map per component (convenience helper)."""
    return ForestTopology([TreeTopology(parent_map) for parent_map in parent_maps])


@register_topology("forest")
def build_forest_topology(components: Sequence[Dict[str, object]]) -> ForestTopology:
    """Registry entry point for forests: one tree-spec dict per component.

    Each component dict uses the same schema as the ``"tree"`` topology kind
    (``{"family": "star", "num_leaves": 8}``, ...).  Components whose node
    ids collide can be shifted with an ``"offset"`` key, which relabels every
    node by that amount before assembling the forest.
    """
    trees = []
    for component in components:
        params = dict(component)
        offset = int(params.pop("offset", 0))
        tree = build_tree_topology(**params)
        if offset:
            tree = TreeTopology(
                {
                    node + offset: (
                        None if tree.parent(node) is None else tree.parent(node) + offset
                    )
                    for node in tree.nodes
                }
            )
        trees.append(tree)
    return ForestTopology(trees)
