"""Round records, event logs and simulation results.

The simulator produces one :class:`RoundRecord` per round (when history
recording is enabled) and a :class:`SimulationResult` summary at the end.
The naming follows the paper's timing convention: quantities measured "at
round t" are taken after the injection step and before forwarding (the
configuration ``L^t``); quantities "at t+" are taken after forwarding
(``L^{t+}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Union

__all__ = ["HistoryPolicy", "RoundRecord", "SimulationResult", "OccupancyTimeline"]


class HistoryPolicy(Enum):
    """How much per-round state a simulation retains.

    * ``FULL`` — keep a :class:`RoundRecord` per round (memory grows linearly
      with the execution length) and retain every :class:`Packet` ever
      injected.  Required by per-round analyses and the invariant tests.
    * ``SUMMARY`` — fold occupancy maxima, latency and delivery statistics
      incrementally (no round records) but still retain all packet objects
      for post-run inspection.  The default, matching the seed engine's
      observable results bit for bit.
    * ``STREAMING`` — fold statistics incrementally *and* release packets at
      delivery: ``Simulator.packets`` holds only in-flight packets, and the
      injection log lives in a compact columnar
      :class:`~repro.core.packet.PacketStore`.  Memory is O(packets in
      flight), which is what makes million-node, long-horizon runs fit.

    Summary statistics (``SimulationResult`` minus ``history``) are identical
    across all three policies on the same scenario.
    """

    FULL = "full"
    SUMMARY = "summary"
    STREAMING = "streaming"

    @classmethod
    def coerce(cls, value: Union["HistoryPolicy", str]) -> "HistoryPolicy":
        """Accept either a member or its string value (JSON specs)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown history policy {value!r}; "
                f"expected one of {[p.value for p in cls]}"
            ) from None


@dataclass(frozen=True, slots=True)
class RoundRecord:
    """Everything observed during a single round.

    Slotted: full-history runs keep one record per executed round, so long
    horizons allocate these in bulk.
    """

    #: Round index ``t`` (0-based).
    round: int
    #: Packets injected by the adversary this round.
    injected: int
    #: Packets forwarded across some edge this round.
    forwarded: int
    #: Packets absorbed at their destination this round.
    delivered: int
    #: ``max_i |L^t(i)|`` — occupancy after injection, before forwarding.
    max_occupancy: int
    #: ``max_i |L^{t+}(i)|`` — occupancy after forwarding.
    max_occupancy_after_forwarding: int
    #: Packets injected but not yet accepted by the algorithm (HPTS staging).
    staged: int
    #: Per-node occupancy after injection (present only when history is verbose).
    occupancy: Optional[Dict[int, int]] = None


@dataclass(slots=True)
class SimulationResult:
    """Summary of one simulated execution.

    Slotted like every other hot-path record: sweeps hold one of these per
    scenario, and the no-``__dict__`` regression test covers it.
    """

    #: Name of the forwarding algorithm.
    algorithm: str
    #: Number of buffers in the topology.
    num_nodes: int
    #: Rounds actually executed (horizon plus drain rounds).
    rounds_executed: int
    #: ``max_t max_i |L^t(i)|`` — the quantity every bound in the paper is about.
    max_occupancy: int
    #: Per-node maxima of ``|L^t(i)|`` over the execution.
    max_occupancy_per_node: Dict[int, int] = field(default_factory=dict)
    #: Largest number of staged (injected-but-unaccepted) packets at any time.
    max_staged: int = 0
    #: Total packets injected / delivered over the execution.
    packets_injected: int = 0
    packets_delivered: int = 0
    #: Packets still undelivered when the simulation stopped.
    packets_undelivered: int = 0
    #: Maximum and mean delivery latency (rounds from injection to delivery).
    max_latency: Optional[int] = None
    mean_latency: Optional[float] = None
    #: Whether every injected packet was delivered before the simulation ended.
    drained: bool = True
    #: Per-round records (only populated when history recording is on).
    history: List[RoundRecord] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Delivered packets per round."""
        if self.rounds_executed == 0:
            return 0.0
        return self.packets_delivered / self.rounds_executed

    def occupancy_timeline(self) -> List[int]:
        """``max_i |L^t(i)|`` per round (empty if history was not recorded)."""
        return [record.max_occupancy for record in self.history]

    def summary_row(self) -> Dict[str, object]:
        """A flat dict suitable for the table formatter and benchmark output."""
        return {
            "algorithm": self.algorithm,
            "n": self.num_nodes,
            "rounds": self.rounds_executed,
            "max_occupancy": self.max_occupancy,
            "injected": self.packets_injected,
            "delivered": self.packets_delivered,
            "max_latency": self.max_latency,
            "drained": self.drained,
        }


class OccupancyTimeline:
    """Incremental tracker of per-node and global occupancy maxima.

    Three feeding modes produce identical maxima:

    * :meth:`observe` folds a *full* occupancy snapshot (the seed engine's
      path, still used when per-round history is recorded);
    * :meth:`observe_delta` folds only the nodes whose load changed since the
      previous measurement.  A node absent from the delta had the same load
      as at the previous measurement, which is already folded into the
      maxima, so skipping it cannot lose a peak;
    * :meth:`observe_bulk` folds a dense per-node load vector (numpy array or
      ``array('q')``) — the vectorized path ``record_occupancy_vectors``
      runs use, backed by a dense maxima vector when the timeline was built
      with ``dense_size`` (numpy ``maximum`` when available, a pure-python
      loop otherwise).

    However fed, :meth:`per_node_maxima` only ever contains nodes whose load
    exceeded zero at some measurement (a maximum is recorded only when a load
    strictly exceeds the running value, which starts at 0).
    """

    __slots__ = ("max_occupancy", "max_per_node", "max_staged", "_dense", "_numpy")

    def __init__(self, dense_size: Optional[int] = None) -> None:
        self.max_occupancy = 0
        self.max_per_node: Dict[int, int] = {}
        self.max_staged = 0
        self._dense = None
        self._numpy = None
        if dense_size is not None:
            try:
                import numpy

                self._numpy = numpy
                self._dense = numpy.zeros(dense_size, dtype=numpy.int64)
            except ImportError:  # pragma: no cover - numpy is normally present
                from array import array

                self._dense = array("q", bytes(8 * dense_size))

    def observe(self, occupancy: Dict[int, int], staged: int = 0) -> None:
        """Fold one occupancy snapshot into the running maxima."""
        if self._dense is not None:
            dense = self._dense
            for node, load in occupancy.items():
                if load > dense[node]:
                    dense[node] = load
                if load > self.max_occupancy:
                    self.max_occupancy = load
            if staged > self.max_staged:
                self.max_staged = staged
            return
        for node, load in occupancy.items():
            if load > self.max_per_node.get(node, 0):
                self.max_per_node[node] = load
            if load > self.max_occupancy:
                self.max_occupancy = load
        if staged > self.max_staged:
            self.max_staged = staged

    def observe_delta(self, delta: Dict[int, int], staged: int = 0) -> None:
        """Fold one changed-nodes-only measurement into the running maxima."""
        if staged > self.max_staged:
            self.max_staged = staged
        if not delta:
            return
        if self._dense is not None:
            dense = self._dense
            for node, load in delta.items():
                if load > dense[node]:
                    dense[node] = load
                    if load > self.max_occupancy:
                        self.max_occupancy = load
            return
        max_per_node = self.max_per_node
        for node, load in delta.items():
            if load > max_per_node.get(node, 0):
                max_per_node[node] = load
                if load > self.max_occupancy:
                    self.max_occupancy = load

    def observe_bulk(self, loads, staged: int = 0) -> None:
        """Fold a dense per-node load vector into the running maxima.

        ``loads`` must be indexable by node id and cover every node (a numpy
        array or ``array('q')`` of length ``dense_size``).  Requires the
        timeline to have been built with ``dense_size``.
        """
        if staged > self.max_staged:
            self.max_staged = staged
        dense = self._dense
        if dense is None:
            raise ValueError("observe_bulk() requires OccupancyTimeline(dense_size=n)")
        numpy = self._numpy
        if numpy is not None and isinstance(loads, numpy.ndarray):
            numpy.maximum(dense, loads, out=dense)
            if len(loads):
                peak = int(loads.max())
                if peak > self.max_occupancy:
                    self.max_occupancy = peak
            return
        for node, load in enumerate(loads):
            if load > dense[node]:
                dense[node] = load
                if load > self.max_occupancy:
                    self.max_occupancy = load

    def per_node_maxima(self) -> Dict[int, int]:
        """``{node: max load}`` over all measurements (nodes that exceeded 0).

        This is the read-side API — in dense mode :attr:`max_per_node` stays
        empty and the dict is materialised from the maxima vector on demand.
        """
        if self._dense is None:
            return dict(self.max_per_node)
        if self._numpy is not None:
            nonzero = self._numpy.nonzero(self._dense)[0]
            return {int(node): int(self._dense[node]) for node in nonzero}
        return {
            node: load for node, load in enumerate(self._dense) if load
        }

    def load_maxima(self, maxima: Dict[int, int]) -> None:
        """Overwrite the per-node maxima (checkpoint restore)."""
        if self._dense is None:
            self.max_per_node = dict(maxima)
            return
        if self._numpy is not None:
            self._dense[:] = 0
        else:
            for node in range(len(self._dense)):
                self._dense[node] = 0
        for node, load in maxima.items():
            self._dense[node] = load
