"""Exception hierarchy for the AQT simulator.

All library errors derive from :class:`ReproError` so callers can catch the
whole family with a single ``except`` clause while still distinguishing
specific failure modes (capacity violations, malformed topologies, adversaries
that exceed their declared ``(rho, sigma)`` bound, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "CapacityViolationError",
    "BoundednessViolationError",
    "SchedulingError",
    "ConfigurationError",
    "CheckpointError",
    "CheckpointFormatError",
    "CheckpointVersionError",
    "CheckpointSpecMismatchError",
    "ShardingError",
    "UnshardableScenarioError",
    "ShardingProtocolError",
    "WorkerFailedError",
    "RecoveryExhaustedError",
    "BatchingError",
    "UnbatchableScenarioError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or a route does not exist.

    Examples: asking for the path between two nodes that are not connected by
    a directed path, building a tree whose edges do not all point toward the
    root, or referring to a node outside the vertex set.
    """


class CapacityViolationError(ReproError):
    """Raised when a forwarding decision would send two packets over one edge.

    The AQT model (Section 2 of the paper) allows at most one packet per link
    per round.  The simulator enforces this invariant and raises this error if
    an algorithm's activation set is infeasible, which is exactly the property
    established by Lemma B.1 (PPTS) and Lemma 4.7 (HPTS).
    """

    def __init__(self, edge: tuple, round_number: int, detail: str = "") -> None:
        self.edge = edge
        self.round_number = round_number
        message = (
            f"capacity violation on edge {edge} in round {round_number}: "
            f"more than one packet scheduled"
        )
        if detail:
            message = f"{message} ({detail})"
        super().__init__(message)


class BoundednessViolationError(ReproError):
    """Raised when an injection pattern exceeds its declared (rho, sigma) bound.

    The violation records the buffer, the time interval and the amount by
    which ``N_T(v)`` exceeded ``rho |T| + sigma`` so tests and adversary
    generators can report precisely where a pattern went wrong.
    """

    def __init__(
        self,
        buffer: int,
        interval: tuple,
        observed: float,
        allowed: float,
    ) -> None:
        self.buffer = buffer
        self.interval = interval
        self.observed = observed
        self.allowed = allowed
        super().__init__(
            f"(rho, sigma) bound violated at buffer {buffer} over interval "
            f"{interval}: observed {observed} crossings, allowed {allowed:.3f}"
        )


class SchedulingError(ReproError):
    """Raised when a forwarding algorithm produces an invalid activation.

    Examples: activating an empty pseudo-buffer, activating two pseudo-buffers
    at the same node in the same round, or returning a node outside the
    topology.
    """


class ConfigurationError(ReproError):
    """Raised when simulation or experiment parameters are inconsistent.

    Examples: ``rho * ell > 1`` for HPTS, ``n`` not of the form ``m**ell`` for
    the hierarchical partition, or a sweep that asks for more destinations
    than there are nodes.
    """


class CheckpointError(ReproError):
    """Base class for checkpoint/restore failures (:mod:`repro.checkpoint`).

    Also raised directly for logical misuse: resuming an already-consumed
    stream, restoring into an engine whose ingredients do not match the
    snapshot, or checkpointing an adversary that cannot produce a cursor.
    """


class CheckpointFormatError(CheckpointError):
    """Raised when a checkpoint file is truncated, corrupt or not a checkpoint.

    Covers bad magic bytes, a header that is not valid JSON, payload sections
    shorter than the header promises, and CRC mismatches.
    """


class CheckpointVersionError(CheckpointError):
    """Raised when a checkpoint's format version is not supported.

    The format is versioned explicitly (see ``docs/CHECKPOINT.md``); readers
    refuse rather than guess when the version does not match.
    """

    def __init__(self, found: int, supported: int) -> None:
        self.found = found
        self.supported = supported
        super().__init__(
            f"checkpoint format version {found} is not supported "
            f"(this library reads version {supported})"
        )


class CheckpointSpecMismatchError(CheckpointError):
    """Raised when a checkpoint is resumed under a different scenario.

    A checkpoint records the spec hash (and structural facts: node count,
    algorithm name, history policy) of the run that produced it; resuming
    under a :class:`~repro.api.specs.ScenarioSpec` that hashes differently
    would silently produce a different execution, so it is refused.
    """


class ShardingError(ReproError):
    """Base class for sharded-execution failures (:mod:`repro.network.sharded`).

    Like the checkpoint family, every sharding error derives from
    :class:`ReproError`, so the CLI maps the whole family to exit code 2.
    """


class UnshardableScenarioError(ShardingError):
    """Raised when a scenario cannot be partitioned across worker processes.

    Examples: a tree topology (only :class:`~repro.network.topology.LineTopology`
    segments have the contiguous left-to-right structure the hand-off protocol
    relies on), an adaptive adversary (its injections observe the *global*
    configuration, which no single segment can see), an algorithm that has not
    declared segment-exact selection (``supports_sharding``), or a
    :class:`~repro.api.session.PreparedRun` whose live ingredients cannot be
    shipped to worker processes.
    """


class ShardingProtocolError(ShardingError):
    """Raised when the coordinator/worker superstep protocol breaks down.

    Examples: a worker process died mid-run, a reply arrived for the wrong
    round, or the per-segment engines disagree on the round counter.
    """


def _rebuild_worker_failed(
    message: str,
    segment: "int | None",
    round_number: "int | None",
    phase: "str | None",
) -> "WorkerFailedError":
    """Pickle helper: rebuild a :class:`WorkerFailedError` with its context."""
    return WorkerFailedError(
        message, segment=segment, round_number=round_number, phase=phase
    )


class WorkerFailedError(ShardingProtocolError):
    """Raised when one segment worker dies, hangs or stops answering.

    This is the *recoverable* member of the sharding family: the supervisor
    in :class:`~repro.network.sharded._ShardedCoordinator` catches it and —
    depending on ``RunPolicy.recovery`` — restitches the per-segment
    checkpoints and respawns (or folds) the dead worker instead of failing
    the whole run.  The attributes identify which worker failed and where,
    so both the recovery machinery and the final diagnostics can act on it.

    Raised for transport-level failures only (worker process exited, no
    heartbeat within ``heartbeat_timeout``, send retries exhausted).  A
    *logic* error raised inside a worker is forwarded as its original typed
    exception and is never retried — it would recur deterministically.
    """

    def __init__(
        self,
        message: str,
        *,
        segment: "int | None" = None,
        round_number: "int | None" = None,
        phase: "str | None" = None,
    ) -> None:
        self.segment = segment
        self.round_number = round_number
        self.phase = phase
        super().__init__(message)

    def __reduce__(self):  # keyword-only context survives the worker pipe
        return (
            _rebuild_worker_failed,
            (str(self), self.segment, self.round_number, self.phase),
        )


class BatchingError(ReproError):
    """Base class for batch-engine failures (:mod:`repro.network.batch`).

    Like the checkpoint and sharding families, every batching error derives
    from :class:`ReproError`, so the CLI maps the whole family to exit code 2.
    """


class UnbatchableScenarioError(BatchingError):
    """Raised when a scenario cannot run on the vectorized batch kernel.

    Examples: a tree topology (the flat-array layout encodes the line's
    ``i -> i+1`` structure directly in index arithmetic), an adaptive
    adversary (its injections observe the global configuration between
    rounds, which a k-round batch cannot replay), an algorithm outside the
    regular family the kernel vectorizes (PTS, local, downhill, greedy with
    a stock policy), or a greedy priority that is not one of the built-in
    :data:`~repro.baselines.policies.ALL_POLICIES`.

    ``RunPolicy.engine="auto"`` catches this error and falls back to the
    object engine; ``engine="batch"`` propagates it.
    """


class RecoveryExhaustedError(ShardingError):
    """Raised when worker recovery gives up.

    Either the restart budget (``RunPolicy.max_worker_restarts``) ran out,
    or the configured mode cannot apply (folding a single-segment run).  The
    message carries the last underlying :class:`WorkerFailedError` and the
    knob to turn, so the failure is actionable; the original failure is
    chained as ``__cause__``.
    """
