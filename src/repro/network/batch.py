"""Vectorized batch-round engine for the regular algorithm family.

:class:`BatchSimulator` advances ``k`` rounds of injection/selection/
forwarding over flat int64 state instead of the object engine's per-round
dict-and-object machinery.  The state layout is:

* ``occ[v]``   — packets currently stored at node ``v`` (one entry per node);
* ``mx[v]``    — running per-node maximum of ``|L^t(v)|`` (folded at
  measurement instants only: after injection, before forwarding);
* per-packet *columns* ``pid/src/dst/injr/arr/dlv`` — one int64 row per
  packet, appended at injection, indexed by *row id*;
* one queue of row ids per node, in exact push (deque) order, so the object
  engine's LIFO/FIFO pop and greedy min-by-key selection are reproduced
  bit for bit.

:class:`~repro.core.packet.Packet` objects are not built inside the kernel
at all when the adversary is a pre-validated eager
:class:`~repro.adversary.base.InjectionPattern`: injections append column
rows straight from the pattern's own columnar store, deliveries record the
round in the ``dlv`` column, and the objects are materialised — in row
order, which is injection order — only at batch boundaries.

The columns and maxima live in flat ``array('q')`` buffers — already the
int64 layout numpy wants — and when numpy is importable the kernel views
them zero-copy (``numpy.frombuffer``) for the batch-level work: whole-pattern
route/destination pre-validation and the batch-boundary maxima folds.  When
numpy is absent (or ``backend="python"`` forces the fallback) the same work
runs as scalar integer loops over the same buffers, which is why the
fallback is bit-identical by construction rather than by re-implementation.

Forwarding is a single fused left-to-right scan per round: each active node
pops its own packet *before* the carry from its predecessor lands, so the
carry travels exactly one hop and the per-queue outcome equals the object
engine's pop-all-then-place-all two-phase round.

Scope (everything else raises :class:`UnbatchableScenarioError`, which
``RunPolicy.engine="auto"`` catches to fall back to the object engine):

* :class:`~repro.network.topology.LineTopology` only — the layout encodes
  the line's ``v -> v+1`` structure directly in index arithmetic;
* non-adaptive adversaries — adaptive injections observe the global
  configuration between rounds, which a batch cannot replay;
* the regular algorithm family: :class:`~repro.core.pts.PeakToSink`,
  :class:`~repro.core.local.LocalThresholdForwarding`,
  :class:`~repro.core.local.DownhillForwarding` and
  :class:`~repro.baselines.greedy.GreedyForwarding` with a stock policy
  (:data:`~repro.baselines.policies.ALL_POLICIES`).

Object state (``Simulator.packets``, the algorithm's buffers, the occupancy
timeline) is materialised only at *batch boundaries* — end of run and
checkpoint cuts.  ``run(checkpoint_every=...)`` clamps each batch window to
the checkpoint cadence, so a cut never lands mid-batch and the existing
checkpoint layer (:mod:`repro.checkpoint`) serialises the engine unchanged;
a checkpoint taken by either engine resumes under the other.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import Dict, List, Optional, Tuple, Union

try:  # pragma: no cover - numpy is normally present
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

from ..adversary.base import InjectionPattern
from ..baselines.greedy import GreedyForwarding
from ..baselines.policies import ALL_POLICIES
from ..core.local import DownhillForwarding, LocalThresholdForwarding
from ..core.packet import Injection, Packet, PacketState
from ..core.pseudobuffer import QueueDiscipline
from ..core.pts import PeakToSink
from ..core.scheduler import ForwardingAlgorithm
from ..network.errors import (
    ConfigurationError,
    SchedulingError,
    TopologyError,
    UnbatchableScenarioError,
)
from ..network.events import HistoryPolicy, RoundRecord
from ..network.simulator import (
    Simulator,
    default_max_drain_rounds,
    quiescence_window,
)
from ..network.topology import LineTopology, Topology

__all__ = ["BatchSimulator", "DEFAULT_BATCH_ROUNDS"]

#: Default batch window (rounds advanced between object-state syncs).
DEFAULT_BATCH_ROUNDS = 64

# Kernel codes for the vectorized algorithm family.
_PTS, _LOCAL, _DOWNHILL, _GREEDY = 0, 1, 2, 3

_KERNEL_KINDS = {
    PeakToSink: _PTS,
    LocalThresholdForwarding: _LOCAL,
    DownhillForwarding: _DOWNHILL,
    GreedyForwarding: _GREEDY,
}

# Greedy policy key codes (see repro.baselines.policies): the composite sort
# key is always (k1, packet_id), with k1 per policy below.
_POL_FIFO, _POL_LIFO, _POL_LIS, _POL_SIS, _POL_NTG, _POL_FTG = range(6)

_POLICY_CODES = {
    "FIFO": _POL_FIFO,
    "LIFO": _POL_LIFO,
    "LIS": _POL_LIS,
    "SIS": _POL_SIS,
    "NTG": _POL_NTG,
    "FTG": _POL_FTG,
}

# Sentinel values for the per-row delivery column: live / synced-away.
_LIVE, _SYNCED = -1, -2


class BatchSimulator(Simulator):
    """A :class:`~repro.network.simulator.Simulator` with a flat-array core.

    Construction validates batchability *before* any side effect, so
    ``engine="auto"`` can catch :class:`UnbatchableScenarioError` and build
    the object engine instead.  All run-policy parameters and the public API
    (``run``, ``save_checkpoint``, ``from_checkpoint``) are inherited; the
    engines produce bit-identical :class:`SimulationResult` values, round
    records, streamed injection logs and checkpoint payloads.

    Parameters beyond the base class:

    batch_rounds:
        Rounds advanced per batch window (>= 1).  Purely a sync cadence —
        results do not depend on it; ``batch_rounds=1`` degenerates to
        per-round syncing.
    backend:
        ``None`` (use numpy if importable), ``"numpy"`` (require it) or
        ``"python"`` (force the pure ``array('q')`` fallback).
    """

    __slots__ = ()

    def __init__(
        self,
        topology: Topology,
        algorithm: ForwardingAlgorithm,
        adversary: "object",
        *,
        batch_rounds: int = DEFAULT_BATCH_ROUNDS,
        backend: Optional[str] = None,
        record_history: bool = False,
        record_occupancy_vectors: bool = False,
        history: Optional[Union[HistoryPolicy, str]] = None,
        validate_capacity: bool = True,
    ) -> None:
        if not isinstance(batch_rounds, int) or isinstance(batch_rounds, bool):
            raise ConfigurationError(
                f"batch_rounds must be an int >= 1, got {batch_rounds!r}"
            )
        if batch_rounds < 1:
            raise ConfigurationError(
                f"batch_rounds must be >= 1, got {batch_rounds}"
            )
        if backend not in (None, "numpy", "python"):
            raise ConfigurationError(
                f"backend must be 'numpy', 'python' or None, got {backend!r}"
            )
        if backend == "numpy" and _np is None:
            raise ConfigurationError(
                "backend='numpy' requested but numpy is not importable"
            )
        # Batchability checks, before super().__init__ touches anything.
        if not isinstance(topology, LineTopology):
            raise UnbatchableScenarioError(
                f"the batch kernel only vectorizes LineTopology "
                f"(got {type(topology).__name__})"
            )
        if getattr(adversary, "adaptive", False):
            raise UnbatchableScenarioError(
                f"{type(adversary).__name__} is adaptive: its injections "
                f"observe the global configuration between rounds, which a "
                f"batch window cannot replay"
            )
        kind = _KERNEL_KINDS.get(type(algorithm))
        if kind is None:
            raise UnbatchableScenarioError(
                f"{type(algorithm).__name__} is outside the regular family "
                f"the batch kernel vectorizes (PTS, local, downhill, greedy)"
            )
        if kind == _GREEDY and algorithm.policy not in ALL_POLICIES:
            raise UnbatchableScenarioError(
                f"greedy policy {algorithm.policy!r} is not one of the "
                f"built-in policies the batch kernel encodes"
            )

        super().__init__(
            topology,
            algorithm,
            adversary,
            record_history=record_history,
            record_occupancy_vectors=record_occupancy_vectors,
            history=history,
            validate_capacity=validate_capacity,
        )

        self.batch_rounds = batch_rounds
        self._vec = _np if backend != "python" else None
        self._kind = kind
        self._n = topology.num_nodes
        self._max_dest = (
            topology.num_nodes
            if topology.allow_virtual_sink
            else topology.num_nodes - 1
        )
        self._lifo = algorithm.discipline is QueueDiscipline.LIFO
        if kind == _GREEDY:
            self._dest = -1
            self._last = self._n - 1
            self._store_key: object = "queue"
            self._policy_code = _POLICY_CODES[algorithm.policy.name]
            self._work_conserving = False
            self._bad_threshold = 2
            self._locality = 0
        else:
            self._dest = algorithm.destination
            self._last = min(self._dest - 1, self._n - 1)
            self._store_key = algorithm.destination
            self._policy_code = -1
            self._work_conserving = bool(
                getattr(algorithm, "work_conserving", False)
            )
            self._bad_threshold = getattr(algorithm, "threshold", 2)
            self._locality = getattr(algorithm, "locality", 0)
        # Whole-pattern pre-validation: when every route and destination in
        # an eager pattern is valid, the per-injection checks are skipped and
        # the hot loop injects straight from the pattern's columnar store.
        self._routes_prevalidated = False
        self._dests_prevalidated = False
        self._fast_rows: Optional[Dict[int, array]] = None
        self._pat_src: Optional[array] = None
        self._pat_dst: Optional[array] = None
        self._pat_ids: Optional[array] = None
        self._prevalidate_pattern()
        # Kernel state (populated by _load_kernel at the start of each run).
        self._occ = array("q")
        self._mx = array("q")
        self._queues: List[deque] = []
        self._col_pid = array("q")
        self._col_src = array("q")
        self._col_dst = array("q")
        self._col_injr = array("q")
        self._col_arr = array("q")
        self._col_dlv = array("q")
        self._row_packet: List[Optional[Packet]] = []
        self._touch: List[int] = []
        self._stored = 0
        self._num_bad = 0
        self._gmax = 0

    # -- batch-level pre-validation ------------------------------------------------

    def _prevalidate_pattern(self) -> None:
        """Whole-pattern route/destination check (vectorized under numpy).

        Only ever *clears* work from the hot loop: when the check cannot
        prove every injection valid, the per-injection scalar checks stay on
        and raise the exact object-engine error at the exact round.  A fully
        valid eager pattern additionally unlocks the object-free injection
        fast path (``self._fast_rows``).
        """
        if type(self.adversary) is not InjectionPattern:
            return
        store = self.adversary._store
        if not len(store):
            self._routes_prevalidated = True
            self._dests_prevalidated = True
            self._fast_rows = self.adversary._by_round
            return
        n = self._n
        max_dest = self._max_dest
        sources = store.sources
        destinations = store.destinations
        np = self._vec
        if np is not None:
            s = np.frombuffer(sources, dtype=np.int64)
            d = np.frombuffer(destinations, dtype=np.int64)
            routes_ok = bool(
                ((s >= 0) & (s < n) & (d > s) & (d <= max_dest)).all()
            )
            dests_ok = bool((d == self._dest).all())
        else:
            routes_ok = all(
                0 <= source < n and source < destination <= max_dest
                for source, destination in zip(sources, destinations)
            )
            dests_ok = all(
                destination == self._dest for destination in destinations
            )
        self._routes_prevalidated = routes_ok
        if self._kind != _GREEDY:
            self._dests_prevalidated = dests_ok
        if routes_ok and (self._kind == _GREEDY or dests_ok):
            self._fast_rows = self.adversary._by_round
        if self._fast_rows is not None:
            self._pat_src = sources
            self._pat_dst = destinations
            self._pat_ids = store.packet_ids

    # -- kernel state <-> object state ---------------------------------------------

    def _load_kernel(self) -> None:
        """Extract flat kernel state from the object world.

        Valid on a fresh simulator, after a checkpoint restore, or between
        ``run()`` calls — whatever the object engine (or the checkpoint
        layer) left in the buffers is the kernel's starting configuration.
        """
        n = self._n
        zeros = bytes(8 * n)
        self._occ = occ = array("q", zeros)
        self._mx = mx = array("q", zeros)
        self._queues = queues = [deque() for _ in range(n)]
        self._col_pid = array("q")
        self._col_src = array("q")
        self._col_dst = array("q")
        self._col_injr = array("q")
        self._col_arr = array("q")
        self._col_dlv = array("q")
        self._row_packet = []
        self._touch = touch = []
        self._stored = 0
        self._num_bad = 0
        self._gmax = self._timeline.max_occupancy
        for node, peak in self._timeline.per_node_maxima().items():
            mx[node] = peak
        arrival = (
            self.algorithm._arrival_round if self._kind == _GREEDY else None
        )
        bad_threshold = self._bad_threshold
        append_pid = self._col_pid.append
        append_src = self._col_src.append
        append_dst = self._col_dst.append
        append_injr = self._col_injr.append
        append_arr = self._col_arr.append
        append_dlv = self._col_dlv.append
        row = 0
        for node in range(n):
            node_buffer = self.algorithm.buffers[node]
            queue = queues[node]
            for pseudo in node_buffer.pseudo_buffers():
                for packet in pseudo.packets():
                    pid = packet.packet_id
                    append_pid(pid)
                    append_src(packet.source)
                    append_dst(packet.destination)
                    append_injr(packet.injected_round)
                    append_arr(arrival.get(pid, 0) if arrival is not None else 0)
                    append_dlv(_LIVE)
                    self._row_packet.append(packet)
                    queue.append(row)
                    row += 1
            load = len(queue)
            if load:
                occ[node] = load
                self._stored += load
                if load >= bad_threshold:
                    self._num_bad += 1
                # The restored object engine's dirty set covers every stored
                # node (the checkpoint replay marks them); fold the same
                # candidates at the first measurement.
                touch.append(node)

    def _sync_objects(self) -> None:
        """Materialise kernel state back into the object world.

        After this, ``self.packets``, the algorithm's buffers/occupancy/
        indices, the occupancy timeline and the GC counter are exactly what
        the object engine would hold at the same round boundary, so the
        checkpoint layer (and any post-run inspection) sees one engine.
        """
        algorithm = self.algorithm
        queues = self._queues
        row_packet = self._row_packet
        n = self._n
        total_rows = len(row_packet)
        if total_rows:
            # Deferred rows materialise in row order — injection order — so
            # ``self.packets`` keeps the object engine's insertion order.
            live_node: Dict[int, int] = {}
            for node in range(n):
                for row in queues[node]:
                    live_node[row] = node
            packets = self.packets
            retain = self.retain_packets
            col_pid = self._col_pid
            col_src = self._col_src
            col_dst = self._col_dst
            col_injr = self._col_injr
            dlv = self._col_dlv
            for row in range(total_rows):
                if row_packet[row] is not None:
                    continue
                delivered_round = dlv[row]
                if delivered_round == _SYNCED:
                    continue
                if delivered_round >= 0:
                    dlv[row] = _SYNCED
                    if retain:
                        # A streamed run already dropped the delivered
                        # packet; a retaining run keeps it, mutated exactly
                        # like the object engine's delivery.
                        destination = col_dst[row]
                        packet = Packet(
                            Injection(
                                col_injr[row],
                                col_src[row],
                                destination,
                                col_pid[row],
                            ),
                            destination,
                            PacketState.DELIVERED,
                            accepted_round=col_injr[row],
                            delivered_round=delivered_round,
                            hops=destination - col_src[row],
                        )
                        packets[col_pid[row]] = packet
                        row_packet[row] = packet
                    continue
                node = live_node[row]
                packet = Packet(
                    Injection(
                        col_injr[row], col_src[row], col_dst[row], col_pid[row]
                    ),
                    node,
                    PacketState.IN_TRANSIT,
                    accepted_round=col_injr[row],
                    hops=node - col_src[row],
                )
                packets[col_pid[row]] = packet
                row_packet[row] = packet
        for node_buffer in algorithm.buffers.values():
            pseudos = list(node_buffer.pseudo_buffers())
            for pseudo in pseudos:
                while pseudo:
                    pseudo.pop()
            if pseudos:
                node_buffer.drop_empty()
        key = self._store_key
        for node in range(n):
            queue = queues[node]
            if not queue:
                continue
            node_buffer = algorithm.buffers[node]
            for row in queue:
                packet = row_packet[row]
                packet.location = node
                packet.hops = node - packet.source
                node_buffer.store(packet, key)
        if self._kind == _GREEDY:
            col_pid = self._col_pid
            col_arr = self._col_arr
            algorithm._arrival_round = {
                col_pid[row]: col_arr[row]
                for queue in queues
                for row in queue
            }
        # Timeline maxima: numpy views the flat maxima buffer zero-copy for
        # the nonzero scan; the fallback is the same scan in scalar python.
        mx = self._mx
        if self._vec is not None:
            np = self._vec
            view = np.frombuffer(mx, dtype=np.int64)
            maxima = {
                int(node): int(view[node]) for node in np.nonzero(view)[0]
            }
        else:
            maxima = {node: peak for node, peak in enumerate(mx) if peak}
        self._timeline.load_maxima(maxima)
        self._timeline.max_occupancy = self._gmax
        # GC cadence: the object engine decrements once per executed round
        # and resets (dropping empty pseudo-buffers) at zero.
        interval = algorithm._gc_interval
        remainder = self._round % interval
        algorithm._rounds_until_gc = interval - remainder if remainder else interval

    # -- run loop --------------------------------------------------------------------

    def run(
        self,
        num_rounds: Optional[int] = None,
        *,
        drain: bool = True,
        max_drain_rounds: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_spec: Optional[object] = None,
    ):
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every requires a checkpoint_path"
                )
        horizon = num_rounds if num_rounds is not None else self.adversary.horizon
        self._load_kernel()
        use_window = not self.record_history
        drained = True
        try:
            t = self._round
            batch = self.batch_rounds
            while t < horizon:
                stop = min(horizon, t + batch)
                if checkpoint_every is not None:
                    # Clamp the window so a checkpoint cut never lands
                    # mid-batch: the next cut is the window's far edge.
                    next_cut = (t // checkpoint_every + 1) * checkpoint_every
                    stop = min(stop, next_cut)
                if use_window:
                    self._window(t, stop)
                else:
                    for round_number in range(t, stop):
                        self._kernel_round(round_number, inject=True)
                t = stop
                if checkpoint_every is not None and t % checkpoint_every == 0:
                    self._sync_objects()
                    self.save_checkpoint(checkpoint_path, spec=checkpoint_spec)
            if drain:
                drained = self._kernel_drain(
                    max(horizon, self._round), max_drain_rounds
                )
            else:
                drained = self._stored == 0
        finally:
            self._sync_objects()
        return self._build_result(drained)

    def _kernel_drain(
        self, start_round: int, max_drain_rounds: Optional[int]
    ) -> bool:
        pending = self._stored
        if max_drain_rounds is None:
            max_drain_rounds = default_max_drain_rounds(self._n, pending)
        window = quiescence_window(self._n)
        round_number = start_round
        rounds_drained = 0
        quiet_rounds = 0
        # staged_count() is 0 for the whole vectorized family, so the object
        # engine's "quiet" test degenerates to forwarded == 0.
        while self._stored > 0 and rounds_drained < max_drain_rounds:
            forwarded = self._kernel_round(round_number, inject=False)
            round_number += 1
            rounds_drained += 1
            if forwarded == 0:
                quiet_rounds += 1
                if quiet_rounds >= window:
                    break
            else:
                quiet_rounds = 0
        return self._stored == 0

    # -- fused batch window (delta-history hot path) ---------------------------------

    def _window(self, t0: int, t1: int) -> None:
        """Advance rounds ``t0 .. t1-1`` on flat state, one fused scan each.

        Selection and forwarding run in a single left-to-right pass: a node
        pops its own packet *before* the carry from its predecessor lands,
        so the carry moves exactly one hop per round — the same per-queue
        outcome as the object engine's pop-all-then-place-all round, with no
        activation or move lists and no per-move column writes.  Only nodes
        whose load *grew* since the previous measurement (carry landings on
        a new node, injection sites) are maxima candidates, so the fold
        touches O(moves), not O(n).
        """
        kind = self._kind
        occ = self._occ
        mx = self._mx
        queues = self._queues
        touch = self._touch
        row_packet = self._row_packet
        lifo = self._lifo
        last = self._last
        n = self._n
        threshold = self._bad_threshold
        bad_minus = threshold - 1
        work_conserving = self._work_conserving
        locality = self._locality
        policy = self._policy_code
        col_pid = self._col_pid
        col_dst = self._col_dst
        col_injr = self._col_injr
        col_arr = self._col_arr
        append_pid = col_pid.append
        append_src = self._col_src.append
        append_dst = col_dst.append
        append_injr = col_injr.append
        append_arr = col_arr.append
        append_dlv = self._col_dlv.append
        row_append = row_packet.append
        touch_append = touch.append
        fast_rows = self._fast_rows
        get_rows = fast_rows.get if fast_rows is not None else None
        pat_src = self._pat_src
        pat_dst = self._pat_dst
        pat_ids = self._pat_ids
        packet_store = self.packet_store
        gmax = self._gmax
        num_bad = self._num_bad
        stored = self._stored
        try:
            for rn in range(t0, t1):
                # -- injection ----------------------------------------------
                if get_rows is not None:
                    rows_in = get_rows(rn)
                    if rows_in is not None:
                        row = len(row_packet)
                        for r in rows_in:
                            source = pat_src[r]
                            append_pid(pat_ids[r])
                            append_src(source)
                            append_dst(pat_dst[r])
                            append_injr(rn)
                            append_arr(rn)
                            append_dlv(_LIVE)
                            row_append(None)
                            queues[source].append(row)
                            row += 1
                            load = occ[source] + 1
                            occ[source] = load
                            touch_append(source)
                            if load == threshold:
                                num_bad += 1
                        count = len(rows_in)
                        stored += count
                        self._injected += count
                        if packet_store is not None:
                            for r in rows_in:
                                packet_store.append(
                                    rn, pat_src[r], pat_dst[r], pat_ids[r]
                                )
                else:
                    self._stored = stored
                    self._num_bad = num_bad
                    self._inject_round(rn)
                    stored = self._stored
                    num_bad = self._num_bad
                # -- measurement fold (L^t, after injection) ----------------
                if touch:
                    for node in touch:
                        load = occ[node]
                        if load > mx[node]:
                            mx[node] = load
                            if load > gmax:
                                gmax = load
                    del touch[:]
                if stored == 0:
                    self._round = rn + 1
                    continue
                # -- selection + forwarding (fused carry chain) -------------
                carry = -1
                if kind == _PTS:
                    if num_bad == 0:
                        if not work_conserving:
                            self._round = rn + 1
                            continue
                        start = 0
                    else:
                        start = 0
                        while occ[start] < threshold:
                            start += 1
                    for v in range(start, last + 1):
                        load = occ[v]
                        if load:
                            queue = queues[v]
                            row = queue.pop() if lifo else queue.popleft()
                            if carry >= 0:
                                queue.append(carry)
                            else:
                                occ[v] = load - 1
                                if load == threshold:
                                    num_bad -= 1
                            carry = row
                        elif carry >= 0:
                            queues[v].append(carry)
                            occ[v] = 1
                            touch_append(v)
                            carry = -1
                elif kind == _LOCAL:
                    if num_bad == 0:
                        self._round = rn + 1
                        continue
                    # Pass 1: the active set from the pristine loads (the
                    # r-neighbourhood test must not see this round's moves).
                    last_bad = -locality - 1
                    active: List[int] = []
                    active_append = active.append
                    for v in range(last + 1):
                        load = occ[v]
                        if load >= threshold:
                            last_bad = v
                        if load and last_bad >= v - locality:
                            active_append(v)
                    # Pass 2: carry transport over the active nodes only.
                    num_active = len(active)
                    i = 0
                    while i < num_active:
                        v = active[i]
                        queue = queues[v]
                        row = queue.pop() if lifo else queue.popleft()
                        if carry >= 0:
                            queue.append(carry)
                        else:
                            load = occ[v] - 1
                            occ[v] = load
                            if load == bad_minus:
                                num_bad -= 1
                        i += 1
                        if i < num_active and active[i] == v + 1:
                            carry = row
                        else:
                            receiver = v + 1
                            if receiver > last:
                                # Single-destination invariant: last+1 == w.
                                self._deliver_row(row, rn)
                                self._delivered += 1
                                stored -= 1
                            else:
                                queues[receiver].append(row)
                                load = occ[receiver] + 1
                                occ[receiver] = load
                                touch_append(receiver)
                                if load == threshold:
                                    num_bad += 1
                            carry = -1
                elif kind == _DOWNHILL:
                    for v in range(last + 1):
                        load = occ[v]
                        if load:
                            successor_load = occ[v + 1] if v != last else 0
                            queue = queues[v]
                            if load >= successor_load:
                                row = queue.pop() if lifo else queue.popleft()
                                if carry >= 0:
                                    queue.append(carry)
                                else:
                                    occ[v] = load - 1
                                carry = row
                            elif carry >= 0:
                                queue.append(carry)
                                occ[v] = load + 1
                                touch_append(v)
                                carry = -1
                        elif carry >= 0:
                            queues[v].append(carry)
                            occ[v] = 1
                            touch_append(v)
                            carry = -1
                else:  # _GREEDY
                    for v in range(n):
                        load = occ[v]
                        if load:
                            queue = queues[v]
                            if load == 1:
                                row = queue.popleft()
                            else:
                                best = -1
                                best_k1 = best_k2 = 0
                                for r in queue:
                                    if policy == _POL_FIFO:
                                        k1 = col_arr[r]
                                    elif policy == _POL_LIFO:
                                        k1 = -col_arr[r]
                                    elif policy == _POL_LIS:
                                        k1 = col_injr[r]
                                    elif policy == _POL_SIS:
                                        k1 = -col_injr[r]
                                    elif policy == _POL_NTG:
                                        k1 = col_dst[r] - v
                                    else:  # _POL_FTG
                                        k1 = v - col_dst[r]
                                    k2 = col_pid[r]
                                    if (
                                        best < 0
                                        or k1 < best_k1
                                        or (k1 == best_k1 and k2 < best_k2)
                                    ):
                                        best = r
                                        best_k1 = k1
                                        best_k2 = k2
                                queue.remove(best)
                                row = best
                            if carry >= 0:
                                if col_dst[carry] == v:
                                    self._deliver_row(carry, rn)
                                    self._delivered += 1
                                    stored -= 1
                                    occ[v] = load - 1
                                else:
                                    col_arr[carry] = rn
                                    queue.append(carry)
                            else:
                                occ[v] = load - 1
                            carry = row
                        elif carry >= 0:
                            if col_dst[carry] == v:
                                self._deliver_row(carry, rn)
                                self._delivered += 1
                                stored -= 1
                            else:
                                col_arr[carry] = rn
                                queues[v].append(carry)
                                occ[v] = 1
                                touch_append(v)
                            carry = -1
                if carry >= 0:
                    # The trailing carry lands at last+1 == w (single-dest)
                    # or, for greedy, at the virtual sink n — a delivery in
                    # either case.
                    self._deliver_row(carry, rn)
                    self._delivered += 1
                    stored -= 1
                self._round = rn + 1
        finally:
            self._gmax = gmax
            self._num_bad = num_bad
            self._stored = stored

    def _deliver_row(self, row: int, round_number: int) -> None:
        """Absorb one row at its destination (latency folds + object parity)."""
        latency = round_number - self._col_injr[row]
        self._latency_sum += latency
        latency_max = self._latency_max
        if latency_max is None or latency > latency_max:
            self._latency_max = latency
        packet = self._row_packet[row]
        if packet is not None:
            destination = self._col_dst[row]
            packet.location = destination
            packet.hops = destination - packet.source
            packet.state = PacketState.DELIVERED
            packet.delivered_round = round_number
            self._row_packet[row] = None
            self._col_dlv[row] = _SYNCED
            if not self.retain_packets:
                del self.packets[self._col_pid[row]]
        else:
            self._col_dlv[row] = round_number

    # -- one round on flat state (full-history and drain path) -----------------------

    def _kernel_round(self, round_number: int, *, inject: bool) -> int:
        if inject:
            self._inject_round(round_number)
        occ = self._occ
        if self.record_history:
            # Full-history path: the round record needs the whole L^t
            # snapshot anyway, so fold every node like observe() does.
            mx = self._mx
            gmax = self._gmax
            occupancy_before: Optional[Dict[int, int]] = {}
            max_before = 0
            for node in range(self._n):
                load = occ[node]
                occupancy_before[node] = load
                if load > max_before:
                    max_before = load
                if load > mx[node]:
                    mx[node] = load
                    if load > gmax:
                        gmax = load
            self._gmax = gmax
            del self._touch[:]
        else:
            # Delta path: only nodes whose load grew since the previous
            # measurement (last round's receivers, this round's injection
            # sites) can set a new maximum.
            mx = self._mx
            gmax = self._gmax
            for node in self._touch:
                load = occ[node]
                if load > mx[node]:
                    mx[node] = load
                    if load > gmax:
                        gmax = load
            self._gmax = gmax
            del self._touch[:]
            occupancy_before = None
            max_before = 0

        forwarded, delivered, injected = self._forward_round(round_number)
        self._delivered += delivered

        if self.record_history:
            max_after = 0
            for node in range(self._n):
                load = occ[node]
                if load > max_after:
                    max_after = load
            self._history.append(
                RoundRecord(
                    round=round_number,
                    injected=injected if inject else 0,
                    forwarded=forwarded,
                    delivered=delivered,
                    max_occupancy=max_before,
                    max_occupancy_after_forwarding=max_after,
                    staged=0,
                    occupancy=occupancy_before
                    if self.record_occupancy_vectors
                    else None,
                )
            )
        self._round = round_number + 1
        return forwarded

    def _inject_round(self, round_number: int) -> None:
        injections = self.adversary.injections_for_round(round_number)
        if not injections:
            self._last_injected = 0
            return
        n = self._n
        max_dest = self._max_dest
        check_routes = not self._routes_prevalidated
        packets = self.packets
        packet_store = self.packet_store
        created: List[Tuple[object, Packet]] = []
        for injection in injections:
            source = injection.source
            destination = injection.destination
            if check_routes:
                if not 0 <= source < n:
                    raise TopologyError(f"node {source} outside [0, {n - 1}]")
                if not 0 <= destination <= max_dest:
                    raise TopologyError(
                        f"destination {destination} outside [0, {max_dest}]"
                    )
                if destination <= source:
                    raise TopologyError(
                        f"no directed route from {source} to {destination} "
                        f"on a line"
                    )
            packet = Packet.from_injection(injection)
            packets[injection.packet_id] = packet
            if packet_store is not None:
                packet_store.append_injection(injection)
            created.append((injection, packet))
        self._injected += len(created)
        self._last_injected = len(created)
        # Acceptance + classification (the on_inject step), one packet at a
        # time so a rejected destination leaves exactly the object engine's
        # partial state behind.
        kind = self._kind
        dest = self._dest
        check_dests = kind != _GREEDY and not self._dests_prevalidated
        occ = self._occ
        queues = self._queues
        touch = self._touch
        bad_threshold = self._bad_threshold
        append_pid = self._col_pid.append
        append_src = self._col_src.append
        append_dst = self._col_dst.append
        append_injr = self._col_injr.append
        append_arr = self._col_arr.append
        append_dlv = self._col_dlv.append
        row_packet = self._row_packet
        for injection, packet in created:
            packet.accept(round_number)
            destination = injection.destination
            if check_dests and destination != dest:
                raise SchedulingError(
                    f"{self.algorithm.name} is single-destination "
                    f"(w={dest}); got a packet for {destination}"
                )
            source = injection.source
            row = len(row_packet)
            append_pid(injection.packet_id)
            append_src(source)
            append_dst(destination)
            append_injr(injection.round)
            append_arr(round_number)
            append_dlv(_LIVE)
            row_packet.append(packet)
            queues[source].append(row)
            load = occ[source] + 1
            occ[source] = load
            self._stored += 1
            touch.append(source)
            if load == bad_threshold:
                self._num_bad += 1

    def _forward_round(self, round_number: int) -> Tuple[int, int, int]:
        """Selection + simultaneous forwarding; returns (forwarded,
        delivered, injected-this-round)."""
        injected = self._last_injected
        kind = self._kind
        occ = self._occ
        last = self._last
        active: List[int]
        chosen_rows: Optional[List[int]] = None
        if kind == _PTS:
            if self._num_bad == 0:
                if not self._work_conserving:
                    return 0, 0, injected
                start = 0
            else:
                start = 0
                while occ[start] < 2:
                    start += 1
            active = [v for v in range(start, last + 1) if occ[v]]
        elif kind == _LOCAL:
            if self._num_bad == 0:
                return 0, 0, injected
            locality = self._locality
            threshold = self._bad_threshold
            last_bad = -(locality + 1)
            active = []
            for v in range(last + 1):
                load = occ[v]
                if load >= threshold:
                    last_bad = v
                if load and last_bad >= v - locality:
                    active.append(v)
        elif kind == _DOWNHILL:
            active = []
            for v in range(last + 1):
                load = occ[v]
                if load == 0:
                    continue
                successor_load = occ[v + 1] if v != last else 0
                if load >= successor_load:
                    active.append(v)
        else:  # _GREEDY
            active = []
            chosen_rows = []
            queues = self._queues
            policy = self._policy_code
            pid = self._col_pid
            injr = self._col_injr
            arr = self._col_arr
            dst = self._col_dst
            for v in range(self._n):
                queue = queues[v]
                if not queue:
                    continue
                best_row = -1
                best_k1 = 0
                best_k2 = 0
                for row in queue:
                    if policy == _POL_FIFO:
                        k1 = arr[row]
                    elif policy == _POL_LIFO:
                        k1 = -arr[row]
                    elif policy == _POL_LIS:
                        k1 = injr[row]
                    elif policy == _POL_SIS:
                        k1 = -injr[row]
                    elif policy == _POL_NTG:
                        k1 = dst[row] - v
                    else:  # _POL_FTG
                        k1 = v - dst[row]
                    k2 = pid[row]
                    if (
                        best_row < 0
                        or k1 < best_k1
                        or (k1 == best_k1 and k2 < best_k2)
                    ):
                        best_row = row
                        best_k1 = k1
                        best_k2 = k2
                active.append(v)
                chosen_rows.append(best_row)

        if not active:
            return 0, 0, injected

        # Pop every activated packet first, then place them — a packet never
        # crosses two edges in one round.
        queues = self._queues
        bad_minus = self._bad_threshold - 1
        moves: List[Tuple[int, int]] = []
        if chosen_rows is not None:
            for v, row in zip(active, chosen_rows):
                queues[v].remove(row)
                moves.append((row, v + 1))
                load = occ[v] - 1
                occ[v] = load
                if load == bad_minus:
                    self._num_bad -= 1
        else:
            lifo = self._lifo
            for v in active:
                queue = queues[v]
                row = queue.pop() if lifo else queue.popleft()
                moves.append((row, v + 1))
                load = occ[v] - 1
                occ[v] = load
                if load == bad_minus:
                    self._num_bad -= 1

        delivered = 0
        dst = self._col_dst
        arr = self._col_arr
        touch = self._touch
        greedy = kind == _GREEDY
        bad_threshold = self._bad_threshold
        for row, receiver in moves:
            if receiver == dst[row]:
                self._deliver_row(row, round_number)
                delivered += 1
                self._stored -= 1
            else:
                if greedy:
                    arr[row] = round_number
                queues[receiver].append(row)
                load = occ[receiver] + 1
                occ[receiver] = load
                touch.append(receiver)
                if load == bad_threshold:
                    self._num_bad += 1
        return len(moves), delivered, injected

    #: Injections materialised by the current round (consumed by
    #: :meth:`_forward_round` for the round record).
    _last_injected = 0
