"""Sharded execution: one huge line partitioned across worker processes.

The single-process engine tops out at one core.  This module splits a
:class:`~repro.network.topology.LineTopology` scenario into ``k`` contiguous
segments, runs one :class:`SegmentSimulator` per worker, and drives them in
lock-step *supersteps* — one superstep per simulated round — so the combined
execution is **bit-identical** to the single-process run (the differential
suite in ``tests/test_sharded_differential.py`` proves it for every bundled
line algorithm x adversary x history mode).

How a superstep works (see ``docs/SHARDING.md`` for the full protocol):

1. **begin** — every worker materialises its segment's injections (each
   worker drives the *full* row stream through its own packet-id allocator
   and keeps only its own sources, so ids match the single-process run; see
   :class:`~repro.adversary.segmented.SegmentFilteredAdversary`), measures
   ``L^t`` and publishes a compact
   :meth:`~repro.core.scheduler.ForwardingAlgorithm.boundary_view`.
2. **select** — every worker replays the *global* activation selection
   restricted to its own nodes from the merged views
   (:meth:`~repro.core.scheduler.ForwardingAlgorithm.select_segment_activations`);
   algorithms whose decision propagates along the line (HPTS pre-bad) thread
   a carry token left-to-right.  Workers then pop and place their own moves;
   a packet crossing the segment's right edge joins a columnar *hand-off
   record* (the :class:`~repro.core.packet.PacketStore` column layout).
3. **finish** — each worker ingests the hand-off from its left neighbour
   (still inside the round: the move happened simultaneously with its own),
   measures ``L^{t+}`` and runs end-of-round hooks.

The coordinator mirrors the single-process drain loop (same caps, same
quiescence window, fed by globally summed per-round counters), merges the
per-segment statistics into one :class:`SimulationResult`, and — when the
run policy asks for periodic checkpoints — saves per-segment snapshots and
stitches them into a single global checkpoint file
(:func:`repro.checkpoint.stitch_checkpoints`) that a plain single-process
``Session.resume`` continues bit-identically.

Two transports share all of the above: ``"processes"`` (the default — one OS
process per segment, talking over pipes; this is what actually buys
multi-core wall-clock) and ``"local"`` (same workers, same protocol, driven
in-process — deterministic, fork-free, and what the differential test matrix
uses).

**Supervision and recovery.**  The coordinator doubles as a worker
supervisor: every phase reply is awaited under ``RunPolicy.heartbeat_timeout``
(process transport), transport sends retry with bounded backoff, and a worker
that dies, hangs or stops answering escalates as the typed
:class:`~repro.network.errors.WorkerFailedError`.  What happens next is
``RunPolicy.recovery``'s call: ``"fail"`` (default) propagates immediately;
``"restart"`` tears every worker down, respawns the full set from the last
consistent per-segment checkpoint cut and replays the superstep loop from
that round; ``"fold"`` merges the orphaned segment into a neighbouring
worker (restitching the pair's snapshots via
:func:`repro.checkpoint.stitch_checkpoints`) and continues on ``k - 1``
segments.  Because recovery always resumes from checkpoints that are proven
bit-identical to the single-process run, a recovered run's results and
checkpoint files are byte-identical to the fault-free run — the differential
recovery suite (``tests/test_recovery_differential.py``) asserts exactly
that, driven by the deterministic fault plans of
:mod:`repro.network.faults`.
"""

from __future__ import annotations

import contextvars
import multiprocessing
import os
import pickle
import time
from array import array
from collections import deque
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.packet import Injection, Packet, PacketState, packet_id_scope
from .batch_sharded import BatchSegmentSimulator
from .errors import (
    CheckpointError,
    RecoveryExhaustedError,
    ShardingProtocolError,
    UnbatchableScenarioError,
    UnshardableScenarioError,
    WorkerFailedError,
)
from .events import RoundRecord, SimulationResult
from .faults import FAULT_PHASES, FaultInjector, FaultPlan
from .shm import BoundaryRing, shared_memory_available
from .simulator import Simulator, default_max_drain_rounds, quiescence_window
from .topology import LineTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.specs import ScenarioSpec

__all__ = [
    "ExecutionPolicy",
    "SegmentSimulator",
    "plan_segments",
    "run_sharded",
]

#: Hard exit code an injected ``crash`` fault uses in a worker process —
#: ``os._exit`` so the failure looks exactly like a SIGKILL'd/OOM'd worker
#: (no unwind, no pickled traceback, just a dead pipe).
_CRASH_EXIT_CODE = 70

#: Hand-off record column order — the in-flight extension of the columnar
#: :class:`~repro.core.packet.PacketStore` layout (same first four columns,
#: plus the mutable engine fields a mid-flight packet carries).
_HANDOFF_COLUMNS = (
    "ids", "sources", "destinations", "rounds",
    "locations", "accepted_rounds", "hops",
)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sharded run is executed (engine-level, not part of the spec).

    ``shards`` is the requested segment count (clamped to the line length —
    ``shards > n`` degrades to one node per worker rather than failing);
    ``transport`` picks worker processes (``"processes"``) or the in-process
    protocol driver (``"local"``).

    The remaining knobs configure the supervisor.  ``faults`` threads a
    deterministic :class:`~repro.network.faults.FaultPlan` through the run —
    it lives here, *not* in the :class:`~repro.api.specs.ScenarioSpec`, so a
    chaos run and its fault-free twin share identical specs, spec hashes and
    checkpoint headers.  ``max_retries`` / ``retry_backoff`` bound the
    retry-with-backoff loop on transport sends.  ``clock`` is an injectable
    monotonic time source (e.g. ``time.perf_counter``) used only to measure
    ``recovery_time_s`` for the perf harness; the engine itself never reads
    wall-clock time, so results stay deterministic with or without one.

    ``shm`` governs the batch×shards boundary transport: ``None`` (default)
    probes shared memory and uses it when available, ``True`` requires it
    (failing loudly instead of silently degrading), ``False`` forces the
    pickled-pipe relay path.  Block *contents* are transport-independent, so
    the knob can never change results — only wall-clock.
    """

    shards: int = 1
    transport: str = "processes"
    faults: Optional[FaultPlan] = None
    max_retries: int = 2
    retry_backoff: float = 0.01
    clock: Optional[Callable[[], float]] = None
    shm: Optional[bool] = None

    def __post_init__(self) -> None:
        if not isinstance(self.shards, int) or self.shards < 1:
            raise UnshardableScenarioError(
                f"shards must be an int >= 1, got {self.shards!r}"
            )
        if self.transport not in ("processes", "local"):
            raise UnshardableScenarioError(
                f"transport must be 'processes' or 'local', got {self.transport!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise UnshardableScenarioError(
                f"faults must be None or a FaultPlan, got "
                f"{type(self.faults).__name__}"
            )
        if (
            not isinstance(self.max_retries, int)
            or isinstance(self.max_retries, bool)
            or self.max_retries < 0
        ):
            raise UnshardableScenarioError(
                f"max_retries must be an int >= 0, got {self.max_retries!r}"
            )
        if (
            not isinstance(self.retry_backoff, (int, float))
            or isinstance(self.retry_backoff, bool)
            or self.retry_backoff < 0
        ):
            raise UnshardableScenarioError(
                f"retry_backoff must be >= 0 seconds, got {self.retry_backoff!r}"
            )
        if self.clock is not None and not callable(self.clock):
            raise UnshardableScenarioError(
                f"clock must be None or a zero-argument callable returning "
                f"seconds, got {self.clock!r}"
            )
        if self.shm is not None and not isinstance(self.shm, bool):
            raise UnshardableScenarioError(
                f"shm must be None (auto), True or False, got {self.shm!r}"
            )
        if self.shm is True and self.transport != "processes":
            raise UnshardableScenarioError(
                "shm=True requires transport='processes': the in-process "
                "driver has no worker boundary to put a ring across"
            )


def plan_segments(num_nodes: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``0..num_nodes-1`` into ``shards`` contiguous segments.

    Balanced to within one node (the first ``num_nodes % shards`` segments
    take the extra node); inclusive ``(lo, hi)`` bounds, in line order.
    ``shards`` is clamped to ``num_nodes`` so every segment is non-empty.
    """
    if num_nodes < 1:
        raise UnshardableScenarioError(f"cannot shard a {num_nodes}-node line")
    shards = max(1, min(shards, num_nodes))
    base, extra = divmod(num_nodes, shards)
    segments: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        width = base + (1 if index < extra else 0)
        segments.append((lo, lo + width - 1))
        lo += width
    return segments


# ---------------------------------------------------------------------------
# Hand-off records (columnar, PacketStore-style)
# ---------------------------------------------------------------------------


def encode_handoff(packets: Sequence[Packet]) -> Optional[Dict[str, array]]:
    """Encode boundary-crossing packets as flat int64 columns."""
    if not packets:
        return None
    columns = {name: array("q") for name in _HANDOFF_COLUMNS}
    for packet in packets:
        columns["ids"].append(packet.packet_id)
        columns["sources"].append(packet.source)
        columns["destinations"].append(packet.destination)
        columns["rounds"].append(packet.injected_round)
        columns["locations"].append(packet.location)
        columns["accepted_rounds"].append(
            -1 if packet.accepted_round is None else packet.accepted_round
        )
        columns["hops"].append(packet.hops)
    return columns


def decode_handoff(columns: Optional[Dict[str, array]]) -> List[Packet]:
    """Rebuild the in-flight :class:`Packet` objects of a hand-off record."""
    if not columns:
        return []
    packets: List[Packet] = []
    for row in range(len(columns["ids"])):
        injection = Injection(
            columns["rounds"][row],
            columns["sources"][row],
            columns["destinations"][row],
            columns["ids"][row],
        )
        accepted = columns["accepted_rounds"][row]
        packets.append(
            Packet(
                injection,
                location=columns["locations"][row],
                state=PacketState.IN_TRANSIT,
                accepted_round=None if accepted < 0 else accepted,
                hops=columns["hops"][row],
            )
        )
    return packets


# ---------------------------------------------------------------------------
# The per-worker engine
# ---------------------------------------------------------------------------


class SegmentSimulator(Simulator):
    """A :class:`Simulator` that owns one contiguous segment of the line.

    Built on the *full* topology (so every algorithm's index structures,
    hierarchy partitions and bound parameters are identical to the
    single-process engine's) but stores packets only for nodes in
    ``[lo, hi]``.  The round loop is driven externally through the
    begin/select/finish superstep methods instead of :meth:`run`.
    """

    def __init__(
        self,
        topology: LineTopology,
        algorithm,
        adversary,
        segment_index: int,
        segments: Sequence[Tuple[int, int]],
        **simulator_kwargs,
    ) -> None:
        super().__init__(topology, algorithm, adversary, **simulator_kwargs)
        self.segment_index = segment_index
        self.segments = list(segments)
        self.lo, self.hi = self.segments[segment_index]
        self._outbox: List[Packet] = []
        #: (injected, staged, occupancy_before) captured by begin_round for
        #: the round record assembled in finish_round.
        self._round_scratch: Tuple[int, int, Optional[Dict[int, int]]] = (0, 0, None)
        self._round_moves: Tuple[int, int] = (0, 0)

    # -- engine hooks ------------------------------------------------------------

    def _place_packet(self, packet: Packet, next_hop: int, round_number: int) -> None:
        if next_hop > self.hi:
            # Ownership transfers with the packet: the right neighbour stores
            # it and, in retaining modes, keeps its delivered record too.
            self._outbox.append(packet)
            del self.packets[packet.packet_id]
        else:
            self.algorithm.on_arrival(packet, next_hop, round_number)

    def _segment_occupancy(self) -> Dict[int, int]:
        occupancy = self.algorithm._occupancy
        return {node: occupancy[node] for node in range(self.lo, self.hi + 1)}

    # -- superstep phases --------------------------------------------------------

    def begin_round(self, round_number: int, *, inject: bool) -> Dict[str, Any]:
        """Injection + ``L^t`` measurement; returns the boundary view."""
        new_packets = self._materialize_injections(round_number, inject=inject)
        staged = self.algorithm.staged_count()
        occupancy_before: Optional[Dict[int, int]] = None
        if self.record_history:
            occupancy_before = self._segment_occupancy()
            if self._bulk_occupancy:
                self._timeline.observe_bulk(self.algorithm.occupancy_array(), staged)
            else:
                self._timeline.observe(occupancy_before, staged)
        else:
            self._timeline.observe_delta(self.algorithm.occupancy_delta(), staged)
        self._round_scratch = (len(new_packets), staged, occupancy_before)
        return {
            "view": self.algorithm.boundary_view(round_number, self.lo, self.hi),
            "staged": staged,
        }

    def select_round(
        self, round_number: int, views: Sequence[Dict[str, Any]], carry: Any
    ) -> Dict[str, Any]:
        """Global selection restricted to this segment, then apply own moves."""
        activations, carry_out = self.algorithm.select_segment_activations(
            round_number, self.segment_index, self.segments, views, carry
        )
        if self.validate_capacity:
            self._validate_activations(activations, round_number)
        self._outbox = []
        forwarded, delivered = self._apply_activations(activations, round_number)
        self._delivered += delivered
        self._round_moves = (forwarded, delivered)
        handoff = encode_handoff(self._outbox)
        self._outbox = []
        return {
            "handoff": handoff,
            "carry": carry_out,
            "forwarded": forwarded,
            "delivered": delivered,
        }

    def finish_round(
        self, round_number: int, handoff_in: Optional[Dict[str, array]]
    ) -> Dict[str, Any]:
        """Ingest the left neighbour's hand-off and close the round."""
        for packet in decode_handoff(handoff_in):
            self.packets[packet.packet_id] = packet
            self.algorithm.on_arrival(packet, packet.location, round_number)
        occupancy_after = (
            self._segment_occupancy() if self.record_history else None
        )
        self.algorithm.on_round_end(round_number)
        if self.record_history:
            injected, staged, occupancy_before = self._round_scratch
            forwarded, delivered = self._round_moves
            self._history.append(
                RoundRecord(
                    round=round_number,
                    injected=injected,
                    forwarded=forwarded,
                    delivered=delivered,
                    max_occupancy=max(occupancy_before.values(), default=0),
                    max_occupancy_after_forwarding=max(
                        occupancy_after.values(), default=0
                    ),
                    staged=staged,
                    occupancy=dict(occupancy_before)
                    if self.record_occupancy_vectors
                    else None,
                )
            )
        self._round = round_number + 1
        return {
            "pending": self._pending(),
            "staged": self.algorithm.staged_count(),
        }


# ---------------------------------------------------------------------------
# Worker wrapper (shared by both transports)
# ---------------------------------------------------------------------------


class _SegmentWorker:
    """Builds one segment's scenario ingredients and dispatches commands.

    ``restore_path`` (recovery respawns only) points at a per-segment
    checkpoint; the freshly built engine is fast-forwarded through
    :func:`repro.checkpoint.restore_into` before serving commands — the same
    restore machinery the resume differential suites prove bit-identical.
    The worker must be built inside a fresh packet-id scope for the restore
    to renumber correctly (both transports guarantee that).
    """

    def __init__(
        self,
        spec_payload: Dict[str, Any],
        segment_index: int,
        segments: Sequence[Tuple[int, int]],
        restore_path: Optional[str] = None,
    ) -> None:
        from ..api.session import Session
        from ..api.specs import ScenarioSpec
        from ..adversary.segmented import SegmentFilteredAdversary

        spec = ScenarioSpec.from_dict(spec_payload)
        session = Session(cache_topologies=False)
        prepared = session.prepare(spec)
        topology = prepared.topology
        if not isinstance(topology, LineTopology):
            raise UnshardableScenarioError(
                f"sharded execution needs a LineTopology, got "
                f"{type(topology).__name__}; run with shards=1"
            )
        algorithm = prepared.algorithm
        if not algorithm.supports_sharding:
            raise UnshardableScenarioError(
                f"algorithm {algorithm.name!r} has not declared segment-exact "
                f"selection (supports_sharding); run with shards=1"
            )
        lo, hi = segments[segment_index]
        adversary = SegmentFilteredAdversary(prepared.adversary, lo, hi)
        policy = spec.policy
        self.spec = spec
        self.base_adversary = prepared.adversary
        engine_kwargs = dict(
            record_history=policy.record_history,
            record_occupancy_vectors=policy.record_occupancy_vectors,
            history=policy.history,
            validate_capacity=policy.validate_capacity,
        )
        self.engine_selected = "delta"
        self.engine_fallback: Optional[str] = None
        self.simulator: SegmentSimulator
        if policy.engine in ("batch", "auto"):
            try:
                self.simulator = BatchSegmentSimulator(
                    topology,
                    algorithm,
                    adversary,
                    segment_index,
                    segments,
                    batch_rounds=policy.batch_rounds,
                    **engine_kwargs,
                )
                self.engine_selected = "batch"
            except UnbatchableScenarioError as refusal:
                if policy.engine == "batch":
                    raise
                # engine="auto": outside the vectorized family — the object
                # engine computes the same thing; record why for telemetry.
                self.engine_fallback = str(refusal)
        if self.engine_selected != "batch":
            self.simulator = SegmentSimulator(
                topology, algorithm, adversary, segment_index, segments,
                **engine_kwargs,
            )
        #: Whether an injected crash fault should kill the whole process
        #: (``os._exit``) instead of raising; set by the process transport so
        #: a chaos crash is indistinguishable from a real worker death.
        self._hard_crash = False
        if restore_path is not None:
            from ..checkpoint import load_checkpoint, restore_into

            restore_into(self.simulator, load_checkpoint(restore_path))
        if self.engine_selected == "batch":
            # Load the flat kernel after any checkpoint restore so it
            # projects the restored object state, not the empty line.
            self.simulator.ensure_kernel()
        #: Shared-memory boundary rings attached for window mode, keyed as
        #: in the coordinator's "rings" payload.
        self._rings: Dict[str, Any] = {}

    def init_info(self) -> Dict[str, Any]:
        algorithm = self.simulator.algorithm
        simulator = self.simulator
        batch = self.engine_selected == "batch"
        return {
            "horizon": self.base_adversary.horizon,
            # The batch segment engine replays global selection from boundary
            # views alone; only the object engine threads HPTS-style carries.
            "needs_carry": algorithm.sharding_needs_carry and not batch,
            "algorithm_name": algorithm.name,
            "engine": self.engine_selected,
            "engine_fallback": self.engine_fallback,
            "needs_reverse_lane": (
                simulator.needs_reverse_lane if batch else False
            ),
        }

    def dispatch(self, command: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        fault = payload.get("fault")
        if fault is not None:
            self._apply_fault(fault, command)
        if command == "begin":
            return self.simulator.begin_round(
                payload["round"], inject=payload["inject"]
            )
        if command == "select":
            return self.simulator.select_round(
                payload["round"], payload["views"], payload["carry"]
            )
        if command == "finish":
            return self.simulator.finish_round(
                payload["round"], payload["handoff"]
            )
        if command == "window":
            return self._run_window(payload)
        if command == "rings":
            self._attach_rings(payload["names"])
            return {"attached": sorted(self._rings)}
        if command == "truncate":
            self.simulator.truncate_to(payload["round"])
            return {"round": payload["round"]}
        if command == "checkpoint":
            self._sync_batch_state()
            size = self.simulator.save_checkpoint(payload["path"], spec=self.spec)
            return {"bytes": size}
        if command == "status":
            # Queried after a recovery respawn: the restored engines know
            # their pending/staged counts, the (new) coordinator does not.
            self._sync_batch_state()
            return {
                "pending": self.simulator._pending(),
                "staged": self.simulator.algorithm.staged_count(),
            }
        if command == "result":
            self._sync_batch_state()
            return self._result_payload()
        raise ShardingProtocolError(f"unknown worker command {command!r}")

    def _sync_batch_state(self) -> None:
        """Project batch kernel state into objects at a round boundary."""
        if self.engine_selected == "batch":
            self.simulator.sync_for_snapshot()

    def _attach_rings(self, names: Dict[str, str]) -> None:
        """Attach the coordinator-created boundary rings this worker uses."""
        for key, name in names.items():
            self._rings[key] = BoundaryRing(name=name)

    def _run_window(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Free-run one k-round window over the shared-memory lanes."""
        rings = self._rings
        return self.simulator.run_window(
            payload["t0"],
            payload["t1"],
            inject=payload["inject"],
            left_in=rings.get("left_in"),
            right_out=rings.get("right_out"),
            right_in=rings.get("right_in"),
            left_out=rings.get("left_out"),
            faults=payload.get("faults"),
            fault_hook=self._window_fault_hook,
            ring_timeout=payload.get("ring_timeout", 60.0),
        )

    def _window_fault_hook(self, fault: Dict[str, Any], round_number: int) -> None:
        self._apply_fault(fault, f"round {round_number}")

    def close_rings(self) -> None:
        for ring in self._rings.values():
            try:
                ring.close()
            except (OSError, BufferError):  # pragma: no cover - best-effort
                pass
        self._rings = {}

    def _apply_fault(self, fault: Dict[str, Any], command: str) -> None:
        """Act out an injected fault directive shipped with a phase command."""
        delay = fault.get("delay", 0.0)
        if delay > 0:
            time.sleep(delay)
        if fault.get("crash"):
            if self._hard_crash:
                os._exit(_CRASH_EXIT_CODE)
            raise WorkerFailedError(
                f"injected crash in segment worker "
                f"{self.simulator.segment_index} during {command!r}",
                segment=self.simulator.segment_index,
                phase=command,
            )

    def _result_payload(self) -> Dict[str, Any]:
        simulator = self.simulator
        history: List[Tuple] = []
        if simulator.record_history:
            history = [
                (
                    record.round, record.injected, record.forwarded,
                    record.delivered, record.max_occupancy,
                    record.max_occupancy_after_forwarding, record.staged,
                    record.occupancy,
                )
                for record in simulator._history
            ]
        return {
            "round": simulator._round,
            "injected": simulator._injected,
            "delivered": simulator._delivered,
            "latency_sum": simulator._latency_sum,
            "latency_max": simulator._latency_max,
            "pending": simulator._pending(),
            "max_occupancy": simulator._timeline.max_occupancy,
            "max_per_node": simulator._timeline.per_node_maxima(),
            "history": history,
            "algorithm_name": simulator.algorithm.name,
            "algorithm_state": simulator.algorithm.checkpoint_state(),
            "adversary_sigma": getattr(self.base_adversary, "sigma", None),
            "handoff_trace": (
                simulator._handoff_trace
                if self.engine_selected == "batch" else None
            ),
        }


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class _LocalHandle:
    """In-process worker: same protocol, no pipes, per-worker id context."""

    def __init__(
        self, spec_payload, segment_index, segments, restore_path=None
    ) -> None:
        self.segment_index = segment_index
        self._context = contextvars.copy_context()

        def build() -> _SegmentWorker:
            # Enter a fresh packet-id scope that lives as long as this
            # context does — each in-process worker numbers the full schedule
            # independently, exactly like a worker process would.
            packet_id_scope().__enter__()
            return _SegmentWorker(
                spec_payload, segment_index, segments, restore_path
            )

        self._worker = self._context.run(build)
        self.init_payload = self._worker.init_info()
        self._reply: Optional[Dict[str, Any]] = None

    def send(self, command: str, payload: Dict[str, Any]) -> None:
        self._reply = self._context.run(self._worker.dispatch, command, payload)

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        # ``timeout`` is accepted for handle-interface parity; dispatch ran
        # synchronously in send(), so an in-process worker can never hang
        # (injected ``slow`` faults just make send() itself take longer).
        reply, self._reply = self._reply, None
        if reply is None:
            raise ShardingProtocolError("recv() before send() on local worker")
        return reply

    def kill(self) -> None:
        self._worker = None
        self._reply = None

    def close(self) -> None:
        self._worker = None


def _process_worker_main(
    connection, spec_payload, segment_index, segments, restore_path=None
) -> None:
    """Worker-process entry point: build the segment engine, serve commands."""
    try:
        with packet_id_scope():
            worker = _SegmentWorker(
                spec_payload, segment_index, segments, restore_path
            )
            worker._hard_crash = True
            connection.send(("ok", worker.init_info()))
            while True:
                try:
                    message = connection.recv()
                except EOFError:
                    return  # coordinator went away
                command, payload = message
                if command == "close":
                    worker.close_rings()
                    return
                connection.send(("ok", worker.dispatch(command, payload)))
    except BaseException as error:  # noqa: BLE001 - forwarded to coordinator
        # The pipe is the only channel out of this process; the coordinator's
        # _recv_checked re-raises whatever arrives, so forwarding is not
        # swallowing.  A worker that cannot forward re-raises instead: its
        # nonzero exit code is then reported by _ProcessHandle.close().
        try:
            connection.send(("error", error))
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            # The original exception does not pickle — ship a typed summary.
            try:
                connection.send(
                    ("error", ShardingProtocolError(
                        f"segment {segment_index}: {type(error).__name__}: {error}"
                    ))
                )
            except OSError:
                raise error
        except OSError:
            raise error
    finally:
        connection.close()


class _ProcessHandle:
    """One worker process plus its pipe."""

    def __init__(
        self, context, spec_payload, segment_index, segments, restore_path=None
    ) -> None:
        self.segment_index = segment_index
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_process_worker_main,
            args=(child_conn, spec_payload, segment_index, segments,
                  restore_path),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self.init_payload = self._recv_checked()

    def send(self, command: str, payload: Dict[str, Any]) -> None:
        try:
            self._conn.send((command, payload))
        except (BrokenPipeError, OSError) as error:
            raise WorkerFailedError(
                f"segment worker {self.segment_index} is gone: {error}",
                segment=self.segment_index,
            ) from error

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        return self._recv_checked(timeout)

    def _recv_checked(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        if timeout is not None:
            try:
                ready = self._conn.poll(timeout)
            except (OSError, EOFError):
                # A dead pipe is "ready": fall through and let recv() below
                # classify the death precisely.
                ready = True
            if not ready:
                raise WorkerFailedError(
                    f"segment worker {self.segment_index} sent no reply "
                    f"within heartbeat_timeout={timeout:g}s; treating it as "
                    f"hung",
                    segment=self.segment_index,
                )
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError):
            # EOFError for a clean hangup, OSError (ECONNRESET) when the
            # worker died with bytes still in flight — either way the worker
            # is gone and the supervisor owns what happens next.
            raise WorkerFailedError(
                f"segment worker {self.segment_index} died without replying "
                f"(worker process exited; exit code appears in the shutdown "
                f"diagnostics)",
                segment=self.segment_index,
            ) from None
        if status == "error":
            if isinstance(payload, BaseException):
                raise payload
            raise ShardingProtocolError(
                f"segment worker {self.segment_index} failed: {payload}"
            )
        return payload

    def kill(self) -> None:
        """Fast teardown for recovery: no close handshake (the worker may be
        dead or hung), just drop the pipe and make sure the process is gone."""
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - pipe already torn down
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=10)

    def close(self) -> Optional[str]:
        """Shut the worker down and report how it went.

        Returns ``None`` on a clean exit, otherwise a diagnostic string.
        Raising here would mask whatever error is already propagating
        through the coordinator's unwind, so the *caller* decides whether a
        dirty shutdown escalates (see ``_ShardedCoordinator._shutdown``).
        """
        problem: Optional[str] = None
        try:
            self._conn.send(("close", {}))
        except OSError as error:
            # Worker hung up first; the exit code below says whether that
            # was a crash or an earlier clean return.
            problem = (
                f"segment worker {self.segment_index} pipe already closed: {error}"
            )
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=10)
            problem = f"segment worker {self.segment_index} had to be terminated"
        elif self._process.exitcode:
            problem = (
                f"segment worker {self.segment_index} exited with code "
                f"{self._process.exitcode}"
            )
        self._conn.close()
        return problem


def _spawn_workers(transport, spec_payload, segments, restore_paths=None):
    if restore_paths is None:
        restore_paths = [None] * len(segments)
    if transport == "local":
        return [
            _LocalHandle(spec_payload, index, segments, restore_paths[index])
            for index in range(len(segments))
        ]
    methods = multiprocessing.get_all_start_methods()
    # fork is dramatically cheaper than spawn (no interpreter + import replay
    # per worker) and the coordinator is single-threaded at spawn time.
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    handles = []
    try:
        for index in range(len(segments)):
            handles.append(
                _ProcessHandle(
                    context, spec_payload, index, segments,
                    restore_paths[index],
                )
            )
    except BaseException:
        # A mid-list spawn failure (fd exhaustion, a worker refusing the
        # scenario) must not leak the workers already started.
        for handle in handles:
            handle.close()
        raise
    return handles


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _ShardedCoordinator:
    """Drives the superstep loop, supervises the workers and merges results.

    The coordinator is also the supervisor: every transport operation runs
    through :meth:`_send` / :meth:`_recv` (fault directives, bounded retry,
    heartbeat timeout), and :meth:`run` wraps the whole attempt in a
    recovery loop — a :class:`WorkerFailedError` tears all workers down and,
    when ``RunPolicy.recovery`` allows, rewinds to the last consistent
    per-segment checkpoint cut and respawns (``"restart"``) or folds the
    orphaned segment into a neighbour (``"fold"``) before retrying.
    """

    def __init__(self, spec: "ScenarioSpec", execution: ExecutionPolicy) -> None:
        from ..api.session import build_topology

        topology = build_topology(spec.topology)
        if not isinstance(topology, LineTopology):
            raise UnshardableScenarioError(
                f"sharded execution needs a line topology, got "
                f"{spec.topology.kind!r}; run with shards=1"
            )
        self.spec = spec
        self.execution = execution
        self.num_nodes = topology.num_nodes
        self.segments = plan_segments(self.num_nodes, execution.shards)
        self.handles: List[Any] = []
        self.needs_carry = False
        self.max_staged = 0
        self._executed = 0
        # -- batch×shards state -------------------------------------------------
        #: Engine telemetry merged into extras["engine"] (None until workers
        #: report which engine they actually built).
        self._engine_info: Optional[Dict[str, Any]] = None
        #: Coordinator ends of the shared-memory boundary rings (window mode).
        self._rings: List[BoundaryRing] = []
        self._ring_timeout = 60.0
        # -- supervisor configuration ------------------------------------------
        policy = spec.policy
        self._recovery_mode = policy.recovery
        self._max_restarts = policy.max_worker_restarts
        self._heartbeat_timeout = policy.heartbeat_timeout
        self._injector = (
            FaultInjector(execution.faults) if execution.faults else None
        )
        self._clock = execution.clock
        # -- recovery state -----------------------------------------------------
        self._restarts = 0
        self._recovery_seconds = 0.0
        self._resume_round = 0
        self._restore_paths: Optional[List[Optional[str]]] = None
        #: The last *complete* per-segment checkpoint cut: rounds executed,
        #: the coordinator's global staged maximum at that point, and one
        #: restore file per current segment (kept aligned with
        #: ``self.segments`` even across folds).
        self._cut_rounds: Optional[int] = None
        self._cut_max_staged = 0
        self._cut_paths: List[str] = []
        #: Recovery scaffolding currently on disk (per-segment snapshots and
        #: fold merges); refreshed — and stale members unlinked — at every
        #: successful checkpoint.
        self._disk_paths: set = set()

    # -- lifecycle ---------------------------------------------------------------

    def run(self) -> Tuple[SimulationResult, Dict[str, Any]]:
        while True:
            try:
                return self._run_attempt()
            except WorkerFailedError as failure:
                self._teardown()
                self._plan_recovery(failure)
            except BaseException:
                # An error is already propagating — close best-effort and let
                # it through; shutdown diagnostics must not mask the fault.
                self._teardown()
                raise

    def _run_attempt(self) -> Tuple[SimulationResult, Dict[str, Any]]:
        policy = self.spec.policy
        spec_payload = self.spec.to_dict()
        self.handles = _spawn_workers(
            self.execution.transport, spec_payload, self.segments,
            self._restore_paths,
        )
        infos = [handle.init_payload for handle in self.handles]
        horizon = infos[0]["horizon"]
        for info in infos[1:]:
            if info["horizon"] != horizon:
                raise ShardingProtocolError(
                    "segment workers disagree on the adversary horizon"
                )
        engines = {info.get("engine", "delta") for info in infos}
        if len(engines) != 1:
            raise ShardingProtocolError(
                f"segment workers disagree on the engine: {sorted(engines)}"
            )
        engine = engines.pop()
        self._engine_info = {
            "requested": policy.engine if policy.engine is not None else "delta",
            "selected": engine,
            "fallback_reason": infos[0].get("engine_fallback"),
        }
        self.needs_carry = any(info["needs_carry"] for info in infos)
        num_rounds = policy.rounds if policy.rounds is not None else horizon
        window_mode = (
            engine == "batch"
            and self.execution.transport == "processes"
            and self.execution.shm is not False
            and self._setup_rings(infos, policy)
        )
        self._engine_info["transport"] = (
            "shm" if window_mode else self.execution.transport
        )

        start_round = self._resume_round
        pending = 0
        staged = 0
        if start_round:
            # Restored engines know their pending/staged counts; the
            # coordinator's were lost with the failed attempt.  Matters when
            # the cut sits exactly at the horizon (crash during drain): the
            # injection loop below is empty and drain needs real counters.
            status = self._broadcast("status", {}, start_round)
            pending = sum(reply["pending"] for reply in status)
            staged = sum(reply["staged"] for reply in status)
        if window_mode:
            pending = self._run_windows(start_round, num_rounds, policy, pending)
            drained = (
                self._drain_windows(num_rounds, pending, policy)
                if policy.drain else pending == 0
            )
        else:
            for round_number in range(start_round, num_rounds):
                _forwarded, staged, pending = self._superstep(
                    round_number, inject=True
                )
                if (
                    policy.checkpoint_every is not None
                    and (round_number + 1) % policy.checkpoint_every == 0
                ):
                    self._checkpoint(policy.checkpoint_path, round_number + 1)
            drained = self._drain(
                num_rounds, pending, staged, policy
            ) if policy.drain else pending == 0
        result, extras = self._collect(drained)
        # Success path: a worker that crashed or hung at shutdown invalidates
        # the clean-run claim, so close diagnostics escalate.
        self._shutdown(strict=True)
        return result, extras

    def _shutdown(self, *, strict: bool) -> None:
        problems: List[str] = []
        for handle in self.handles:
            problem = handle.close()
            if problem:
                problems.append(problem)
        self.handles = []
        self._release_rings()
        if strict and problems:
            raise ShardingProtocolError(
                "worker shutdown failed after a completed run: "
                + "; ".join(problems)
            )

    def _teardown(self) -> None:
        """Recovery-path shutdown: no close handshake — peers of the failed
        worker may be mid-phase and a handshake could hang on them."""
        for handle in self.handles:
            handle.kill()
        self.handles = []
        self._release_rings()

    # -- batch×shards window mode -------------------------------------------------

    def _release_rings(self) -> None:
        for ring in self._rings:
            ring.destroy()
        self._rings = []

    def _setup_rings(self, infos: List[Dict[str, Any]], policy) -> bool:
        """Create the boundary rings and ship their names to the workers.

        Returns ``False`` (degrading to the pipe relay path) when shared
        memory is unavailable and the policy did not *require* it.  One
        left-to-right ring per segment boundary; the right-to-left lane only
        when some algorithm decision reads suffix facts (downhill's
        neighbour load, work-conserving PTS's any-bad flag).
        """
        required = self.execution.shm is True
        boundaries = len(self.handles) - 1
        if boundaries > 0 and not required and not shared_memory_available():
            return False
        needs_reverse = any(
            info.get("needs_reverse_lane") for info in infos
        )
        # Capacity covers the maximum producer/consumer skew: two outstanding
        # windows of batch_rounds rounds each, one block per round per lane.
        capacity = 2 * policy.batch_rounds + 8
        forward: List[Optional[BoundaryRing]] = []
        reverse: List[Optional[BoundaryRing]] = []
        try:
            for _ in range(boundaries):
                forward.append(BoundaryRing(capacity=capacity))
                reverse.append(
                    BoundaryRing(capacity=capacity) if needs_reverse else None
                )
        except Exception as error:
            for ring in forward + reverse:
                if ring is not None:
                    ring.destroy()
            if required:
                raise UnshardableScenarioError(
                    f"ExecutionPolicy.shm=True but shared memory is "
                    f"unavailable: {error}"
                ) from error
            return False
        self._rings = [
            ring for ring in forward + reverse if ring is not None
        ]
        self._ring_timeout = (
            60.0 if self._heartbeat_timeout is None
            else max(5.0, self._heartbeat_timeout * 4)
        )
        for index, handle in enumerate(self.handles):
            names: Dict[str, str] = {}
            if index > 0:
                names["left_in"] = forward[index - 1].name
                if needs_reverse:
                    names["left_out"] = reverse[index - 1].name
            if index < boundaries:
                names["right_out"] = forward[index].name
                if needs_reverse:
                    names["right_in"] = reverse[index].name
            self._send(handle, "rings", {"names": names}, 0)
        for handle in self.handles:
            self._recv(handle, "rings", 0)
        return True

    def _window_faults(
        self, t0: int, t1: int, segment: int
    ) -> Optional[Dict[int, Dict[str, Any]]]:
        """Collapse per-phase fault directives into per-round window faults.

        Window mode has no per-round coordinator messages to piggyback
        directives on, so the rounds' begin/select/finish directives merge
        into one directive applied at the start of the round inside the
        worker: delays add up, a crash in any phase crashes the round.
        """
        if self._injector is None:
            return None
        merged: Dict[int, Dict[str, Any]] = {}
        for round_number in range(t0, t1):
            crash = False
            delay = 0.0
            for phase in ("begin", "select", "finish"):
                directive = self._injector.directives_for(
                    round_number, segment, phase
                )
                if directive is not None:
                    crash = crash or directive.get("crash", False)
                    delay += directive.get("delay", 0.0)
            if crash or delay > 0:
                merged[round_number] = {"crash": crash, "delay": delay}
        return merged or None

    def _window_drops(self, t0: int, t1: int, segment: int) -> None:
        """Consume drop tokens for the window's phases, with the same bounded
        retry-with-backoff semantics the per-phase relay path applies."""
        if self._injector is None:
            return
        for round_number in range(t0, t1):
            for phase in ("begin", "select", "finish"):
                attempts = 0
                while self._injector.drop_next_send(
                    round_number, segment, phase
                ):
                    attempts += 1
                    if attempts > self.execution.max_retries:
                        raise WorkerFailedError(
                            f"send of {phase!r} to segment worker {segment} "
                            f"(round {round_number}) still failing after "
                            f"{self.execution.max_retries} retries",
                            segment=segment,
                            round_number=round_number,
                            phase=phase,
                        )
                    if self.execution.retry_backoff > 0:
                        time.sleep(self.execution.retry_backoff * attempts)

    def _send_window(self, t0: int, t1: int, *, inject: bool) -> None:
        for handle in self.handles:
            self._window_drops(t0, t1, handle.segment_index)
            payload: Dict[str, Any] = {
                "t0": t0,
                "t1": t1,
                "inject": inject,
                "ring_timeout": self._ring_timeout,
            }
            faults = self._window_faults(t0, t1, handle.segment_index)
            if faults is not None:
                payload["faults"] = faults
            self._send(handle, "window", payload, t0)

    def _window_replies(self, t0: int) -> List[Dict[str, Any]]:
        """Collect one window reply per worker, blaming failures precisely.

        Workers finish a window in line order but stall on each other's
        rings, so a crashed worker starves its neighbours too.  Receiving in
        fixed order would blame whichever innocent neighbour happens to be
        polled first; instead sweep all pipes and, when nothing progresses,
        look for an actually-dead worker process before declaring a hang.
        """
        count = len(self.handles)
        replies: List[Optional[Dict[str, Any]]] = [None] * count
        waiting = list(range(count))
        # Clock-free supervision: charge each not-ready poll its nominal
        # blocking time against the heartbeat budget instead of reading a
        # wall clock (RPR001 scope).  The effective timeout is a floor on
        # time actually spent blocked, which is exactly what "the worker
        # sent nothing while we waited" means.
        budget = self._heartbeat_timeout
        while waiting:
            progressed = False
            for index in list(waiting):
                handle = self.handles[index]
                connection = getattr(handle, "_conn", None)
                if connection is not None:
                    try:
                        ready = connection.poll(0.02)
                    except (OSError, EOFError):
                        ready = True  # dead pipe: let _recv classify it
                    if not ready:
                        if budget is not None:
                            budget -= 0.02
                        continue
                replies[index] = self._recv(handle, "window", t0)
                waiting.remove(index)
                progressed = True
            if progressed or not waiting:
                continue
            for index in waiting:
                process = getattr(self.handles[index], "_process", None)
                if process is not None and not process.is_alive():
                    raise WorkerFailedError(
                        f"segment worker {index} died mid-window at round "
                        f"{t0} (worker process exited)",
                        segment=index,
                        round_number=t0,
                        phase="window",
                    )
            if budget is not None and budget <= 0:
                index = waiting[0]
                raise WorkerFailedError(
                    f"segment worker {index} sent no window reply within "
                    f"heartbeat_timeout={self._heartbeat_timeout:g}s; "
                    f"treating it as hung",
                    segment=index,
                    round_number=t0,
                    phase="window",
                )
        return replies  # type: ignore[return-value]

    def _collect_window(self, t0: int, t1: int) -> Tuple[int, List[int], List[int]]:
        """Await one window from every worker; return global per-round sums."""
        replies = self._window_replies(t0)
        width = t1 - t0
        for index, reply in enumerate(replies):
            if len(reply["forwarded"]) != width:
                raise ShardingProtocolError(
                    f"segment worker {index} executed "
                    f"{len(reply['forwarded'])} rounds of window "
                    f"[{t0}, {t1})"
                )
        forwarded = [
            sum(reply["forwarded"][j] for reply in replies)
            for j in range(width)
        ]
        stored = [
            sum(reply["stored"][j] for reply in replies)
            for j in range(width)
        ]
        self._executed = t1
        pending = stored[-1] if stored else 0
        return pending, forwarded, stored

    def _truncate(self, to_round: int) -> None:
        """Rewind every worker's drain overshoot to ``to_round``."""
        for handle in self.handles:
            self._send(handle, "truncate", {"round": to_round}, to_round)
        for handle in self.handles:
            self._recv(handle, "truncate", to_round)
        self._executed = to_round

    def _run_windows(
        self, start_round: int, num_rounds: int, policy, pending: int
    ) -> int:
        """The injection loop in k-round windows, pipelined two deep.

        Windows are clamped to checkpoint cuts, and a cut drains the
        pipeline (a checkpoint needs every worker parked at the same round
        boundary) before the per-segment snapshot protocol runs unchanged.
        """
        every = policy.checkpoint_every
        windows: List[Tuple[int, int]] = []
        t = start_round
        while t < num_rounds:
            t1 = min(num_rounds, t + policy.batch_rounds)
            if every is not None:
                t1 = min(t1, (t // every + 1) * every)
            windows.append((t, t1))
            t = t1
        outstanding: deque = deque()
        for t0, t1 in windows:
            self._send_window(t0, t1, inject=True)
            outstanding.append((t0, t1))
            cut = every is not None and t1 % every == 0
            while outstanding and (cut or len(outstanding) >= 2):
                pending, _forwarded, _stored = self._collect_window(
                    *outstanding.popleft()
                )
            if cut:
                self._checkpoint(policy.checkpoint_path, t1)
        while outstanding:
            pending, _forwarded, _stored = self._collect_window(
                *outstanding.popleft()
            )
        return pending

    def _drain_windows(self, start_round: int, pending: int, policy) -> bool:
        """Window-mode drain: free-run, then replay the global stop rule.

        Workers cannot evaluate the stop conditions (they see only their
        segment), so each drain window runs to completion and the
        coordinator replays :meth:`_drain`'s exact loop over the summed
        per-round counters; a mid-window stop truncates the workers'
        overshoot, which is provably side-effect-free (module docstring of
        :mod:`repro.network.batch_sharded`).  The batch family never stages
        packets, so the relay path's ``staged == previous_staged`` clause is
        vacuously true and quiescence degenerates to ``forwarded == 0``.
        """
        max_drain_rounds = policy.max_drain_rounds
        if max_drain_rounds is None:
            max_drain_rounds = default_max_drain_rounds(self.num_nodes, pending)
        window = quiescence_window(self.num_nodes)
        quiet_rounds = 0
        rounds_drained = 0
        t = start_round
        while pending > 0 and rounds_drained < max_drain_rounds:
            width = min(policy.batch_rounds, max_drain_rounds - rounds_drained)
            self._send_window(t, t + width, inject=False)
            _last, forwarded, stored = self._collect_window(t, t + width)
            executed = 0
            stop = False
            for j in range(width):
                pending = stored[j]
                executed += 1
                rounds_drained += 1
                if forwarded[j] == 0:
                    quiet_rounds += 1
                    if quiet_rounds >= window:
                        stop = True
                        break
                else:
                    quiet_rounds = 0
                if pending == 0:
                    stop = True
                    break
            if executed < width:
                self._truncate(t + executed)
            t += executed
            if stop and (pending == 0 or quiet_rounds >= window):
                break
        return pending == 0

    # -- recovery ----------------------------------------------------------------

    def _plan_recovery(self, failure: WorkerFailedError) -> None:
        """Decide how the next attempt runs, or re-raise if recovery is off
        the table.  On return, ``self.segments`` / ``self._restore_paths`` /
        ``self._resume_round`` describe the next attempt."""
        if self._recovery_mode == "fail":
            raise failure
        if self._restarts >= self._max_restarts:
            who = (
                f"segment worker {failure.segment}"
                if failure.segment is not None else "a segment worker"
            )
            raise RecoveryExhaustedError(
                f"worker recovery budget exhausted: {self._restarts} "
                f"restart(s) already used and {who} failed again "
                f"(max_worker_restarts={self._max_restarts}).  Last failure: "
                f"{failure}.  Raise RunPolicy.max_worker_restarts, or "
                f"investigate why workers keep dying."
            ) from failure
        if self._recovery_mode == "fold" and len(self.segments) == 1:
            raise RecoveryExhaustedError(
                f"cannot fold after the failure of segment worker "
                f"{failure.segment}: the run is down to a single segment, "
                f"so there is no neighbouring worker to absorb it.  Use "
                f"recovery='restart' or start with more shards."
            ) from failure
        started = self._clock() if self._clock is not None else None
        self._restarts += 1
        cut = self._load_consistent_cut()
        if self._recovery_mode == "fold" and failure.segment is not None:
            self._fold_segment(failure.segment, cut)
        if cut is None:
            # No checkpointing configured, no cut taken yet, or the cut was
            # torn by the failure (e.g. mid-checkpoint crash): replay from
            # round 0 with fresh workers.  Deterministic, just slower.
            self._resume_round = 0
            self._restore_paths = None
            self.max_staged = 0
            self._executed = 0
        else:
            self._resume_round = self._cut_rounds or 0
            self._restore_paths = list(self._cut_paths)
            self.max_staged = self._cut_max_staged
            self._executed = self._resume_round
        if started is not None:
            self._recovery_seconds += self._clock() - started

    def _load_consistent_cut(self) -> Optional[List[Any]]:
        """Load and validate the last per-segment checkpoint cut.

        Returns the loaded :class:`~repro.checkpoint.Checkpoint` objects (in
        segment order, aligned with ``self.segments``) or ``None`` when no
        usable cut exists.  Validation reuses
        :func:`~repro.checkpoint.stitch_checkpoints`: the files must agree on
        round, spec hash, allocator position and adversary cursor — a
        mismatch (now a typed
        :class:`~repro.network.errors.CheckpointFormatError`) means the
        failure tore the cut, and recovery falls back to round 0 rather than
        resuming from inconsistent state.
        """
        from ..checkpoint import load_checkpoint, stitch_checkpoints

        if self._cut_rounds is None or not self._cut_paths:
            return None
        try:
            checkpoints = [load_checkpoint(path) for path in self._cut_paths]
            stitched = stitch_checkpoints(
                checkpoints, max_staged=self._cut_max_staged
            )
        except (OSError, CheckpointError):
            self._forget_cut()
            return None
        if stitched.round != self._cut_rounds:
            self._forget_cut()
            return None
        return checkpoints

    def _forget_cut(self) -> None:
        self._cut_rounds = None
        self._cut_max_staged = 0
        self._cut_paths = []

    def _fold_segment(self, dead: int, cut: Optional[List[Any]]) -> None:
        """Merge the dead worker's segment into a neighbour (k -> k-1).

        The left neighbour absorbs it (the right one for segment 0).  With a
        usable cut, the pair's snapshots are restitched into one merge file
        the widened worker restores from; without one, the merged plan simply
        replays from round 0.  The cut bookkeeping is updated in the same
        step so it stays aligned with ``self.segments``.
        """
        from ..checkpoint import save_stitched

        if not 0 <= dead < len(self.segments):
            # The failure could not name its segment (or named a stale one);
            # there is nothing to fold, so keep the plan and just respawn.
            return
        neighbour = dead - 1 if dead > 0 else dead + 1
        left, right = sorted((dead, neighbour))
        merged = (self.segments[left][0], self.segments[right][1])
        self.segments = (
            self.segments[:left] + [merged] + self.segments[right + 1:]
        )
        if cut is not None:
            merge_path = (
                f"{self.spec.policy.checkpoint_path}.segfold{self._restarts}"
            )
            save_stitched([cut[left], cut[right]], merge_path)
            self._disk_paths.add(merge_path)
            self._cut_paths = (
                self._cut_paths[:left] + [merge_path]
                + self._cut_paths[right + 1:]
            )

    # -- supervised transport ----------------------------------------------------

    def _send(
        self,
        handle: Any,
        command: str,
        payload: Dict[str, Any],
        round_number: int,
    ) -> None:
        """One supervised send: fault directives, simulated-loss retry loop.

        Injected ``drop`` faults model a lossy transport: each matching drop
        token makes one attempt fail, and the supervisor retries with linear
        backoff up to ``ExecutionPolicy.max_retries`` before escalating the
        worker as failed.  (A *real* dead pipe raises
        :class:`WorkerFailedError` from the handle directly — retrying a
        dead worker cannot help, recovery can.)
        """
        if self._injector is not None and command in FAULT_PHASES:
            directive = self._injector.directives_for(
                round_number, handle.segment_index, command
            )
            if directive is not None:
                payload = dict(payload, fault=directive)
            attempts = 0
            while self._injector.drop_next_send(
                round_number, handle.segment_index, command
            ):
                attempts += 1
                if attempts > self.execution.max_retries:
                    raise WorkerFailedError(
                        f"send of {command!r} to segment worker "
                        f"{handle.segment_index} (round {round_number}) "
                        f"still failing after "
                        f"{self.execution.max_retries} retries",
                        segment=handle.segment_index,
                        round_number=round_number,
                        phase=command,
                    )
                if self.execution.retry_backoff > 0:
                    time.sleep(self.execution.retry_backoff * attempts)
        try:
            handle.send(command, payload)
        except WorkerFailedError as error:
            # The local transport serves the command synchronously inside
            # send(), so a failing worker surfaces here rather than in
            # _recv(); attach the same (segment, round, phase) coordinate.
            raise WorkerFailedError(
                f"segment worker {handle.segment_index} failed during "
                f"{command!r} of round {round_number}: {error}",
                segment=handle.segment_index,
                round_number=round_number,
                phase=command,
            ) from error

    def _recv(
        self, handle: Any, command: str, round_number: int
    ) -> Dict[str, Any]:
        """One supervised receive: heartbeat timeout + failure context."""
        try:
            return handle.recv(timeout=self._heartbeat_timeout)
        except WorkerFailedError as error:
            raise WorkerFailedError(
                f"segment worker {handle.segment_index} failed during "
                f"{command!r} of round {round_number}: {error}",
                segment=handle.segment_index,
                round_number=round_number,
                phase=command,
            ) from error

    # -- superstep ----------------------------------------------------------------

    def _broadcast(
        self, command: str, payload: Dict[str, Any], round_number: int
    ) -> List[Dict[str, Any]]:
        for handle in self.handles:
            self._send(handle, command, payload, round_number)
        return [
            self._recv(handle, command, round_number)
            for handle in self.handles
        ]

    def _superstep(self, round_number: int, *, inject: bool) -> Tuple[int, int, int]:
        begin = self._broadcast(
            "begin", {"round": round_number, "inject": inject}, round_number
        )
        staged_now = sum(reply["staged"] for reply in begin)
        if staged_now > self.max_staged:
            self.max_staged = staged_now
        views = [reply["view"] for reply in begin]

        if self.needs_carry:
            # Selection information flows strictly left-to-right: thread the
            # carry token through the workers in segment order.
            selections = []
            carry = None
            for handle in self.handles:
                self._send(
                    handle,
                    "select",
                    {"round": round_number, "views": views, "carry": carry},
                    round_number,
                )
                reply = self._recv(handle, "select", round_number)
                carry = reply["carry"]
                selections.append(reply)
        else:
            selections = self._broadcast(
                "select",
                {"round": round_number, "views": views, "carry": None},
                round_number,
            )
        forwarded = sum(reply["forwarded"] for reply in selections)
        if selections[-1]["handoff"] is not None:
            raise ShardingProtocolError(
                "right-most segment produced a hand-off past the line end"
            )

        for index, handle in enumerate(self.handles):
            handoff_in = selections[index - 1]["handoff"] if index > 0 else None
            self._send(
                handle,
                "finish",
                {"round": round_number, "handoff": handoff_in},
                round_number,
            )
        finishes = [
            self._recv(handle, "finish", round_number)
            for handle in self.handles
        ]
        pending = sum(reply["pending"] for reply in finishes)
        staged_after = sum(reply["staged"] for reply in finishes)
        self._executed = round_number + 1
        return forwarded, staged_after, pending

    # -- drain (mirrors Simulator._drain) ------------------------------------------

    def _drain(self, start_round: int, pending: int, staged: int, policy) -> bool:
        max_drain_rounds = policy.max_drain_rounds
        if max_drain_rounds is None:
            max_drain_rounds = default_max_drain_rounds(self.num_nodes, pending)
        window = quiescence_window(self.num_nodes)
        quiet_rounds = 0
        previous_staged = staged
        round_number = start_round
        rounds_drained = 0
        while pending > 0 and rounds_drained < max_drain_rounds:
            forwarded, staged, pending = self._superstep(
                round_number, inject=False
            )
            round_number += 1
            rounds_drained += 1
            if forwarded == 0 and staged == previous_staged:
                quiet_rounds += 1
                if quiet_rounds >= window:
                    break
            else:
                quiet_rounds = 0
            previous_staged = staged
        return pending == 0

    # -- checkpointing ---------------------------------------------------------------

    def _checkpoint(self, path: str, rounds_done: int) -> None:
        from ..checkpoint import load_checkpoint, save_stitched

        keep = self._recovery_mode != "fail"
        round_number = rounds_done - 1  # the round this checkpoint follows
        segment_paths = [
            f"{path}.seg{index}" for index in range(len(self.handles))
        ]
        # Two-phase cut when recovery needs the per-segment files: workers
        # write to *.new staging names, and only after every worker replied
        # does the coordinator rename the whole set into place.  A worker
        # that crashes mid-checkpoint therefore tears the *new* cut, never
        # the previous consistent one.
        write_paths = (
            [f"{p}.new" for p in segment_paths] if keep else segment_paths
        )
        for handle, write_path in zip(self.handles, write_paths):
            self._send(
                handle, "checkpoint", {"path": write_path}, round_number
            )
        for handle in self.handles:
            self._recv(handle, "checkpoint", round_number)
        if keep:
            for write_path, segment_path in zip(write_paths, segment_paths):
                os.replace(write_path, segment_path)
        save_stitched(
            [load_checkpoint(segment_path) for segment_path in segment_paths],
            path,
            max_staged=self.max_staged,
        )
        if keep:
            # The per-segment snapshots ARE the recovery cut: retain them,
            # record the coordinator state a rewind must restore, and drop
            # whatever scaffolding the previous cut left behind (stale
            # higher-index files after a fold, fold merge files).
            stale = self._disk_paths - set(segment_paths)
            for stale_path in stale:
                try:
                    os.unlink(stale_path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    pass
            self._disk_paths = set(segment_paths)
            self._cut_rounds = rounds_done
            self._cut_max_staged = self.max_staged
            self._cut_paths = list(segment_paths)
            return
        # The stitched file is the product; the per-segment snapshots are
        # scaffolding.  Remove them so periodic checkpointing does not k-fold
        # the on-disk footprint (and a later run with fewer shards cannot
        # leave stale higher-index files behind).  Kept only if stitching
        # raised above — then they are the debugging evidence.
        for segment_path in segment_paths:
            try:
                os.unlink(segment_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- result merge -----------------------------------------------------------------

    def _collect(self, drained: bool) -> Tuple[SimulationResult, Dict[str, Any]]:
        replies = self._broadcast("result", {}, self._executed)
        for reply in replies:
            if reply["round"] != self._executed:
                raise ShardingProtocolError(
                    f"segment engines disagree on the round counter: "
                    f"{reply['round']} != {self._executed}"
                )
        injected = sum(reply["injected"] for reply in replies)
        delivered = sum(reply["delivered"] for reply in replies)
        latency_sum = sum(reply["latency_sum"] for reply in replies)
        latency_maxima = [
            reply["latency_max"] for reply in replies
            if reply["latency_max"] is not None
        ]
        max_per_node: Dict[int, int] = {}
        for reply in replies:
            max_per_node.update(reply["max_per_node"])

        history: List[RoundRecord] = []
        lengths = {len(reply["history"]) for reply in replies}
        if len(lengths) != 1:
            raise ShardingProtocolError(
                f"segment histories disagree on length: {sorted(lengths)}"
            )
        if lengths != {0}:
            for rows in zip(*(reply["history"] for reply in replies)):
                occupancy: Optional[Dict[int, int]] = None
                if any(row[7] is not None for row in rows):
                    occupancy = {}
                    for row in rows:
                        occupancy.update(row[7] or {})
                history.append(
                    RoundRecord(
                        round=rows[0][0],
                        injected=sum(row[1] for row in rows),
                        forwarded=sum(row[2] for row in rows),
                        delivered=sum(row[3] for row in rows),
                        max_occupancy=max(row[4] for row in rows),
                        max_occupancy_after_forwarding=max(row[5] for row in rows),
                        staged=sum(row[6] for row in rows),
                        occupancy=occupancy,
                    )
                )

        result = SimulationResult(
            algorithm=replies[0]["algorithm_name"],
            num_nodes=self.num_nodes,
            rounds_executed=self._executed,
            max_occupancy=max(reply["max_occupancy"] for reply in replies),
            max_occupancy_per_node=max_per_node,
            max_staged=self.max_staged,
            packets_injected=injected,
            packets_delivered=delivered,
            packets_undelivered=injected - delivered,
            max_latency=max(latency_maxima) if latency_maxima else None,
            mean_latency=(latency_sum / delivered) if delivered else None,
            drained=drained,
            history=history,
        )
        extras = {
            "algorithm_states": [reply["algorithm_state"] for reply in replies],
            "adversary_sigma": replies[0]["adversary_sigma"],
            "segments": list(self.segments),
            "recovery": {
                "restarts": self._restarts,
                "recovery_time_s": (
                    self._recovery_seconds if self._clock is not None else None
                ),
            },
            "engine": self._engine_info,
            "handoff_traces": [
                reply.get("handoff_trace") for reply in replies
            ],
        }
        return result, extras


def run_sharded(
    spec: "ScenarioSpec",
    *,
    shards: Optional[int] = None,
    transport: str = "processes",
    faults: Optional[FaultPlan] = None,
    clock: Optional[Callable[[], float]] = None,
    shm: Optional[bool] = None,
) -> Tuple[SimulationResult, Dict[str, Any]]:
    """Execute ``spec`` sharded across segment workers.

    ``shards`` defaults to the spec's ``policy.shards``.  Returns the merged
    :class:`SimulationResult` — bit-identical to the ``shards=1`` run — plus
    an extras mapping (per-segment algorithm states for bound folding, the
    adversary's declared sigma, the segment plan, and the recovery stats:
    how many worker restarts the run absorbed and, when a ``clock`` was
    injected, the seconds spent restitching/respawning).

    ``faults`` threads a deterministic
    :class:`~repro.network.faults.FaultPlan` through the supervisor for
    chaos runs; it never touches the spec, so results and checkpoints stay
    byte-identical to the fault-free run whenever recovery is enabled
    (``spec.policy.recovery``).
    """
    if shards is None:
        shards = spec.policy.shards
    if not shards or shards < 1:
        raise UnshardableScenarioError(
            f"run_sharded() needs shards >= 1, got {shards!r}"
        )
    execution = ExecutionPolicy(
        shards=shards, transport=transport, faults=faults, clock=clock,
        shm=shm,
    )
    return _ShardedCoordinator(spec, execution).run()
