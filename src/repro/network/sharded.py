"""Sharded execution: one huge line partitioned across worker processes.

The single-process engine tops out at one core.  This module splits a
:class:`~repro.network.topology.LineTopology` scenario into ``k`` contiguous
segments, runs one :class:`SegmentSimulator` per worker, and drives them in
lock-step *supersteps* — one superstep per simulated round — so the combined
execution is **bit-identical** to the single-process run (the differential
suite in ``tests/test_sharded_differential.py`` proves it for every bundled
line algorithm x adversary x history mode).

How a superstep works (see ``docs/SHARDING.md`` for the full protocol):

1. **begin** — every worker materialises its segment's injections (each
   worker drives the *full* row stream through its own packet-id allocator
   and keeps only its own sources, so ids match the single-process run; see
   :class:`~repro.adversary.segmented.SegmentFilteredAdversary`), measures
   ``L^t`` and publishes a compact
   :meth:`~repro.core.scheduler.ForwardingAlgorithm.boundary_view`.
2. **select** — every worker replays the *global* activation selection
   restricted to its own nodes from the merged views
   (:meth:`~repro.core.scheduler.ForwardingAlgorithm.select_segment_activations`);
   algorithms whose decision propagates along the line (HPTS pre-bad) thread
   a carry token left-to-right.  Workers then pop and place their own moves;
   a packet crossing the segment's right edge joins a columnar *hand-off
   record* (the :class:`~repro.core.packet.PacketStore` column layout).
3. **finish** — each worker ingests the hand-off from its left neighbour
   (still inside the round: the move happened simultaneously with its own),
   measures ``L^{t+}`` and runs end-of-round hooks.

The coordinator mirrors the single-process drain loop (same caps, same
quiescence window, fed by globally summed per-round counters), merges the
per-segment statistics into one :class:`SimulationResult`, and — when the
run policy asks for periodic checkpoints — saves per-segment snapshots and
stitches them into a single global checkpoint file
(:func:`repro.checkpoint.stitch_checkpoints`) that a plain single-process
``Session.resume`` continues bit-identically.

Two transports share all of the above: ``"processes"`` (the default — one OS
process per segment, talking over pipes; this is what actually buys
multi-core wall-clock) and ``"local"`` (same workers, same protocol, driven
in-process — deterministic, fork-free, and what the differential test matrix
uses).
"""

from __future__ import annotations

import contextvars
import multiprocessing
import pickle
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from ..core.packet import Injection, Packet, PacketState, packet_id_scope
from .errors import ShardingProtocolError, UnshardableScenarioError
from .events import RoundRecord, SimulationResult
from .simulator import Simulator, default_max_drain_rounds, quiescence_window
from .topology import LineTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.specs import ScenarioSpec

__all__ = [
    "ExecutionPolicy",
    "SegmentSimulator",
    "plan_segments",
    "run_sharded",
]

#: Hand-off record column order — the in-flight extension of the columnar
#: :class:`~repro.core.packet.PacketStore` layout (same first four columns,
#: plus the mutable engine fields a mid-flight packet carries).
_HANDOFF_COLUMNS = (
    "ids", "sources", "destinations", "rounds",
    "locations", "accepted_rounds", "hops",
)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sharded run is executed (engine-level, not part of the spec).

    ``shards`` is the requested segment count (clamped to the line length —
    ``shards > n`` degrades to one node per worker rather than failing);
    ``transport`` picks worker processes (``"processes"``) or the in-process
    protocol driver (``"local"``).
    """

    shards: int = 1
    transport: str = "processes"

    def __post_init__(self) -> None:
        if not isinstance(self.shards, int) or self.shards < 1:
            raise UnshardableScenarioError(
                f"shards must be an int >= 1, got {self.shards!r}"
            )
        if self.transport not in ("processes", "local"):
            raise UnshardableScenarioError(
                f"transport must be 'processes' or 'local', got {self.transport!r}"
            )


def plan_segments(num_nodes: int, shards: int) -> List[Tuple[int, int]]:
    """Partition ``0..num_nodes-1`` into ``shards`` contiguous segments.

    Balanced to within one node (the first ``num_nodes % shards`` segments
    take the extra node); inclusive ``(lo, hi)`` bounds, in line order.
    ``shards`` is clamped to ``num_nodes`` so every segment is non-empty.
    """
    if num_nodes < 1:
        raise UnshardableScenarioError(f"cannot shard a {num_nodes}-node line")
    shards = max(1, min(shards, num_nodes))
    base, extra = divmod(num_nodes, shards)
    segments: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        width = base + (1 if index < extra else 0)
        segments.append((lo, lo + width - 1))
        lo += width
    return segments


# ---------------------------------------------------------------------------
# Hand-off records (columnar, PacketStore-style)
# ---------------------------------------------------------------------------


def encode_handoff(packets: Sequence[Packet]) -> Optional[Dict[str, array]]:
    """Encode boundary-crossing packets as flat int64 columns."""
    if not packets:
        return None
    columns = {name: array("q") for name in _HANDOFF_COLUMNS}
    for packet in packets:
        columns["ids"].append(packet.packet_id)
        columns["sources"].append(packet.source)
        columns["destinations"].append(packet.destination)
        columns["rounds"].append(packet.injected_round)
        columns["locations"].append(packet.location)
        columns["accepted_rounds"].append(
            -1 if packet.accepted_round is None else packet.accepted_round
        )
        columns["hops"].append(packet.hops)
    return columns


def decode_handoff(columns: Optional[Dict[str, array]]) -> List[Packet]:
    """Rebuild the in-flight :class:`Packet` objects of a hand-off record."""
    if not columns:
        return []
    packets: List[Packet] = []
    for row in range(len(columns["ids"])):
        injection = Injection(
            columns["rounds"][row],
            columns["sources"][row],
            columns["destinations"][row],
            columns["ids"][row],
        )
        accepted = columns["accepted_rounds"][row]
        packets.append(
            Packet(
                injection,
                location=columns["locations"][row],
                state=PacketState.IN_TRANSIT,
                accepted_round=None if accepted < 0 else accepted,
                hops=columns["hops"][row],
            )
        )
    return packets


# ---------------------------------------------------------------------------
# The per-worker engine
# ---------------------------------------------------------------------------


class SegmentSimulator(Simulator):
    """A :class:`Simulator` that owns one contiguous segment of the line.

    Built on the *full* topology (so every algorithm's index structures,
    hierarchy partitions and bound parameters are identical to the
    single-process engine's) but stores packets only for nodes in
    ``[lo, hi]``.  The round loop is driven externally through the
    begin/select/finish superstep methods instead of :meth:`run`.
    """

    def __init__(
        self,
        topology: LineTopology,
        algorithm,
        adversary,
        segment_index: int,
        segments: Sequence[Tuple[int, int]],
        **simulator_kwargs,
    ) -> None:
        super().__init__(topology, algorithm, adversary, **simulator_kwargs)
        self.segment_index = segment_index
        self.segments = list(segments)
        self.lo, self.hi = self.segments[segment_index]
        self._outbox: List[Packet] = []
        #: (injected, staged, occupancy_before) captured by begin_round for
        #: the round record assembled in finish_round.
        self._round_scratch: Tuple[int, int, Optional[Dict[int, int]]] = (0, 0, None)
        self._round_moves: Tuple[int, int] = (0, 0)

    # -- engine hooks ------------------------------------------------------------

    def _place_packet(self, packet: Packet, next_hop: int, round_number: int) -> None:
        if next_hop > self.hi:
            # Ownership transfers with the packet: the right neighbour stores
            # it and, in retaining modes, keeps its delivered record too.
            self._outbox.append(packet)
            del self.packets[packet.packet_id]
        else:
            self.algorithm.on_arrival(packet, next_hop, round_number)

    def _segment_occupancy(self) -> Dict[int, int]:
        occupancy = self.algorithm._occupancy
        return {node: occupancy[node] for node in range(self.lo, self.hi + 1)}

    # -- superstep phases --------------------------------------------------------

    def begin_round(self, round_number: int, *, inject: bool) -> Dict[str, Any]:
        """Injection + ``L^t`` measurement; returns the boundary view."""
        new_packets = self._materialize_injections(round_number, inject=inject)
        staged = self.algorithm.staged_count()
        occupancy_before: Optional[Dict[int, int]] = None
        if self.record_history:
            occupancy_before = self._segment_occupancy()
            if self._bulk_occupancy:
                self._timeline.observe_bulk(self.algorithm.occupancy_array(), staged)
            else:
                self._timeline.observe(occupancy_before, staged)
        else:
            self._timeline.observe_delta(self.algorithm.occupancy_delta(), staged)
        self._round_scratch = (len(new_packets), staged, occupancy_before)
        return {
            "view": self.algorithm.boundary_view(round_number, self.lo, self.hi),
            "staged": staged,
        }

    def select_round(
        self, round_number: int, views: Sequence[Dict[str, Any]], carry: Any
    ) -> Dict[str, Any]:
        """Global selection restricted to this segment, then apply own moves."""
        activations, carry_out = self.algorithm.select_segment_activations(
            round_number, self.segment_index, self.segments, views, carry
        )
        if self.validate_capacity:
            self._validate_activations(activations, round_number)
        self._outbox = []
        forwarded, delivered = self._apply_activations(activations, round_number)
        self._delivered += delivered
        self._round_moves = (forwarded, delivered)
        handoff = encode_handoff(self._outbox)
        self._outbox = []
        return {
            "handoff": handoff,
            "carry": carry_out,
            "forwarded": forwarded,
            "delivered": delivered,
        }

    def finish_round(
        self, round_number: int, handoff_in: Optional[Dict[str, array]]
    ) -> Dict[str, Any]:
        """Ingest the left neighbour's hand-off and close the round."""
        for packet in decode_handoff(handoff_in):
            self.packets[packet.packet_id] = packet
            self.algorithm.on_arrival(packet, packet.location, round_number)
        occupancy_after = (
            self._segment_occupancy() if self.record_history else None
        )
        self.algorithm.on_round_end(round_number)
        if self.record_history:
            injected, staged, occupancy_before = self._round_scratch
            forwarded, delivered = self._round_moves
            self._history.append(
                RoundRecord(
                    round=round_number,
                    injected=injected,
                    forwarded=forwarded,
                    delivered=delivered,
                    max_occupancy=max(occupancy_before.values(), default=0),
                    max_occupancy_after_forwarding=max(
                        occupancy_after.values(), default=0
                    ),
                    staged=staged,
                    occupancy=dict(occupancy_before)
                    if self.record_occupancy_vectors
                    else None,
                )
            )
        self._round = round_number + 1
        return {
            "pending": self._pending(),
            "staged": self.algorithm.staged_count(),
        }


# ---------------------------------------------------------------------------
# Worker wrapper (shared by both transports)
# ---------------------------------------------------------------------------


class _SegmentWorker:
    """Builds one segment's scenario ingredients and dispatches commands."""

    def __init__(
        self,
        spec_payload: Dict[str, Any],
        segment_index: int,
        segments: Sequence[Tuple[int, int]],
    ) -> None:
        from ..api.session import Session
        from ..api.specs import ScenarioSpec
        from ..adversary.segmented import SegmentFilteredAdversary

        spec = ScenarioSpec.from_dict(spec_payload)
        session = Session(cache_topologies=False)
        prepared = session.prepare(spec)
        topology = prepared.topology
        if not isinstance(topology, LineTopology):
            raise UnshardableScenarioError(
                f"sharded execution needs a LineTopology, got "
                f"{type(topology).__name__}; run with shards=1"
            )
        algorithm = prepared.algorithm
        if not algorithm.supports_sharding:
            raise UnshardableScenarioError(
                f"algorithm {algorithm.name!r} has not declared segment-exact "
                f"selection (supports_sharding); run with shards=1"
            )
        lo, hi = segments[segment_index]
        adversary = SegmentFilteredAdversary(prepared.adversary, lo, hi)
        policy = spec.policy
        self.spec = spec
        self.base_adversary = prepared.adversary
        self.simulator = SegmentSimulator(
            topology,
            algorithm,
            adversary,
            segment_index,
            segments,
            record_history=policy.record_history,
            record_occupancy_vectors=policy.record_occupancy_vectors,
            history=policy.history,
            validate_capacity=policy.validate_capacity,
        )

    def init_info(self) -> Dict[str, Any]:
        algorithm = self.simulator.algorithm
        return {
            "horizon": self.base_adversary.horizon,
            "needs_carry": algorithm.sharding_needs_carry,
            "algorithm_name": algorithm.name,
        }

    def dispatch(self, command: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        if command == "begin":
            return self.simulator.begin_round(
                payload["round"], inject=payload["inject"]
            )
        if command == "select":
            return self.simulator.select_round(
                payload["round"], payload["views"], payload["carry"]
            )
        if command == "finish":
            return self.simulator.finish_round(
                payload["round"], payload["handoff"]
            )
        if command == "checkpoint":
            size = self.simulator.save_checkpoint(payload["path"], spec=self.spec)
            return {"bytes": size}
        if command == "result":
            return self._result_payload()
        raise ShardingProtocolError(f"unknown worker command {command!r}")

    def _result_payload(self) -> Dict[str, Any]:
        simulator = self.simulator
        history: List[Tuple] = []
        if simulator.record_history:
            history = [
                (
                    record.round, record.injected, record.forwarded,
                    record.delivered, record.max_occupancy,
                    record.max_occupancy_after_forwarding, record.staged,
                    record.occupancy,
                )
                for record in simulator._history
            ]
        return {
            "round": simulator._round,
            "injected": simulator._injected,
            "delivered": simulator._delivered,
            "latency_sum": simulator._latency_sum,
            "latency_max": simulator._latency_max,
            "pending": simulator._pending(),
            "max_occupancy": simulator._timeline.max_occupancy,
            "max_per_node": simulator._timeline.per_node_maxima(),
            "history": history,
            "algorithm_name": simulator.algorithm.name,
            "algorithm_state": simulator.algorithm.checkpoint_state(),
            "adversary_sigma": getattr(self.base_adversary, "sigma", None),
        }


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


class _LocalHandle:
    """In-process worker: same protocol, no pipes, per-worker id context."""

    def __init__(self, spec_payload, segment_index, segments) -> None:
        self._context = contextvars.copy_context()

        def build() -> _SegmentWorker:
            # Enter a fresh packet-id scope that lives as long as this
            # context does — each in-process worker numbers the full schedule
            # independently, exactly like a worker process would.
            packet_id_scope().__enter__()
            return _SegmentWorker(spec_payload, segment_index, segments)

        self._worker = self._context.run(build)
        self.init_payload = self._worker.init_info()
        self._reply: Optional[Dict[str, Any]] = None

    def send(self, command: str, payload: Dict[str, Any]) -> None:
        self._reply = self._context.run(self._worker.dispatch, command, payload)

    def recv(self) -> Dict[str, Any]:
        reply, self._reply = self._reply, None
        if reply is None:
            raise ShardingProtocolError("recv() before send() on local worker")
        return reply

    def close(self) -> None:
        self._worker = None


def _process_worker_main(connection, spec_payload, segment_index, segments) -> None:
    """Worker-process entry point: build the segment engine, serve commands."""
    try:
        with packet_id_scope():
            worker = _SegmentWorker(spec_payload, segment_index, segments)
            connection.send(("ok", worker.init_info()))
            while True:
                try:
                    message = connection.recv()
                except EOFError:
                    return  # coordinator went away
                command, payload = message
                if command == "close":
                    return
                connection.send(("ok", worker.dispatch(command, payload)))
    except BaseException as error:  # noqa: BLE001 - forwarded to coordinator
        # The pipe is the only channel out of this process; the coordinator's
        # _recv_checked re-raises whatever arrives, so forwarding is not
        # swallowing.  A worker that cannot forward re-raises instead: its
        # nonzero exit code is then reported by _ProcessHandle.close().
        try:
            connection.send(("error", error))
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            # The original exception does not pickle — ship a typed summary.
            try:
                connection.send(
                    ("error", ShardingProtocolError(
                        f"segment {segment_index}: {type(error).__name__}: {error}"
                    ))
                )
            except OSError:
                raise error
        except OSError:
            raise error
    finally:
        connection.close()


class _ProcessHandle:
    """One worker process plus its pipe."""

    def __init__(self, context, spec_payload, segment_index, segments) -> None:
        self.segment_index = segment_index
        self._conn, child_conn = context.Pipe(duplex=True)
        self._process = context.Process(
            target=_process_worker_main,
            args=(child_conn, spec_payload, segment_index, segments),
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self.init_payload = self._recv_checked()

    def send(self, command: str, payload: Dict[str, Any]) -> None:
        try:
            self._conn.send((command, payload))
        except (BrokenPipeError, OSError) as error:
            raise ShardingProtocolError(
                f"segment worker {self.segment_index} is gone: {error}"
            ) from error

    def recv(self) -> Dict[str, Any]:
        return self._recv_checked()

    def _recv_checked(self) -> Dict[str, Any]:
        try:
            status, payload = self._conn.recv()
        except EOFError:
            raise ShardingProtocolError(
                f"segment worker {self.segment_index} died without replying"
            ) from None
        if status == "error":
            if isinstance(payload, BaseException):
                raise payload
            raise ShardingProtocolError(
                f"segment worker {self.segment_index} failed: {payload}"
            )
        return payload

    def close(self) -> Optional[str]:
        """Shut the worker down and report how it went.

        Returns ``None`` on a clean exit, otherwise a diagnostic string.
        Raising here would mask whatever error is already propagating
        through the coordinator's unwind, so the *caller* decides whether a
        dirty shutdown escalates (see ``_ShardedCoordinator._shutdown``).
        """
        problem: Optional[str] = None
        try:
            self._conn.send(("close", {}))
        except OSError as error:
            # Worker hung up first; the exit code below says whether that
            # was a crash or an earlier clean return.
            problem = (
                f"segment worker {self.segment_index} pipe already closed: {error}"
            )
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=10)
            problem = f"segment worker {self.segment_index} had to be terminated"
        elif self._process.exitcode:
            problem = (
                f"segment worker {self.segment_index} exited with code "
                f"{self._process.exitcode}"
            )
        self._conn.close()
        return problem


def _spawn_workers(transport, spec_payload, segments):
    if transport == "local":
        return [
            _LocalHandle(spec_payload, index, segments)
            for index in range(len(segments))
        ]
    methods = multiprocessing.get_all_start_methods()
    # fork is dramatically cheaper than spawn (no interpreter + import replay
    # per worker) and the coordinator is single-threaded at spawn time.
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    handles = []
    try:
        for index in range(len(segments)):
            handles.append(
                _ProcessHandle(context, spec_payload, index, segments)
            )
    except BaseException:
        # A mid-list spawn failure (fd exhaustion, a worker refusing the
        # scenario) must not leak the workers already started.
        for handle in handles:
            handle.close()
        raise
    return handles


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class _ShardedCoordinator:
    """Drives the superstep loop and merges the per-segment results."""

    def __init__(self, spec: "ScenarioSpec", execution: ExecutionPolicy) -> None:
        from ..api.session import build_topology

        topology = build_topology(spec.topology)
        if not isinstance(topology, LineTopology):
            raise UnshardableScenarioError(
                f"sharded execution needs a line topology, got "
                f"{spec.topology.kind!r}; run with shards=1"
            )
        self.spec = spec
        self.execution = execution
        self.num_nodes = topology.num_nodes
        self.segments = plan_segments(self.num_nodes, execution.shards)
        self.handles: List[Any] = []
        self.needs_carry = False
        self.max_staged = 0
        self._executed = 0

    # -- lifecycle ---------------------------------------------------------------

    def run(self) -> Tuple[SimulationResult, Dict[str, Any]]:
        policy = self.spec.policy
        spec_payload = self.spec.to_dict()
        self.handles = _spawn_workers(
            self.execution.transport, spec_payload, self.segments
        )
        try:
            infos = [handle.init_payload for handle in self.handles]
            horizon = infos[0]["horizon"]
            for info in infos[1:]:
                if info["horizon"] != horizon:
                    raise ShardingProtocolError(
                        "segment workers disagree on the adversary horizon"
                    )
            self.needs_carry = any(info["needs_carry"] for info in infos)
            num_rounds = policy.rounds if policy.rounds is not None else horizon

            pending = 0
            staged = 0
            for round_number in range(num_rounds):
                _forwarded, staged, pending = self._superstep(
                    round_number, inject=True
                )
                if (
                    policy.checkpoint_every is not None
                    and (round_number + 1) % policy.checkpoint_every == 0
                ):
                    self._checkpoint(policy.checkpoint_path)
            drained = self._drain(
                num_rounds, pending, staged, policy
            ) if policy.drain else pending == 0
            result, extras = self._collect(drained)
        except BaseException:
            # An error is already propagating — close best-effort and let it
            # through; shutdown diagnostics must not mask the original fault.
            self._shutdown(strict=False)
            raise
        # Success path: a worker that crashed or hung at shutdown invalidates
        # the clean-run claim, so close diagnostics escalate.
        self._shutdown(strict=True)
        return result, extras

    def _shutdown(self, *, strict: bool) -> None:
        problems: List[str] = []
        for handle in self.handles:
            problem = handle.close()
            if problem:
                problems.append(problem)
        if strict and problems:
            raise ShardingProtocolError(
                "worker shutdown failed after a completed run: "
                + "; ".join(problems)
            )

    # -- superstep ----------------------------------------------------------------

    def _broadcast(self, command: str, payload: Dict[str, Any]) -> List[Dict[str, Any]]:
        for handle in self.handles:
            handle.send(command, payload)
        return [handle.recv() for handle in self.handles]

    def _superstep(self, round_number: int, *, inject: bool) -> Tuple[int, int, int]:
        begin = self._broadcast(
            "begin", {"round": round_number, "inject": inject}
        )
        staged_now = sum(reply["staged"] for reply in begin)
        if staged_now > self.max_staged:
            self.max_staged = staged_now
        views = [reply["view"] for reply in begin]

        if self.needs_carry:
            # Selection information flows strictly left-to-right: thread the
            # carry token through the workers in segment order.
            selections = []
            carry = None
            for handle in self.handles:
                handle.send(
                    "select",
                    {"round": round_number, "views": views, "carry": carry},
                )
                reply = handle.recv()
                carry = reply["carry"]
                selections.append(reply)
        else:
            selections = self._broadcast(
                "select", {"round": round_number, "views": views, "carry": None}
            )
        forwarded = sum(reply["forwarded"] for reply in selections)
        if selections[-1]["handoff"] is not None:
            raise ShardingProtocolError(
                "right-most segment produced a hand-off past the line end"
            )

        for index, handle in enumerate(self.handles):
            handoff_in = selections[index - 1]["handoff"] if index > 0 else None
            handle.send(
                "finish", {"round": round_number, "handoff": handoff_in}
            )
        finishes = [handle.recv() for handle in self.handles]
        pending = sum(reply["pending"] for reply in finishes)
        staged_after = sum(reply["staged"] for reply in finishes)
        self._executed = round_number + 1
        return forwarded, staged_after, pending

    # -- drain (mirrors Simulator._drain) ------------------------------------------

    def _drain(self, start_round: int, pending: int, staged: int, policy) -> bool:
        max_drain_rounds = policy.max_drain_rounds
        if max_drain_rounds is None:
            max_drain_rounds = default_max_drain_rounds(self.num_nodes, pending)
        window = quiescence_window(self.num_nodes)
        quiet_rounds = 0
        previous_staged = staged
        round_number = start_round
        rounds_drained = 0
        while pending > 0 and rounds_drained < max_drain_rounds:
            forwarded, staged, pending = self._superstep(
                round_number, inject=False
            )
            round_number += 1
            rounds_drained += 1
            if forwarded == 0 and staged == previous_staged:
                quiet_rounds += 1
                if quiet_rounds >= window:
                    break
            else:
                quiet_rounds = 0
            previous_staged = staged
        return pending == 0

    # -- checkpointing ---------------------------------------------------------------

    def _checkpoint(self, path: str) -> None:
        import os

        from ..checkpoint import load_checkpoint, save_stitched

        segment_paths = [
            f"{path}.seg{index}" for index in range(len(self.handles))
        ]
        for handle, segment_path in zip(self.handles, segment_paths):
            handle.send("checkpoint", {"path": segment_path})
        for handle in self.handles:
            handle.recv()
        save_stitched(
            [load_checkpoint(segment_path) for segment_path in segment_paths],
            path,
            max_staged=self.max_staged,
        )
        # The stitched file is the product; the per-segment snapshots are
        # scaffolding.  Remove them so periodic checkpointing does not k-fold
        # the on-disk footprint (and a later run with fewer shards cannot
        # leave stale higher-index files behind).  Kept only if stitching
        # raised above — then they are the debugging evidence.
        for segment_path in segment_paths:
            try:
                os.unlink(segment_path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    # -- result merge -----------------------------------------------------------------

    def _collect(self, drained: bool) -> Tuple[SimulationResult, Dict[str, Any]]:
        replies = self._broadcast("result", {})
        for reply in replies:
            if reply["round"] != self._executed:
                raise ShardingProtocolError(
                    f"segment engines disagree on the round counter: "
                    f"{reply['round']} != {self._executed}"
                )
        injected = sum(reply["injected"] for reply in replies)
        delivered = sum(reply["delivered"] for reply in replies)
        latency_sum = sum(reply["latency_sum"] for reply in replies)
        latency_maxima = [
            reply["latency_max"] for reply in replies
            if reply["latency_max"] is not None
        ]
        max_per_node: Dict[int, int] = {}
        for reply in replies:
            max_per_node.update(reply["max_per_node"])

        history: List[RoundRecord] = []
        lengths = {len(reply["history"]) for reply in replies}
        if len(lengths) != 1:
            raise ShardingProtocolError(
                f"segment histories disagree on length: {sorted(lengths)}"
            )
        if lengths != {0}:
            for rows in zip(*(reply["history"] for reply in replies)):
                occupancy: Optional[Dict[int, int]] = None
                if any(row[7] is not None for row in rows):
                    occupancy = {}
                    for row in rows:
                        occupancy.update(row[7] or {})
                history.append(
                    RoundRecord(
                        round=rows[0][0],
                        injected=sum(row[1] for row in rows),
                        forwarded=sum(row[2] for row in rows),
                        delivered=sum(row[3] for row in rows),
                        max_occupancy=max(row[4] for row in rows),
                        max_occupancy_after_forwarding=max(row[5] for row in rows),
                        staged=sum(row[6] for row in rows),
                        occupancy=occupancy,
                    )
                )

        result = SimulationResult(
            algorithm=replies[0]["algorithm_name"],
            num_nodes=self.num_nodes,
            rounds_executed=self._executed,
            max_occupancy=max(reply["max_occupancy"] for reply in replies),
            max_occupancy_per_node=max_per_node,
            max_staged=self.max_staged,
            packets_injected=injected,
            packets_delivered=delivered,
            packets_undelivered=injected - delivered,
            max_latency=max(latency_maxima) if latency_maxima else None,
            mean_latency=(latency_sum / delivered) if delivered else None,
            drained=drained,
            history=history,
        )
        extras = {
            "algorithm_states": [reply["algorithm_state"] for reply in replies],
            "adversary_sigma": replies[0]["adversary_sigma"],
            "segments": list(self.segments),
        }
        return result, extras


def run_sharded(
    spec: "ScenarioSpec",
    *,
    shards: Optional[int] = None,
    transport: str = "processes",
) -> Tuple[SimulationResult, Dict[str, Any]]:
    """Execute ``spec`` sharded across segment workers.

    ``shards`` defaults to the spec's ``policy.shards``.  Returns the merged
    :class:`SimulationResult` — bit-identical to the ``shards=1`` run — plus
    an extras mapping (per-segment algorithm states for bound folding, the
    adversary's declared sigma, and the segment plan).
    """
    if shards is None:
        shards = spec.policy.shards
    if not shards or shards < 1:
        raise UnshardableScenarioError(
            f"run_sharded() needs shards >= 1, got {shards!r}"
        )
    execution = ExecutionPolicy(shards=shards, transport=transport)
    return _ShardedCoordinator(spec, execution).run()
