"""Network topologies: directed paths ("lines") and directed in-trees.

The paper mostly works on the directed path ``0 -> 1 -> ... -> n-1``
(Section 2) and extends the algorithms to directed trees whose edges all
point toward the root (Appendix B.2).  Both topologies expose the same small
interface used by the simulator and the forwarding algorithms:

* ``nodes`` / ``edges``             — vertex and edge sets,
* ``next_hop(v)``                   — the unique out-neighbour of ``v``,
* ``path(u, w)``                    — the node sequence from ``u`` to ``w``,
* ``path_contains(u, w, v)``        — whether ``v`` lies on ``Path(u, w)``,
* ``is_upstream(u, v)``             — the partial order ``u \\preceq v``.

Trees are backed by :mod:`networkx` so random tree generation and drawing are
easy, but the hot-path queries (``next_hop``, ``path_contains``) are answered
from precomputed parent pointers and depths, not graph traversals.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..api.registry import register_topology
from .errors import TopologyError

__all__ = [
    "Topology",
    "LineTopology",
    "TreeTopology",
    "random_tree",
    "caterpillar_tree",
    "star_tree",
    "binary_tree",
    "build_tree_topology",
]

Edge = Tuple[int, int]


class Topology(ABC):
    """Abstract base class for the directed topologies supported by the paper."""

    #: Human-readable name used in experiment tables.
    kind: str = "abstract"

    @property
    @abstractmethod
    def nodes(self) -> Sequence[int]:
        """All node identifiers."""

    @property
    @abstractmethod
    def edges(self) -> Sequence[Edge]:
        """All directed edges ``(u, v)`` with ``v`` the out-neighbour of ``u``."""

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    @abstractmethod
    def next_hop(self, node: int) -> Optional[int]:
        """The unique out-neighbour of ``node``, or ``None`` for a sink."""

    def next_hop_table(self) -> Dict[int, Optional[int]]:
        """Precomputed ``node -> next_hop(node)`` map for the whole topology.

        Built once and cached; the simulator consults this on every forwarded
        packet instead of paying per-call bounds checks.  Topologies are
        immutable after construction, so the cache never goes stale.
        """
        table = getattr(self, "_next_hop_table", None)
        if table is None:
            table = {node: self.next_hop(node) for node in self.nodes}
            self._next_hop_table = table
        return table

    @abstractmethod
    def path(self, source: int, destination: int) -> List[int]:
        """The node sequence of ``Path(source, destination)`` (inclusive)."""

    @abstractmethod
    def path_contains(self, source: int, destination: int, buffer: int) -> bool:
        """Whether ``buffer`` lies on ``Path(source, destination)``.

        Matches the paper's ``N_T(v)`` accounting: a packet injected at
        ``source`` with destination ``destination`` "crosses" every buffer
        ``v`` on its path, *excluding* the destination itself (the packet is
        absorbed there and never occupies that buffer).
        """

    @abstractmethod
    def validate_route(self, source: int, destination: int) -> None:
        """Raise :class:`TopologyError` if no directed route exists."""

    def distance(self, source: int, destination: int) -> int:
        """Number of edges on ``Path(source, destination)``."""
        return len(self.path(source, destination)) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.num_nodes})"


@register_topology("line")
class LineTopology(Topology):
    """The directed path ``0 -> 1 -> ... -> n-1`` used throughout the paper.

    Packets always travel left-to-right.  A destination may be any node index
    in ``1 .. n`` — the value ``n`` is permitted as a *virtual sink* beyond the
    last buffer, matching the Section 5 lower-bound construction where type-1
    packets have destination ``n``.

    Parameters
    ----------
    num_nodes:
        Number of buffers ``n``.  Buffers are indexed ``0 .. n-1``.
    allow_virtual_sink:
        When ``True`` (default), destination ``n`` is accepted and modelled as
        an absorbing sink immediately to the right of buffer ``n-1``.
    """

    kind = "line"

    def __init__(self, num_nodes: int, *, allow_virtual_sink: bool = True) -> None:
        if num_nodes < 2:
            raise TopologyError(f"a line needs at least 2 nodes, got {num_nodes}")
        self._num_nodes = num_nodes
        self.allow_virtual_sink = allow_virtual_sink
        # The node set is a range (O(1) memory however long the line); the
        # edge list is materialised lazily — a million-node simulation never
        # asks for it, only drawing/analysis code does.
        self._nodes = range(num_nodes)
        self._edges: Optional[List[Edge]] = None

    # -- Topology interface ----------------------------------------------------

    @property
    def nodes(self) -> Sequence[int]:
        return self._nodes

    @property
    def edges(self) -> Sequence[Edge]:
        if self._edges is None:
            self._edges = [(i, i + 1) for i in range(self._num_nodes - 1)]
        return self._edges

    @property
    def num_edges(self) -> int:
        return self._num_nodes - 1

    def next_hop(self, node: int) -> Optional[int]:
        self._check_node(node)
        if node == self._num_nodes - 1:
            return self._num_nodes if self.allow_virtual_sink else None
        return node + 1

    def path(self, source: int, destination: int) -> List[int]:
        self.validate_route(source, destination)
        return list(range(source, destination + 1))

    def path_contains(self, source: int, destination: int, buffer: int) -> bool:
        # A packet occupies buffers source .. destination - 1; it is absorbed
        # at the destination, so the destination buffer is not "crossed".
        return source <= buffer < destination

    def validate_route(self, source: int, destination: int) -> None:
        self._check_node(source)
        max_dest = self._num_nodes if self.allow_virtual_sink else self._num_nodes - 1
        if not (0 <= destination <= max_dest):
            raise TopologyError(
                f"destination {destination} outside [0, {max_dest}]"
            )
        if destination <= source:
            raise TopologyError(
                f"no directed route from {source} to {destination} on a line"
            )

    # -- line-specific helpers ---------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise TopologyError(f"node {node} outside [0, {self._num_nodes - 1}]")

    def buffers_crossed(self, source: int, destination: int) -> range:
        """The buffers a packet with this route occupies at some point."""
        self.validate_route(source, destination)
        return range(source, destination)

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` (for drawing / analysis)."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges)
        return graph


class TreeTopology(Topology):
    """A directed in-tree: every edge points toward the root (Appendix B.2).

    Parameters
    ----------
    parent:
        Mapping from each non-root node to its parent.  Exactly one node must
        be absent from the mapping (or map to ``None``): the root.

    Notes
    -----
    The orientation of edges toward the root induces the partial order
    ``u \\preceq v`` iff ``v`` is on the unique path from ``u`` to the root
    (Appendix B.2).  Leaves are minimal, the root is maximal.
    """

    kind = "tree"

    def __init__(self, parent: Dict[int, Optional[int]]) -> None:
        cleaned = {child: p for child, p in parent.items() if p is not None}
        explicit_roots = {child for child, p in parent.items() if p is None}
        all_nodes = set(cleaned) | set(cleaned.values()) | explicit_roots
        roots = (all_nodes - set(cleaned)) | explicit_roots
        if len(roots) != 1:
            raise TopologyError(
                f"a directed tree must have exactly one root, found {sorted(roots)}"
            )
        self.root = next(iter(roots))
        self._parent: Dict[int, Optional[int]] = dict(cleaned)
        self._parent[self.root] = None
        self._nodes = sorted(all_nodes)
        self._node_set = set(self._nodes)
        self._edges = [(child, p) for child, p in sorted(cleaned.items())]
        self._children: Dict[int, List[int]] = {v: [] for v in self._nodes}
        for child, p in cleaned.items():
            self._children[p].append(child)
        self._depth = self._compute_depths()
        self._validate_acyclic()

    # -- construction helpers ----------------------------------------------------

    def _compute_depths(self) -> Dict[int, int]:
        depth = {self.root: 0}
        frontier = [self.root]
        while frontier:
            node = frontier.pop()
            for child in self._children[node]:
                depth[child] = depth[node] + 1
                frontier.append(child)
        return depth

    def _validate_acyclic(self) -> None:
        if len(self._depth) != len(self._nodes):
            unreachable = sorted(self._node_set - set(self._depth))
            raise TopologyError(
                f"parent map contains a cycle or disconnected nodes: {unreachable}"
            )

    # -- Topology interface ----------------------------------------------------

    @property
    def nodes(self) -> Sequence[int]:
        return self._nodes

    @property
    def edges(self) -> Sequence[Edge]:
        return self._edges

    def next_hop(self, node: int) -> Optional[int]:
        self._check_node(node)
        return self._parent[node]

    def path(self, source: int, destination: int) -> List[int]:
        self.validate_route(source, destination)
        result = [source]
        node = source
        while node != destination:
            node = self._parent[node]  # type: ignore[assignment]
            result.append(node)
        return result

    def path_contains(self, source: int, destination: int, buffer: int) -> bool:
        if buffer == destination:
            return False
        if not self.is_upstream(source, buffer):
            return False
        return self.is_upstream(buffer, destination)

    def validate_route(self, source: int, destination: int) -> None:
        self._check_node(source)
        self._check_node(destination)
        if source == destination or not self.is_upstream(source, destination):
            raise TopologyError(
                f"no directed route from {source} to {destination} "
                f"(destination must be a strict ancestor of the source)"
            )

    # -- tree-specific helpers ----------------------------------------------------

    def _check_node(self, node: int) -> None:
        if node not in self._node_set:
            raise TopologyError(f"node {node} is not in the tree")

    def parent(self, node: int) -> Optional[int]:
        """The parent of ``node`` (``None`` for the root)."""
        self._check_node(node)
        return self._parent[node]

    def children(self, node: int) -> List[int]:
        """The children of ``node`` (nodes whose edges point into ``node``)."""
        self._check_node(node)
        return list(self._children[node])

    def depth(self, node: int) -> int:
        """Distance from ``node`` to the root."""
        self._check_node(node)
        return self._depth[node]

    @property
    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth.values())

    def leaves(self) -> List[int]:
        """Nodes with no children."""
        return [v for v in self._nodes if not self._children[v]]

    def is_upstream(self, u: int, v: int) -> bool:
        """The partial order ``u \\preceq v``: is ``v`` on the path from ``u`` to root?"""
        self._check_node(u)
        self._check_node(v)
        node: Optional[int] = u
        while node is not None:
            if node == v:
                return True
            node = self._parent[node]
        return False

    def subtree(self, v: int) -> List[int]:
        """All nodes ``u`` with ``u \\preceq v`` (the subtree rooted at ``v``)."""
        self._check_node(v)
        result = []
        frontier = [v]
        while frontier:
            node = frontier.pop()
            result.append(node)
            frontier.extend(self._children[node])
        return sorted(result)

    def leaf_root_paths(self) -> List[List[int]]:
        """Every leaf-to-root path (used to compute the destination depth d')."""
        return [self.path(leaf, self.root) for leaf in self.leaves()]

    def destination_depth(self, destinations: Iterable[int]) -> int:
        """``d'``: the maximum number of destinations on any leaf-root path.

        Proposition 3.5 bounds the tree-PPTS buffer usage by ``1 + d' + sigma``.
        """
        destination_set = set(destinations)
        for w in destination_set:
            self._check_node(w)
        best = 0
        for path in self.leaf_root_paths():
            count = sum(1 for v in path if v in destination_set)
            best = max(best, count)
        return best

    def to_networkx(self) -> nx.DiGraph:
        """Export as a :class:`networkx.DiGraph` with edges toward the root."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph) -> "TreeTopology":
        """Build from a DiGraph whose edges already point toward the root."""
        parent: Dict[int, Optional[int]] = {}
        for u, v in graph.edges:
            if u in parent:
                raise TopologyError(f"node {u} has more than one outgoing edge")
            parent[u] = v
        for node in graph.nodes:
            parent.setdefault(node, None)
        return cls(parent)


# ---------------------------------------------------------------------------
# Tree generators used by tests, examples and the E3 benchmark.
# ---------------------------------------------------------------------------


def random_tree(num_nodes: int, seed: Optional[int] = None) -> TreeTopology:
    """A uniformly random labelled in-tree on ``num_nodes`` nodes rooted at 0.

    Each node ``v > 0`` picks a parent uniformly among nodes with a smaller
    label, which yields a random recursive tree — a standard easy-to-reason
    random tree family whose expected height is Theta(log n).
    """
    if num_nodes < 1:
        raise TopologyError("a tree needs at least 1 node")
    rng = random.Random(seed)
    parent: Dict[int, Optional[int]] = {0: None}
    for v in range(1, num_nodes):
        parent[v] = rng.randrange(v)
    return TreeTopology(parent)


def caterpillar_tree(spine_length: int, legs_per_node: int = 1) -> TreeTopology:
    """A caterpillar: a path (spine) toward the root with leaves attached.

    Caterpillars are the worst case for the destination-depth parameter ``d'``
    because every spine node can be a destination on a single leaf-root path.
    """
    if spine_length < 1:
        raise TopologyError("spine_length must be >= 1")
    if legs_per_node < 0:
        raise TopologyError("legs_per_node must be >= 0")
    parent: Dict[int, Optional[int]] = {0: None}
    next_id = 1
    spine = [0]
    for _ in range(spine_length - 1):
        parent[next_id] = spine[-1]
        spine.append(next_id)
        next_id += 1
    for spine_node in spine:
        for _ in range(legs_per_node):
            parent[next_id] = spine_node
            next_id += 1
    return TreeTopology(parent)


def star_tree(num_leaves: int) -> TreeTopology:
    """A star: ``num_leaves`` leaves all pointing at the root 0.

    The star is the best case for ``d'`` (at most 1 destination per leaf-root
    path besides the root) and a stress test for fan-in at the root.
    """
    if num_leaves < 1:
        raise TopologyError("a star needs at least 1 leaf")
    parent: Dict[int, Optional[int]] = {0: None}
    for leaf in range(1, num_leaves + 1):
        parent[leaf] = 0
    return TreeTopology(parent)


@register_topology("tree")
def build_tree_topology(family: str = "caterpillar", **params) -> TreeTopology:
    """Registry entry point for trees: build a named family from spec params.

    Families and their params:

    * ``"caterpillar"`` — ``spine_length``, ``legs_per_node``;
    * ``"star"``        — ``num_leaves``;
    * ``"binary"``      — ``depth``;
    * ``"random"``      — ``num_nodes``, ``seed``;
    * ``"parent"``      — ``parent``: an explicit child -> parent mapping
      (string keys from JSON are coerced to ints; the root maps to ``None``).
    """
    builders = {
        "caterpillar": caterpillar_tree,
        "star": star_tree,
        "binary": binary_tree,
        "random": random_tree,
    }
    if family in builders:
        return builders[family](**params)
    if family == "parent":
        try:
            parent_map = params.pop("parent")
        except KeyError:
            raise TopologyError('tree family "parent" needs a "parent" mapping') from None
        if params:
            raise TopologyError(
                f'unexpected params {sorted(params)} for tree family "parent"'
            )
        return TreeTopology(
            {int(child): (None if p is None else int(p)) for child, p in parent_map.items()}
        )
    raise TopologyError(
        f"unknown tree family {family!r}; expected one of "
        f"{sorted(builders) + ['parent']}"
    )


def binary_tree(depth: int) -> TreeTopology:
    """A complete binary in-tree of the given depth rooted at node 0.

    Node ``i`` has children ``2i + 1`` and ``2i + 2`` (heap layout), and all
    edges point from children toward parents.
    """
    if depth < 0:
        raise TopologyError("depth must be >= 0")
    num_nodes = 2 ** (depth + 1) - 1
    parent: Dict[int, Optional[int]] = {0: None}
    for v in range(1, num_nodes):
        parent[v] = (v - 1) // 2
    return TreeTopology(parent)
