"""The synchronous AQT simulation engine.

Each round consists of an injection step and a forwarding step (Section 2):

1. **Injection.**  The adversary's packets for this round are materialised and
   handed to the forwarding algorithm (which stores or stages them).
2. **Measurement.**  The configuration ``L^t`` — occupancy after injection,
   before forwarding — is recorded.  This is the quantity every bound in the
   paper refers to.
3. **Forwarding.**  The algorithm's activation set is validated against the
   capacity constraint (one packet per edge per round) and executed
   *simultaneously*: all activated packets are popped first, then placed at
   their next hops, so a packet cannot traverse two edges in one round.
4. **Post-measurement.**  ``L^{t+}`` is recorded and end-of-round hooks run.

After the adversary's horizon, the simulator keeps running ("drain rounds")
until every packet is delivered or a safety cap is reached, so latency and
delivery statistics are complete.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from ..core.packet import Packet, PacketStore
from ..core.scheduler import Activation, ForwardingAlgorithm
from ..network.errors import CapacityViolationError, ConfigurationError, SchedulingError
from ..network.topology import Topology
from .events import HistoryPolicy, OccupancyTimeline, RoundRecord, SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, typing only
    from ..adversary.base import Adversary

__all__ = [
    "HistoryPolicy",
    "Simulator",
    "run_simulation",
    "default_max_drain_rounds",
    "quiescence_window",
]


def default_max_drain_rounds(num_nodes: int, pending: int) -> int:
    """Safety cap on drain rounds when the caller does not pass one.

    Every packet needs at most ``num_nodes`` hops and at most one packet
    leaves each buffer per round, so ``pending * n`` is a safe cap even for
    very lazy algorithms; slack added for phase-based algorithms.  Shared by
    the single-process drain loop and the sharded coordinator — the two must
    agree bit for bit on how long a drain may run.
    """
    return (pending + 1) * (num_nodes + 2) + 64


def quiescence_window(num_nodes: int) -> int:
    """Consecutive no-progress rounds before a drain declares a fixed point.

    The paper's algorithms are not work-conserving: a configuration with no
    bad (pseudo-)buffer never changes once injections stop.  Shared with the
    sharded coordinator for the same bit-identity reason as the drain cap.
    """
    return 2 * num_nodes + 8


class Simulator:
    """Drives one forwarding algorithm against one adversary on one topology.

    Parameters
    ----------
    topology:
        The network (a :class:`~repro.network.topology.LineTopology` or
        :class:`~repro.network.topology.TreeTopology`).
    algorithm:
        The forwarding algorithm under test; it owns the buffers.
    adversary:
        The injection process.
    record_history:
        When ``True``, keep a per-round :class:`RoundRecord` list in the
        result (memory grows linearly with the execution length).  Shorthand
        for ``history=HistoryPolicy.FULL``.
    record_occupancy_vectors:
        When ``True`` (implies ``record_history``), each round record also
        stores the full per-node occupancy vector.
    history:
        The retention policy (:class:`HistoryPolicy` or its string value);
        ``None`` derives ``FULL`` or ``SUMMARY`` from the two flags above.
        ``STREAMING`` releases packets at delivery and logs injections into
        a compact :class:`~repro.core.packet.PacketStore` instead, so a run's
        footprint is O(packets in flight) rather than O(packets injected).
    validate_capacity:
        When ``True`` (default), raise on any activation set that would push
        two packets over one edge or forward from an empty pseudo-buffer.
        The paper proves PPTS/HPTS activations are always feasible
        (Lemmas B.1 and 4.7); the tests rely on this flag to check that.
    """

    def __init__(
        self,
        topology: Topology,
        algorithm: ForwardingAlgorithm,
        adversary: "Adversary",
        *,
        record_history: bool = False,
        record_occupancy_vectors: bool = False,
        history: Optional[Union[HistoryPolicy, str]] = None,
        validate_capacity: bool = True,
    ) -> None:
        self.topology = topology
        self.algorithm = algorithm
        self.adversary = adversary
        if history is None:
            policy = (
                HistoryPolicy.FULL
                if (record_history or record_occupancy_vectors)
                else HistoryPolicy.SUMMARY
            )
        else:
            policy = HistoryPolicy.coerce(history)
            if (record_history or record_occupancy_vectors) and policy is not HistoryPolicy.FULL:
                raise ConfigurationError(
                    f"record_history/record_occupancy_vectors require "
                    f"history='full', got history={policy.value!r}"
                )
        self.history_policy = policy
        self.record_history = policy is HistoryPolicy.FULL
        self.record_occupancy_vectors = record_occupancy_vectors
        self.validate_capacity = validate_capacity
        #: Whether delivered packets stay reachable after the run (FULL and
        #: SUMMARY).  Under STREAMING, :attr:`packets` holds in-flight packets
        #: only and :attr:`packet_store` keeps the compact injection log.
        self.retain_packets = policy is not HistoryPolicy.STREAMING
        #: Every packet the simulator is tracking, keyed by packet id: all
        #: packets ever created when :attr:`retain_packets`, else only the
        #: undelivered ones.
        self.packets: Dict[int, Packet] = {}
        #: Columnar ``(round, source, destination, packet_id)`` log of every
        #: injection (streaming runs only; ``None`` otherwise).
        self.packet_store: Optional[PacketStore] = (
            PacketStore() if policy is HistoryPolicy.STREAMING else None
        )
        #: Bulk-snapshot mode: occupancy-vector runs on contiguous node ids
        #: fold a dense per-round load vector into a dense maxima vector
        #: (numpy when available) instead of walking a dict of n entries.
        nodes = topology.nodes
        self._bulk_occupancy = record_occupancy_vectors and (
            isinstance(nodes, range) and nodes == range(topology.num_nodes)
        )
        if self._bulk_occupancy:
            self._timeline = OccupancyTimeline(dense_size=topology.num_nodes)
            algorithm.enable_dense_occupancy()
        else:
            self._timeline = OccupancyTimeline()
        self._history: List[RoundRecord] = []
        self._round = 0
        self._injected = 0
        self._delivered = 0
        #: Latency aggregates folded in at delivery time, so building the
        #: result does not re-walk every packet ever injected.
        self._latency_sum = 0
        self._latency_max: Optional[int] = None
        #: Precomputed next-hop table consulted on every forwarded packet.
        self._next_hop = topology.next_hop_table()

    # -- public API --------------------------------------------------------------

    def run(
        self,
        num_rounds: Optional[int] = None,
        *,
        drain: bool = True,
        max_drain_rounds: Optional[int] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        checkpoint_spec: Optional[object] = None,
    ) -> SimulationResult:
        """Execute the simulation and return a :class:`SimulationResult`.

        Parameters
        ----------
        num_rounds:
            How many injection rounds to run *in total* (an absolute round
            count, not an increment).  Defaults to the adversary's horizon.
            A simulator restored from a checkpoint continues from its saved
            round, so ``run(T)`` on it executes only the remaining rounds.
        drain:
            Keep executing (with no further injections) after ``num_rounds``
            until all packets are delivered.
        max_drain_rounds:
            Safety cap on drain rounds; defaults to a generous function of the
            network size and the number of pending packets.
        checkpoint_every:
            Write a checkpoint to ``checkpoint_path`` after every this-many
            injection rounds (atomically overwriting the previous snapshot).
        checkpoint_path:
            Where the periodic checkpoints go; required with
            ``checkpoint_every``.
        checkpoint_spec:
            Optional :class:`~repro.api.specs.ScenarioSpec` embedded into the
            periodic checkpoints so ``Session.resume`` can rebuild the run.
        """
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ConfigurationError(
                    "checkpoint_every requires a checkpoint_path"
                )
        horizon = num_rounds if num_rounds is not None else self.adversary.horizon
        for t in range(self._round, horizon):
            self._execute_round(t, inject=True)
            if checkpoint_every is not None and (t + 1) % checkpoint_every == 0:
                self.save_checkpoint(checkpoint_path, spec=checkpoint_spec)
        drained = True
        if drain:
            drained = self._drain(max(horizon, self._round), max_drain_rounds)
        else:
            drained = self._pending() == 0
        return self._build_result(drained)

    def save_checkpoint(self, path: str, *, spec: Optional[object] = None) -> int:
        """Snapshot the engine to ``path`` (see :mod:`repro.checkpoint`).

        Valid at any injection-round boundary; returns the bytes written.
        ``spec`` optionally embeds the originating scenario spec so the file
        is self-describing for :meth:`repro.api.session.Session.resume`.
        """
        from ..checkpoint import save_checkpoint

        return save_checkpoint(self, path, spec=spec)

    @classmethod
    def from_checkpoint(
        cls,
        path: str,
        *,
        topology: Topology,
        algorithm: ForwardingAlgorithm,
        adversary: "Adversary",
    ) -> "Simulator":
        """Rebuild a mid-flight simulator from a checkpoint file.

        ``topology``/``algorithm``/``adversary`` must be freshly constructed
        (never run) and structurally identical to the checkpointed scenario's;
        run policy flags (history retention, capacity validation) are taken
        from the snapshot itself.  Calling :meth:`run` afterwards continues
        the execution bit-identically from the saved round.
        """
        from ..checkpoint import load_checkpoint, restore_simulator

        return restore_simulator(
            load_checkpoint(path), topology, algorithm, adversary
        )

    # -- round mechanics --------------------------------------------------------

    def _materialize_injections(self, round_number: int, *, inject: bool) -> List[Packet]:
        """The injection step: ask the adversary, create and store packets."""
        if not inject:
            injections = []
        elif getattr(self.adversary, "adaptive", False):
            # Adaptive adversaries (repro.adversary.adaptive) observe the
            # configuration left by the previous round before injecting.
            injections = self.adversary.adaptive_injections(
                round_number, self.algorithm.occupancy_vector()
            )
        else:
            injections = self.adversary.injections_for_round(round_number)
        new_packets: List[Packet] = []
        store = self.packet_store
        for injection in injections:
            self.topology.validate_route(injection.source, injection.destination)
            packet = Packet.from_injection(injection)
            self.packets[injection.packet_id] = packet
            if store is not None:
                store.append_injection(injection)
            new_packets.append(packet)
        self._injected += len(new_packets)
        self.algorithm.on_inject(round_number, new_packets)
        return new_packets

    def _measure_before_forwarding(self, staged: int) -> Optional[Dict[int, int]]:
        """Record ``L^t`` (after injection, before forwarding).

        Returns the full occupancy snapshot when per-round history is being
        recorded (the round record needs it anyway), ``None`` otherwise.
        """
        if self.record_history:
            occupancy_before = self.algorithm.occupancy_vector()
            if self._bulk_occupancy:
                self._timeline.observe_bulk(self.algorithm.occupancy_array(), staged)
            else:
                self._timeline.observe(occupancy_before, staged)
            return occupancy_before
        self._timeline.observe_delta(self.algorithm.occupancy_delta(), staged)
        return None

    def _execute_round(self, round_number: int, *, inject: bool) -> int:
        new_packets = self._materialize_injections(round_number, inject=inject)

        # L^t: after injection, before forwarding.  The hot path folds only
        # the nodes whose load changed since the previous measurement into
        # the running maxima; full snapshots are taken only when per-round
        # history is requested (which needs them anyway).
        staged = self.algorithm.staged_count()
        occupancy_before = self._measure_before_forwarding(staged)

        activations = self.algorithm.select_activations(round_number)
        if self.validate_capacity:
            self._validate_activations(activations, round_number)
        forwarded, delivered = self._apply_activations(activations, round_number)
        self._delivered += delivered

        occupancy_after = (
            self.algorithm.occupancy_vector() if self.record_history else None
        )
        self.algorithm.on_round_end(round_number)

        if self.record_history:
            self._history.append(
                RoundRecord(
                    round=round_number,
                    injected=len(new_packets),
                    forwarded=forwarded,
                    delivered=delivered,
                    max_occupancy=max(occupancy_before.values(), default=0),
                    max_occupancy_after_forwarding=max(
                        occupancy_after.values(), default=0
                    ),
                    staged=staged,
                    occupancy=dict(occupancy_before)
                    if self.record_occupancy_vectors
                    else None,
                )
            )
        self._round = round_number + 1
        return forwarded

    def _validate_activations(
        self, activations: List[Activation], round_number: int
    ) -> None:
        seen_nodes = set()
        for activation in activations:
            node = activation.node
            if node not in self.algorithm.buffers:
                raise SchedulingError(
                    f"round {round_number}: activation names unknown node {node}"
                )
            if node in seen_nodes:
                next_hop = self._next_hop.get(node)
                raise CapacityViolationError(
                    edge=(node, next_hop),
                    round_number=round_number,
                    detail="two pseudo-buffers activated at the same node",
                )
            seen_nodes.add(node)

    def _apply_activations(
        self, activations: List[Activation], round_number: int
    ) -> Tuple[int, int]:
        """Pop all activated packets simultaneously, then place them."""
        moves: List[Tuple[Packet, int]] = []
        for activation in activations:
            node_buffer = self.algorithm.buffers[activation.node]
            pseudo = node_buffer.existing(activation.key)
            if pseudo is None or not pseudo:
                # The paper's wording is "each nonempty activated buffer
                # forwards": an activation of an empty pseudo-buffer is a
                # silent no-op, not an error.
                continue
            if activation.packet is not None:
                pseudo.remove(activation.packet)
                packet = activation.packet
            else:
                packet = pseudo.pop()
            next_hop = self._next_hop.get(activation.node)
            if next_hop is None:
                raise SchedulingError(
                    f"round {round_number}: node {activation.node} has no outgoing edge"
                )
            moves.append((packet, next_hop))

        delivered = 0
        retain = self.retain_packets
        for packet, next_hop in moves:
            packet.advance(next_hop)
            if next_hop == packet.destination:
                packet.deliver(round_number)
                delivered += 1
                latency = round_number - packet.injected_round
                self._latency_sum += latency
                if self._latency_max is None or latency > self._latency_max:
                    self._latency_max = latency
                if not retain:
                    # Streaming: the folded statistics above are the packet's
                    # only remaining trace; release the object.
                    del self.packets[packet.packet_id]
            else:
                self._place_packet(packet, next_hop, round_number)
        return len(moves), delivered

    def _place_packet(self, packet: Packet, next_hop: int, round_number: int) -> None:
        """Hand a forwarded (undelivered) packet to its next-hop buffer.

        The segment engine overrides this: a packet whose next hop lies past
        the segment's right edge joins the outgoing hand-off record instead.
        """
        self.algorithm.on_arrival(packet, next_hop, round_number)

    def _pending(self) -> int:
        return self.algorithm.pending_packets()

    def _drain(self, start_round: int, max_drain_rounds: Optional[int]) -> bool:
        pending = self._pending()
        if max_drain_rounds is None:
            max_drain_rounds = default_max_drain_rounds(
                self.topology.num_nodes, pending
            )
        round_number = start_round
        rounds_drained = 0
        # Detect quiescence (several consecutive rounds with no forwarding
        # and no change in staged packets) and stop early instead of
        # spinning until the cap.
        window = quiescence_window(self.topology.num_nodes)
        quiet_rounds = 0
        previous_staged = self.algorithm.staged_count()
        while self._pending() > 0 and rounds_drained < max_drain_rounds:
            forwarded = self._execute_round(round_number, inject=False)
            round_number += 1
            rounds_drained += 1
            staged = self.algorithm.staged_count()
            if forwarded == 0 and staged == previous_staged:
                quiet_rounds += 1
                if quiet_rounds >= window:
                    break
            else:
                quiet_rounds = 0
            previous_staged = staged
        return self._pending() == 0

    # -- result assembly -----------------------------------------------------------

    def _build_result(self, drained: bool) -> SimulationResult:
        # Latency maxima/sums and the delivered count are folded in at
        # delivery time (latencies are integers, so the running sum is exact
        # and the mean matches a from-scratch recomputation bit for bit).
        delivered = self._delivered
        undelivered = self._injected - delivered
        return SimulationResult(
            algorithm=self.algorithm.name,
            num_nodes=self.topology.num_nodes,
            rounds_executed=self._round,
            max_occupancy=self._timeline.max_occupancy,
            max_occupancy_per_node=self._timeline.per_node_maxima(),
            max_staged=self._timeline.max_staged,
            packets_injected=self._injected,
            packets_delivered=delivered,
            packets_undelivered=undelivered,
            max_latency=self._latency_max,
            mean_latency=(self._latency_sum / delivered) if delivered else None,
            drained=drained,
            history=self._history,
        )


def run_simulation(
    topology: Topology,
    algorithm: ForwardingAlgorithm,
    adversary: "Adversary",
    *,
    num_rounds: Optional[int] = None,
    drain: bool = True,
    record_history: bool = False,
    history: Optional[Union[HistoryPolicy, str]] = None,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`Simulator`.

    This is the function most examples and benchmarks use: build the three
    ingredients, call :func:`run_simulation`, read ``result.max_occupancy``.
    """
    simulator = Simulator(
        topology,
        algorithm,
        adversary,
        record_history=record_history,
        history=history,
    )
    return simulator.run(num_rounds, drain=drain)
