"""Batch×sharded: the flat-array batch kernel driven as a segment engine.

:class:`BatchSegmentSimulator` composes PR 9's fused batch kernel with the
sharded superstep protocol: each worker advances its contiguous segment
``[lo, hi]`` of the line on flat int64 state, and the only cross-segment
facts exchanged per round are (a) a tiny *boundary view* — the prefix's
leftmost/rightmost bad buffer, whether any suffix buffer is bad, the right
neighbour's first load — and (b) at most one columnar packet hand-off per
boundary (the fused scan's carry travels exactly one hop per round, so at
most one row crosses each segment edge each round).

The engine exposes two drive modes over the same per-round internals
(:meth:`_begin` / :meth:`_scan` / :meth:`_ingest` / :meth:`_close`):

* **relay mode** — the classic three-phase superstep
  (:meth:`begin_round` / :meth:`select_round` / :meth:`finish_round`) with
  payload shapes identical to :class:`~repro.network.sharded.SegmentSimulator`,
  so the existing coordinator and both transports drive it unchanged.  This
  is the portable fallback and what the ``"local"`` transport uses.
* **window mode** — :meth:`run_window` free-runs ``k`` rounds, exchanging
  the per-round boundary facts directly with neighbour workers through
  :class:`~repro.network.shm.BoundaryRing` shared-memory rings instead of
  coordinator pipes.  Rounds pipeline along the line as a wavefront: worker
  ``i`` can be scanning round ``t`` while worker ``i+1`` is still finishing
  ``t-1`` — there is no global barrier inside a window.

Equivalence to the single-process fused scan (the differential suite in
``tests/test_batch_sharded_differential.py`` proves it bit for bit):

* decisions read pristine pre-round loads only — the global scan never
  modifies ``occ[v]`` before reaching ``v``, so a segment scanning
  ``[lo, hi]`` with the prefix facts above reproduces exactly the global
  scan's behaviour on those nodes;
* the carry crossing a boundary is ingested *after* the receiver's own scan,
  which equals the global pop-before-carry-lands order: the receiver's first
  node pops before the incoming carry lands in both engines, and the
  occupancy/bad-count increments cancel symmetrically;
* drain overshoot is safe to truncate: once a no-injection round forwards
  nothing the configuration is frozen (PTS: no bad buffer ever reappears;
  greedy/downhill/work-conserving PTS: nothing is stored; local: the active
  set stays empty), so rounds past the coordinator's replayed stop rule
  advance only the round counter and are undone by :meth:`truncate_to`.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..adversary.base import InjectionPattern
from ..adversary.segmented import SegmentFilteredAdversary
from .batch import (
    _DOWNHILL,
    _GREEDY,
    _LIVE,
    _LOCAL,
    _POL_FIFO,
    _POL_LIFO,
    _POL_LIS,
    _POL_NTG,
    _POL_SIS,
    _PTS,
    BatchSimulator,
)
from .errors import ShardingProtocolError
from .events import RoundRecord

__all__ = ["BatchSegmentSimulator", "HANDOFF_WORDS"]

#: Columns of a boundary hand-off block, in wire order: packet id, source,
#: destination, injection round, arrival round at the current node.
HANDOFF_WORDS = 5


class BatchSegmentSimulator(BatchSimulator):
    """A :class:`BatchSimulator` that owns one contiguous segment of the line.

    Built on the *full* topology and algorithm (same index structures and
    bound parameters as the single-process engines) with a
    :class:`~repro.adversary.segmented.SegmentFilteredAdversary`, exactly
    like :class:`~repro.network.sharded.SegmentSimulator`; only nodes in
    ``[lo, hi]`` ever hold rows.  The round loop is driven externally —
    through the superstep phases or through :meth:`run_window`.
    """

    __slots__ = ()

    def __init__(
        self,
        topology,
        algorithm,
        adversary,
        segment_index: int,
        segments: Sequence[Tuple[int, int]],
        **batch_kwargs,
    ) -> None:
        super().__init__(topology, algorithm, adversary, **batch_kwargs)
        self.segment_index = segment_index
        self.segments = list(segments)
        self.lo, self.hi = self.segments[segment_index]
        #: (injected, occupancy_before) captured by _begin for _close.
        self._scratch: Tuple[int, Optional[Dict[int, int]]] = (0, None)
        self._moves: Tuple[int, int] = (0, 0)
        #: Flat log of every ingested hand-off, 6 words per entry
        #: (round, pid, src, dst, injr, arr) — the property suite compares
        #: this trace byte-for-byte across transports.
        self._handoff_trace = array("q")
        self._kernel_ready = False
        #: Segment-filtered object-free injection rows (fast path).
        self._seg_fast_rows: Optional[Dict[int, array]] = None
        self._prevalidate_segment_pattern()

    # -- segment-aware pattern pre-validation --------------------------------------

    def _prevalidate_segment_pattern(self) -> None:
        """Re-run the whole-pattern checks through the segment filter.

        The base class's :meth:`_prevalidate_pattern` requires the adversary
        to *be* an eager :class:`InjectionPattern`; the segment wrapper hides
        one behind ``.base``.  Validation runs over the **full** pattern (the
        error surface must match the single-process engines exactly), and the
        fast rows are then filtered to this segment's sources.
        """
        adversary = self.adversary
        if not isinstance(adversary, SegmentFilteredAdversary):
            return
        base = adversary.base
        if type(base) is not InjectionPattern:
            return
        store = base._store
        if not len(store):
            self._routes_prevalidated = True
            self._dests_prevalidated = True
            self._seg_fast_rows = {}
            return
        n = self._n
        max_dest = self._max_dest
        sources = store.sources
        destinations = store.destinations
        np = self._vec
        if np is not None:
            s = np.frombuffer(sources, dtype=np.int64)
            d = np.frombuffer(destinations, dtype=np.int64)
            routes_ok = bool(
                ((s >= 0) & (s < n) & (d > s) & (d <= max_dest)).all()
            )
            dests_ok = bool((d == self._dest).all())
        else:
            routes_ok = all(
                0 <= source < n and source < destination <= max_dest
                for source, destination in zip(sources, destinations)
            )
            dests_ok = all(
                destination == self._dest for destination in destinations
            )
        self._routes_prevalidated = routes_ok
        if self._kind != _GREEDY:
            self._dests_prevalidated = dests_ok
        if routes_ok and (self._kind == _GREEDY or dests_ok):
            lo, hi = self.lo, self.hi
            filtered: Dict[int, array] = {}
            for round_number, rows in base._by_round.items():
                keep = array(
                    "q", [row for row in rows if lo <= sources[row] <= hi]
                )
                if keep:
                    filtered[round_number] = keep
            self._seg_fast_rows = filtered
            self._pat_src = sources
            self._pat_dst = destinations
            self._pat_ids = store.packet_ids

    # -- kernel lifecycle ----------------------------------------------------------

    @property
    def needs_reverse_lane(self) -> bool:
        """Whether window mode needs the right-to-left boundary lane.

        Downhill decisions read the right neighbour's first load; a
        work-conserving PTS segment must know whether *any* suffix buffer is
        bad.  Everything else flows strictly left-to-right.
        """
        return self._kind == _DOWNHILL or (
            self._kind == _PTS and self._work_conserving
        )

    def ensure_kernel(self) -> None:
        """Load the flat kernel from object state exactly once.

        Called after construction (and after a checkpoint restore); later
        :meth:`sync_for_snapshot` projections leave the kernel authoritative,
        matching the single-process ``run()`` loop's sync-and-continue.
        """
        if not self._kernel_ready:
            self._load_kernel()
            self._kernel_ready = True

    def sync_for_snapshot(self) -> None:
        """Project kernel state into the object world at a round boundary."""
        if self._kernel_ready:
            self._sync_objects()

    def _pending(self) -> int:
        if self._kernel_ready:
            return self._stored
        return super()._pending()

    def truncate_to(self, round_number: int) -> None:
        """Rewind drain overshoot: the rounds past ``round_number`` forwarded
        nothing on a frozen configuration (see the module docstring), so only
        the round counter and any full-history records need undoing."""
        self._round = round_number
        if self.record_history:
            history = self._history
            while history and history[-1].round >= round_number:
                history.pop()

    # -- per-round internals (shared by relay phases and window mode) ---------------

    def _begin(
        self, round_number: int, inject: bool
    ) -> Tuple[Dict[str, Any], int]:
        """Injection + ``L^t`` measurement + boundary view.  Returns
        ``(view, injected)`` and stashes the round scratch for _close."""
        injected = 0
        if inject:
            fast = self._seg_fast_rows
            if fast is not None:
                rows_in = fast.get(round_number)
                if rows_in is not None:
                    occ = self._occ
                    queues = self._queues
                    touch = self._touch
                    threshold = self._bad_threshold
                    pat_src = self._pat_src
                    pat_dst = self._pat_dst
                    pat_ids = self._pat_ids
                    append_pid = self._col_pid.append
                    append_src = self._col_src.append
                    append_dst = self._col_dst.append
                    append_injr = self._col_injr.append
                    append_arr = self._col_arr.append
                    append_dlv = self._col_dlv.append
                    row_append = self._row_packet.append
                    packet_store = self.packet_store
                    row = len(self._row_packet)
                    for r in rows_in:
                        source = pat_src[r]
                        append_pid(pat_ids[r])
                        append_src(source)
                        append_dst(pat_dst[r])
                        append_injr(round_number)
                        append_arr(round_number)
                        append_dlv(_LIVE)
                        row_append(None)
                        queues[source].append(row)
                        row += 1
                        load = occ[source] + 1
                        occ[source] = load
                        touch.append(source)
                        if load == threshold:
                            self._num_bad += 1
                    injected = len(rows_in)
                    self._stored += injected
                    self._injected += injected
                    if packet_store is not None:
                        for r in rows_in:
                            packet_store.append(
                                round_number, pat_src[r], pat_dst[r], pat_ids[r]
                            )
            else:
                self._inject_round(round_number)
                injected = self._last_injected
        # Measurement fold (post-injection = L^t, before any forwarding).
        occ = self._occ
        mx = self._mx
        gmax = self._gmax
        occupancy_before: Optional[Dict[int, int]] = None
        if self.record_history:
            occupancy_before = {}
            for node in range(self.lo, self.hi + 1):
                load = occ[node]
                occupancy_before[node] = load
                if load > mx[node]:
                    mx[node] = load
                    if load > gmax:
                        gmax = load
            del self._touch[:]
        else:
            for node in self._touch:
                load = occ[node]
                if load > mx[node]:
                    mx[node] = load
                    if load > gmax:
                        gmax = load
            del self._touch[:]
        self._gmax = gmax
        self._scratch = (injected, occupancy_before)
        # Boundary view.
        kind = self._kind
        num_bad = self._num_bad
        view: Dict[str, Any] = {
            "leftmost_bad": -1,
            "rightmost_bad": -1,
            "any_bad": num_bad > 0,
            "first_load": occ[self.lo],
        }
        if num_bad:
            threshold = self._bad_threshold
            if kind == _PTS:
                node = self.lo
                while occ[node] < threshold:
                    node += 1
                view["leftmost_bad"] = node
            elif kind == _LOCAL:
                node = min(self.hi, self._last)
                while occ[node] < threshold:
                    node -= 1
                view["rightmost_bad"] = node
        return view, injected

    def _scan(
        self,
        round_number: int,
        prefix_leftmost: int,
        prefix_rightmost: int,
        suffix_any_bad: bool,
        right_first_load: int,
    ) -> Tuple[Optional[Tuple[int, int, int, int, int]], int, int]:
        """One fused selection+forwarding pass over ``[lo, hi]``.

        Returns ``(handoff_block, forwarded, delivered)``; the hand-off block
        is the row crossing the right boundary (ownership already
        transferred), or ``None``.
        """
        lo = self.lo
        hi = self.hi
        kind = self._kind
        occ = self._occ
        queues = self._queues
        touch_append = self._touch.append
        lifo = self._lifo
        last = self._last
        threshold = self._bad_threshold
        bad_minus = threshold - 1
        seg_last = hi if hi < last else last
        carry = -1
        forwarded = 0
        delivered = 0
        if self._stored:
            if kind == _PTS:
                if prefix_leftmost >= 0:
                    start = lo
                elif self._num_bad:
                    start = lo
                    while occ[start] < threshold:
                        start += 1
                elif self._work_conserving and not suffix_any_bad:
                    start = lo
                else:
                    start = seg_last + 1  # globally inactive segment
                for v in range(start, seg_last + 1):
                    load = occ[v]
                    if load:
                        queue = queues[v]
                        row = queue.pop() if lifo else queue.popleft()
                        forwarded += 1
                        if carry >= 0:
                            queue.append(carry)
                        else:
                            occ[v] = load - 1
                            if load == threshold:
                                self._num_bad -= 1
                        carry = row
                    elif carry >= 0:
                        queues[v].append(carry)
                        occ[v] = 1
                        touch_append(v)
                        carry = -1
            elif kind == _LOCAL:
                locality = self._locality
                last_bad = (
                    prefix_rightmost
                    if prefix_rightmost >= 0
                    else -locality - 1
                )
                active: List[int] = []
                active_append = active.append
                for v in range(lo, seg_last + 1):
                    load = occ[v]
                    if load >= threshold:
                        last_bad = v
                    if load and last_bad >= v - locality:
                        active_append(v)
                num_active = len(active)
                i = 0
                while i < num_active:
                    v = active[i]
                    queue = queues[v]
                    row = queue.pop() if lifo else queue.popleft()
                    forwarded += 1
                    if carry >= 0:
                        queue.append(carry)
                    else:
                        load = occ[v] - 1
                        occ[v] = load
                        if load == bad_minus:
                            self._num_bad -= 1
                    i += 1
                    if i < num_active and active[i] == v + 1:
                        carry = row
                    else:
                        receiver = v + 1
                        if receiver > last:
                            self._deliver_row(row, round_number)
                            self._delivered += 1
                            self._stored -= 1
                            delivered += 1
                        elif receiver > hi:
                            carry = row  # exits the segment below
                            break
                        else:
                            queues[receiver].append(row)
                            load = occ[receiver] + 1
                            occ[receiver] = load
                            touch_append(receiver)
                            if load == threshold:
                                self._num_bad += 1
                        carry = -1
            elif kind == _DOWNHILL:
                for v in range(lo, seg_last + 1):
                    load = occ[v]
                    if load:
                        if v != seg_last:
                            successor_load = occ[v + 1]
                        elif hi < last:
                            successor_load = right_first_load
                        else:
                            successor_load = 0
                        queue = queues[v]
                        if load >= successor_load:
                            row = queue.pop() if lifo else queue.popleft()
                            forwarded += 1
                            if carry >= 0:
                                queue.append(carry)
                            else:
                                occ[v] = load - 1
                            carry = row
                        elif carry >= 0:
                            queue.append(carry)
                            occ[v] = load + 1
                            touch_append(v)
                            carry = -1
                    elif carry >= 0:
                        queues[v].append(carry)
                        occ[v] = 1
                        touch_append(v)
                        carry = -1
            else:  # _GREEDY
                policy = self._policy_code
                col_pid = self._col_pid
                col_dst = self._col_dst
                col_injr = self._col_injr
                col_arr = self._col_arr
                for v in range(lo, hi + 1):
                    load = occ[v]
                    if load:
                        queue = queues[v]
                        if load == 1:
                            row = queue.popleft()
                        else:
                            best = -1
                            best_k1 = best_k2 = 0
                            for r in queue:
                                if policy == _POL_FIFO:
                                    k1 = col_arr[r]
                                elif policy == _POL_LIFO:
                                    k1 = -col_arr[r]
                                elif policy == _POL_LIS:
                                    k1 = col_injr[r]
                                elif policy == _POL_SIS:
                                    k1 = -col_injr[r]
                                elif policy == _POL_NTG:
                                    k1 = col_dst[r] - v
                                else:  # _POL_FTG
                                    k1 = v - col_dst[r]
                                k2 = col_pid[r]
                                if (
                                    best < 0
                                    or k1 < best_k1
                                    or (k1 == best_k1 and k2 < best_k2)
                                ):
                                    best = r
                                    best_k1 = k1
                                    best_k2 = k2
                            queue.remove(best)
                            row = best
                        forwarded += 1
                        if carry >= 0:
                            if col_dst[carry] == v:
                                self._deliver_row(carry, round_number)
                                self._delivered += 1
                                self._stored -= 1
                                delivered += 1
                                occ[v] = load - 1
                            else:
                                col_arr[carry] = round_number
                                queue.append(carry)
                        else:
                            occ[v] = load - 1
                        carry = row
                    elif carry >= 0:
                        if col_dst[carry] == v:
                            self._deliver_row(carry, round_number)
                            self._delivered += 1
                            self._stored -= 1
                            delivered += 1
                        else:
                            col_arr[carry] = round_number
                            queues[v].append(carry)
                            occ[v] = 1
                            touch_append(v)
                        carry = -1
        # Trailing carry: exits at the segment's right edge.
        handoff: Optional[Tuple[int, int, int, int, int]] = None
        if carry >= 0:
            if kind == _GREEDY:
                exits = (
                    hi >= self._n - 1 or self._col_dst[carry] == hi + 1
                )
            else:
                exits = hi >= last
            if exits:
                self._deliver_row(carry, round_number)
                self._delivered += 1
                self._stored -= 1
                delivered += 1
            else:
                handoff = (
                    self._col_pid[carry],
                    self._col_src[carry],
                    self._col_dst[carry],
                    self._col_injr[carry],
                    self._col_arr[carry],
                )
                packet = self._row_packet[carry]
                if packet is not None:
                    # Ownership transfers with the row: the right neighbour
                    # stores the packet (and keeps its delivered record).
                    del self.packets[packet.packet_id]
                    self._row_packet[carry] = None
                self._col_dlv[carry] = -2  # _SYNCED: row left this segment
                self._stored -= 1
        return handoff, forwarded, delivered

    def _ingest(
        self, round_number: int, block: Optional[Sequence[int]]
    ) -> None:
        """Land the left neighbour's hand-off after the own scan.

        Equivalent to the global scan's carry landing at ``lo`` (the pop ran
        first in both engines; occupancy and bad-count deltas cancel
        symmetrically) — see the module docstring.
        """
        if block is None:
            return
        pid, src, dst, injr, arr = block
        lo = self.lo
        greedy = self._kind == _GREEDY
        row = len(self._row_packet)
        self._col_pid.append(pid)
        self._col_src.append(src)
        self._col_dst.append(dst)
        self._col_injr.append(injr)
        self._col_arr.append(round_number if greedy else arr)
        self._col_dlv.append(_LIVE)
        self._row_packet.append(None)
        self._queues[lo].append(row)
        load = self._occ[lo] + 1
        self._occ[lo] = load
        self._touch.append(lo)
        if self._kind in (_PTS, _LOCAL) and load == self._bad_threshold:
            self._num_bad += 1
        self._stored += 1
        self._handoff_trace.extend(
            (round_number, pid, src, dst, injr, arr)
        )

    def _close(self, round_number: int) -> None:
        """End-of-round bookkeeping (after scan + ingest)."""
        if self.record_history:
            injected, occupancy_before = self._scratch
            forwarded, delivered = self._moves
            occ = self._occ
            max_before = 0
            for load in occupancy_before.values():
                if load > max_before:
                    max_before = load
            max_after = 0
            for node in range(self.lo, self.hi + 1):
                load = occ[node]
                if load > max_after:
                    max_after = load
            self._history.append(
                RoundRecord(
                    round=round_number,
                    injected=injected,
                    forwarded=forwarded,
                    delivered=delivered,
                    max_occupancy=max_before,
                    max_occupancy_after_forwarding=max_after,
                    staged=0,
                    occupancy=dict(occupancy_before)
                    if self.record_occupancy_vectors
                    else None,
                )
            )
        self._round = round_number + 1

    # -- relay mode: SegmentSimulator-shaped superstep phases -----------------------

    def begin_round(self, round_number: int, *, inject: bool) -> Dict[str, Any]:
        self.ensure_kernel()
        view, _injected = self._begin(round_number, inject)
        return {"view": view, "staged": 0}

    def select_round(
        self, round_number: int, views: Sequence[Dict[str, Any]], carry: Any
    ) -> Dict[str, Any]:
        index = self.segment_index
        prefix_leftmost = -1
        prefix_rightmost = -1
        for j in range(index):
            view = views[j]
            if prefix_leftmost < 0 and view["leftmost_bad"] >= 0:
                prefix_leftmost = view["leftmost_bad"]
            if view["rightmost_bad"] >= 0:
                prefix_rightmost = view["rightmost_bad"]
        suffix_any_bad = any(
            views[j]["any_bad"] for j in range(index + 1, len(views))
        )
        right_first_load = (
            views[index + 1]["first_load"]
            if index + 1 < len(views)
            else 0
        )
        block, forwarded, delivered = self._scan(
            round_number, prefix_leftmost, prefix_rightmost,
            suffix_any_bad, right_first_load,
        )
        self._moves = (forwarded, delivered)
        handoff = None if block is None else {"block": array("q", block)}
        return {
            "handoff": handoff,
            "carry": None,
            "forwarded": forwarded,
            "delivered": delivered,
        }

    def finish_round(
        self, round_number: int, handoff_in: Optional[Dict[str, array]]
    ) -> Dict[str, Any]:
        block = tuple(handoff_in["block"]) if handoff_in else None
        self._ingest(round_number, block)
        self._close(round_number)
        return {"pending": self._stored, "staged": 0}

    # -- window mode: free-running rounds over shared-memory rings ------------------

    def run_window(
        self,
        t0: int,
        t1: int,
        *,
        inject: bool,
        left_in=None,
        right_out=None,
        right_in=None,
        left_out=None,
        faults: Optional[Dict[int, Dict[str, Any]]] = None,
        fault_hook=None,
        ring_timeout: float = 60.0,
    ) -> Dict[str, array]:
        """Free-run rounds ``t0 .. t1-1``, exchanging boundary facts directly.

        ``left_in``/``right_out`` carry the left-to-right lane (merged prefix
        view + hand-off); ``right_in``/``left_out`` the right-to-left lane
        (first load / suffix-bad), created only when
        :attr:`needs_reverse_lane`.  Returns per-round ``forwarded`` counts
        and the post-round ``stored`` totals, from which the coordinator
        replays the global drain stop rule exactly.
        """
        self.ensure_kernel()
        kind = self._kind
        chained_suffix = kind == _PTS and self._work_conserving
        trace_forwarded = array("q")
        trace_stored = array("q")
        for round_number in range(t0, t1):
            if faults is not None:
                directive = faults.get(round_number)
                if directive is not None and fault_hook is not None:
                    fault_hook(directive, round_number)
            view, _injected = self._begin(round_number, inject)
            suffix_any_bad = False
            right_first_load = 0
            if self.needs_reverse_lane:
                if chained_suffix:
                    # Suffix facts chain right-to-left: merge the right
                    # neighbour's word before publishing our own.
                    if right_in is not None:
                        slot = right_in.recv_block(timeout=ring_timeout)
                        if slot[0] != round_number:
                            raise ShardingProtocolError(
                                f"reverse-lane block for round {slot[0]} "
                                f"arrived in round {round_number}"
                            )
                        suffix_any_bad = bool(slot[2])
                    if left_out is not None:
                        any_bad = suffix_any_bad or view["any_bad"]
                        left_out.send_block(
                            (round_number, view["first_load"],
                             1 if any_bad else 0),
                            timeout=ring_timeout,
                        )
                else:  # downhill: only the immediate neighbour's first load
                    if left_out is not None:
                        left_out.send_block(
                            (round_number, view["first_load"], 0),
                            timeout=ring_timeout,
                        )
                    if right_in is not None:
                        slot = right_in.recv_block(timeout=ring_timeout)
                        if slot[0] != round_number:
                            raise ShardingProtocolError(
                                f"reverse-lane block for round {slot[0]} "
                                f"arrived in round {round_number}"
                            )
                        right_first_load = slot[1]
            prefix_leftmost = -1
            prefix_rightmost = -1
            block_in: Optional[Tuple[int, ...]] = None
            if left_in is not None:
                slot = left_in.recv_block(timeout=ring_timeout)
                if slot[0] != round_number:
                    raise ShardingProtocolError(
                        f"boundary block for round {slot[0]} arrived in "
                        f"round {round_number}"
                    )
                prefix_leftmost = slot[1]
                prefix_rightmost = slot[2]
                if slot[3]:
                    block_in = tuple(slot[4:4 + HANDOFF_WORDS])
            block_out, forwarded, delivered = self._scan(
                round_number, prefix_leftmost, prefix_rightmost,
                suffix_any_bad, right_first_load,
            )
            self._moves = (forwarded, delivered)
            if right_out is not None:
                out_leftmost = (
                    prefix_leftmost
                    if prefix_leftmost >= 0
                    else view["leftmost_bad"]
                )
                out_rightmost = (
                    view["rightmost_bad"]
                    if view["rightmost_bad"] >= 0
                    else prefix_rightmost
                )
                if block_out is not None:
                    right_out.send_block(
                        (round_number, out_leftmost, out_rightmost, 1)
                        + block_out,
                        timeout=ring_timeout,
                    )
                else:
                    right_out.send_block(
                        (round_number, out_leftmost, out_rightmost, 0),
                        timeout=ring_timeout,
                    )
            elif block_out is not None:
                raise ShardingProtocolError(
                    "right-most segment produced a hand-off past the line end"
                )
            self._ingest(round_number, block_in)
            self._close(round_number)
            trace_forwarded.append(forwarded)
            trace_stored.append(self._stored)
        return {"forwarded": trace_forwarded, "stored": trace_stored}
