"""Locality-limited forwarding on the line (the paper's "open problems" direction).

The paper's algorithms are centralized: PTS needs to locate the globally
left-most bad buffer each round.  Its concluding section highlights
*decentralized (local)* algorithms as the main open problem, pointing at the
line of work [Dobrev et al. 2017; Patt-Shamir & Rosenbaum 2017, 2019] where a
node's forwarding decision may depend only on the buffers within a fixed
radius ``r``, and where ``Theta(rho * ceil(log n / r) + sigma)`` space is
necessary and sufficient for the single-destination line.

This module provides the locality-``r`` *framework* and two concrete rules so
the tradeoff between locality and buffer space can be studied experimentally:

* :class:`LocalThresholdForwarding` — forward whenever some buffer within the
  ``r``-neighbourhood to the left (including the node itself) is bad.  With
  ``r >= n`` this is exactly PTS; with ``r = 0`` each node reacts only to its
  own load.
* :class:`DownhillForwarding` — the classical "forward if my buffer is at
  least as full as my successor's" gradient rule, a fully local (r = 1)
  heuristic included as a baseline.

These are **extensions beyond the paper's published algorithms**: no bound
from the paper is claimed for them (``theoretical_bound`` returns ``None``
except for the ``r >= n`` case, which inherits the PTS bound).  The extension
benchmark ``bench_ext_locality.py`` measures how the achieved occupancy decays
as the locality radius grows.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from ..api.registry import register_algorithm
from ..network.errors import ConfigurationError, SchedulingError
from ..network.topology import LineTopology
from .packet import Packet
from .pseudobuffer import QueueDiscipline
from .scheduler import Activation, ForwardingAlgorithm
from . import bounds

__all__ = ["LocalThresholdForwarding", "DownhillForwarding"]


@register_algorithm("local")
class LocalThresholdForwarding(ForwardingAlgorithm):
    """Single-destination forwarding using only an ``r``-neighbourhood view.

    Each node ``i`` activates (forwards one packet toward the destination) in
    a round iff some buffer ``i'`` with ``i - r <= i' <= i`` currently holds at
    least ``threshold`` packets.  Intuitively a node forwards when there is
    congestion *behind or at* itself that it can help clear; because a node
    never reacts to congestion further than ``r`` away, the rule can be
    implemented with ``r`` rounds of local communication.

    Parameters
    ----------
    topology:
        The line.
    locality:
        The radius ``r >= 0``.  ``locality >= n`` recovers PTS exactly (the
        left-most bad buffer is always within view of every node right of it).
    destination:
        The common destination (defaults to the right end of the line).
    threshold:
        Load at which a buffer counts as congested (the paper's "bad" notion
        corresponds to the default of 2).
    """

    def __init__(
        self,
        topology: LineTopology,
        locality: int,
        destination: Optional[int] = None,
        *,
        threshold: int = 2,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        if locality < 0:
            raise ConfigurationError(f"locality must be >= 0, got {locality}")
        if threshold < 1:
            raise ConfigurationError(f"threshold must be >= 1, got {threshold}")
        # "Bad" for this rule means load >= threshold (2 recovers the paper's
        # badness); the base class's index then makes each node's
        # congestion-window check a single sorted-set lookup instead of an
        # O(r) scan.
        super().__init__(topology, discipline=discipline, bad_threshold=threshold)
        if destination is None:
            destination = topology.num_nodes - 1
        max_destination = (
            topology.num_nodes if topology.allow_virtual_sink else topology.num_nodes - 1
        )
        if not (1 <= destination <= max_destination):
            raise ConfigurationError(
                f"destination {destination} outside [1, {max_destination}]"
            )
        self.locality = locality
        self.threshold = threshold
        self.destination = destination
        self.name = f"Local-r{locality}"

    def classify(self, packet: Packet, node: int) -> Hashable:
        if packet.destination != self.destination:
            raise SchedulingError(
                f"{self.name} is single-destination (w={self.destination}); got a "
                f"packet for {packet.destination}"
            )
        return self.destination

    supports_sharding = True

    def select_activations(self, round_number: int) -> List[Activation]:
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        activations: List[Activation] = []
        for i in self._index.nonempty_in(self.destination, 0, last_buffer):
            window_start = max(0, i - self.locality)
            if self._index.leftmost_bad(self.destination, window_start, i) is not None:
                activations.append(Activation(node=i, key=self.destination))
        return activations

    # -- segment (sharded) selection -----------------------------------------------

    def boundary_view(self, round_number, lo, hi):
        """The segment's right-most congested buffer.

        Node ``i`` activates iff some buffer in ``[i - r, i]`` is congested,
        i.e. iff the right-most congested position at or left of ``i`` is
        within ``r``.  Congestion to the left of a segment is therefore fully
        summarised by one number: the prefix maximum of the per-segment
        right-most congested positions.
        """
        return {"rb": self._index.bad(self.destination).last_in(lo, hi)}

    def select_segment_activations(self, round_number, segment_index, segments,
                                   views, carry):
        lo, hi = segments[segment_index]
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        prefix_rb = None
        for view in views[:segment_index]:
            position = view["rb"]
            if position is not None and (prefix_rb is None or position > prefix_rb):
                prefix_rb = position
        bad = self._index.bad(self.destination)
        activations: List[Activation] = []
        for i in self._index.nonempty_in(self.destination, lo, min(last_buffer, hi)):
            window_start = max(0, i - self.locality)
            congested = bad.first_in(max(window_start, lo), i) is not None or (
                prefix_rb is not None and prefix_rb >= window_start
            )
            if congested:
                activations.append(Activation(node=i, key=self.destination))
        return activations, None

    def theoretical_bound(self, sigma: float) -> Optional[float]:
        """The PTS bound when the view is global; no claimed bound otherwise."""
        if self.locality >= self.topology.num_nodes and self.threshold == 2:
            return bounds.pts_upper_bound(sigma)
        return None


@register_algorithm("downhill")
class DownhillForwarding(ForwardingAlgorithm):
    """The gradient rule: forward iff my buffer is no smaller than my successor's.

    A node looks only at its own load and its immediate successor's load
    (locality 1 in the *downstream* direction) and forwards whenever doing so
    cannot create a larger pile downstream.  This is the natural
    "water-flows-downhill" heuristic; it is work-conserving at the front of
    any backlog and fully local, which makes it a useful reference point for
    the locality experiments.
    """

    name = "Downhill"
    supports_sharding = True

    def __init__(
        self,
        topology: LineTopology,
        destination: Optional[int] = None,
        *,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        if destination is None:
            destination = topology.num_nodes - 1
        self.destination = destination

    def classify(self, packet: Packet, node: int) -> Hashable:
        if packet.destination != self.destination:
            raise SchedulingError(
                f"Downhill is single-destination (w={self.destination}); got a "
                f"packet for {packet.destination}"
            )
        return self.destination

    def select_activations(self, round_number: int) -> List[Activation]:
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        occupancy = self._occupancy
        activations: List[Activation] = []
        for i in range(last_buffer + 1):
            load = occupancy[i]
            if load == 0:
                continue
            if i == last_buffer:
                successor_load = 0
            else:
                successor_load = occupancy[i + 1]
            if load >= successor_load:
                activations.append(Activation(node=i, key=self.destination))
        return activations

    # -- segment (sharded) selection -----------------------------------------------

    def boundary_view(self, round_number, lo, hi):
        """The load of the segment's first node — the left neighbour's
        successor load at the boundary edge."""
        return {"first_load": self._occupancy[lo]}

    def select_segment_activations(self, round_number, segment_index, segments,
                                   views, carry):
        lo, hi = segments[segment_index]
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        boundary_successor_load = (
            views[segment_index + 1]["first_load"]
            if segment_index + 1 < len(views)
            else 0
        )
        occupancy = self._occupancy
        activations: List[Activation] = []
        for i in range(lo, min(last_buffer, hi) + 1):
            load = occupancy[i]
            if load == 0:
                continue
            if i == last_buffer:
                successor_load = 0
            elif i == hi:
                successor_load = boundary_successor_load
            else:
                successor_load = occupancy[i + 1]
            if load >= successor_load:
                activations.append(Activation(node=i, key=self.destination))
        return activations, None
