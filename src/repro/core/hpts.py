"""Hierarchical Peak-to-Sink (HPTS) — Algorithms 3-5, Theorem 4.1.

HPTS partitions the line hierarchically (``ell`` levels of nested intervals,
branching factor ``m = n**(1/ell)``) and runs an independent PPTS instance
inside every interval, with the interval's ``m`` sub-interval left-endpoints
playing the role of destinations.  A packet's journey is decomposed into
*segments* of strictly decreasing level; at any moment the packet lives in the
pseudo-buffer keyed by its current ``(level, intermediate destination)``.

Three mechanisms make this fit in the available bandwidth and keep badness
under control:

* **Phase batching** — packets injected during a phase of ``ell`` rounds are
  accepted together at the start of the next phase (the ``ell``-reduction of
  Definition 2.4).
* **Time-division multiplexing** — each round of a phase serves exactly one
  hierarchy level: same-level intervals are edge-disjoint, so all of them can
  run their PPTS step in parallel (``FormPaths``).
* **Pre-bad activation** — when a forwarded packet is about to finish its
  segment and would land on top of an occupied lower-level pseudo-buffer, the
  lower-level interval is activated in the same round so the hand-off does not
  increase badness (``ActivatePreBad``).

Theorem 4.1: for any ``(rho, sigma)``-bounded adversary with ``rho * ell <= 1``,
the maximum (accepted) buffer occupancy is at most ``ell * n**(1/ell) + sigma + 1``.
With ``ell = 1`` HPTS reduces to PPTS.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..api.registry import register_algorithm
from ..network.errors import ConfigurationError
from ..network.topology import LineTopology
from .hierarchy import HierarchicalPartition
from .packet import Packet
from .pseudobuffer import QueueDiscipline
from .scheduler import Activation, ForwardingAlgorithm
from . import bounds

__all__ = ["HierarchicalPeakToSink"]

#: How the ``ell`` rounds of a phase map to hierarchy levels.
#: ``descending`` serves level ``ell-1`` first (matching the analysis of
#: Lemma 4.8, where levels are activated in decreasing order over a phase);
#: ``ascending`` serves level 0 first (the literal ``lambda = t mod ell`` of
#: Algorithm 3).  Both are available; the E9 ablation compares them.
LEVEL_SCHEDULES = ("descending", "ascending")


@register_algorithm("hpts")
class HierarchicalPeakToSink(ForwardingAlgorithm):
    """The HPTS algorithm on a line of ``n = m**ell`` buffers.

    Parameters
    ----------
    topology:
        The line.  Its length must be a perfect ``levels``-th power unless an
        explicit ``branching`` factor is given.
    levels:
        The number of hierarchy levels ``ell``.
    branching:
        The branching factor ``m``; derived from ``n`` and ``levels`` when
        omitted.
    rho:
        Optional declared adversary rate, used only to validate the theorem's
        precondition ``rho * ell <= 1`` up front.
    level_schedule:
        ``"descending"`` (default) or ``"ascending"`` — see
        :data:`LEVEL_SCHEDULES`.
    activate_pre_bad:
        Ablation switch for the ``ActivatePreBad`` mechanism (E9).
    batch_acceptance:
        Ablation switch for phase batching; when ``False`` packets are
        accepted immediately on injection (E9).
    """

    name = "HPTS"
    supports_sharding = True
    #: Pre-bad activation scans propagate rightward along the line within a
    #: round, so segment selection runs left-to-right with a carry token.
    sharding_needs_carry = True

    def __init__(
        self,
        topology: LineTopology,
        levels: int,
        branching: Optional[int] = None,
        *,
        rho: Optional[float] = None,
        level_schedule: str = "descending",
        activate_pre_bad: bool = True,
        batch_acceptance: bool = True,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        if level_schedule not in LEVEL_SCHEDULES:
            raise ConfigurationError(
                f"level_schedule must be one of {LEVEL_SCHEDULES}, got {level_schedule!r}"
            )
        if rho is not None and rho * levels > 1 + 1e-9:
            raise ConfigurationError(
                f"HPTS requires rho * ell <= 1; got rho={rho}, ell={levels}"
            )
        self.partition = HierarchicalPartition(topology.num_nodes, levels, branching)
        self.levels = self.partition.levels
        self.branching = self.partition.branching
        self.level_schedule = level_schedule
        self.activate_pre_bad = activate_pre_bad
        self.batch_acceptance = batch_acceptance
        #: Packets injected but not yet accepted (phase batching).
        self._staged: List[Packet] = []
        #: Per hierarchy level, the intermediate destinations with at least
        #: one nonempty ``(level, w)`` pseudo-buffer somewhere on the line.
        self._level_destinations: Dict[int, set] = {}

    #: Debug/equivalence switch: ``False`` restores the seed engine's
    #: per-round interval scans (the indices stay maintained either way).
    use_incremental_selection = True

    # -- packet placement --------------------------------------------------------

    def classify(self, packet: Packet, node: int) -> Hashable:
        return self.partition.pseudo_buffer_key(node, packet.destination)

    def on_buffer_change(
        self, node: int, key: Hashable, old_len: int, new_len: int
    ) -> None:
        level, intermediate = key  # keys are (level, intermediate destination)
        if new_len > 0 and old_len == 0:
            self._level_destinations.setdefault(level, set()).add(intermediate)
        elif new_len == 0 and old_len > 0 and not self._index.nonempty(key):
            existing = self._level_destinations.get(level)
            if existing is not None:
                existing.discard(intermediate)

    def on_inject(self, round_number: int, packets: List[Packet]) -> None:
        if self.batch_acceptance:
            # Phase boundary: accept everything injected in earlier phases.
            if round_number % self.levels == 0 and self._staged:
                still_staged: List[Packet] = []
                for packet in self._staged:
                    if packet.injected_round < round_number:
                        packet.accept(round_number)
                        self.buffers[packet.location].store(
                            packet, self.classify(packet, packet.location)
                        )
                    else:
                        still_staged.append(packet)
                self._staged = still_staged
            self._staged.extend(packets)
        else:
            super().on_inject(round_number, packets)

    def staged_count(self) -> int:
        return len(self._staged)

    def checkpoint_state(self) -> Dict:
        # The per-level destination sets are derived state, rebuilt by
        # on_buffer_change while the checkpoint layer replays the buffers;
        # only the staged (injected-but-unaccepted) packets need recording.
        return {"staged": [packet.packet_id for packet in self._staged]}

    def restore_checkpoint_state(self, state: Dict, packets) -> None:
        self._staged = [packets[packet_id] for packet_id in state["staged"]]

    # -- forwarding decisions ------------------------------------------------------

    def select_activations(self, round_number: int) -> List[Activation]:
        current_level = self._level_for_round(round_number)
        active: Dict[int, Tuple[int, int]] = {}
        activations: List[Activation] = []
        # Lines 6-8 of Algorithm 3: FormPaths on every level-lambda interval.
        for start, end in self.partition.level_partition(current_level):
            self._form_paths(start, end, current_level, active, activations)
        # Lines 9-11: cascade pre-bad activations down the remaining levels.
        if self.activate_pre_bad:
            for level in range(current_level - 1, -1, -1):
                self._activate_pre_bad(level, active, activations)
        return activations

    def theoretical_bound(self, sigma: float) -> float:
        """Theorem 4.1: ``ell * n**(1/ell) + sigma + 1``."""
        return bounds.hpts_upper_bound(self.topology.num_nodes, self.levels, sigma)

    # -- segment (sharded) selection -----------------------------------------------
    #
    # HPTS selection has two cross-segment information flows:
    #
    # * FormPaths runs a PPTS-style frontier cascade inside every interval of
    #   the round's level — intervals (whose sizes reach n at the top level)
    #   freely span segment boundaries.  As with PPTS, each cascade query has
    #   a fixed lower end (the interval start), so the per-(interval,
    #   destination) global left-most bad position — the min over segments,
    #   shipped in `boundary_view` — is sufficient to replay the cascade
    #   exactly on every segment.
    # * ActivatePreBad looks one node to the *left* of each interval start
    #   (possibly across a boundary) and extends activations *rightward*
    #   while nodes are inactive (possibly across boundaries).  Both flows
    #   are strictly left-to-right, so they thread through the `carry` token:
    #   the left neighbour exports its last node's activation (with the phase
    #   at which it was activated and the peeked head packet of the activated
    #   pseudo-buffer) plus any scan still open at its right edge per level.
    #
    # Phase bookkeeping: FormPaths activations carry phase `level_of_round`;
    # a pre-bad activation at level L carries phase L.  A predecessor is
    # visible to the level-L pre-bad check iff its phase is >= L — exactly
    # the set of entries the single-process `active` map holds when level L
    # is processed (left-of-`start` same-level entries included, since
    # intervals are swept left to right).

    def boundary_view(self, round_number, lo, hi):
        level = self._level_for_round(round_number)
        size = self.branching ** (level + 1)
        intervals: Dict[int, Dict[int, int]] = {}
        candidates = self._level_destinations.get(level, ())
        for rank in range(lo // size, hi // size + 1):
            start = rank * size
            end = start + size - 1
            overlap_lo, overlap_hi = max(start, lo), min(end, hi)
            entry: Dict[int, int] = {}
            for w in sorted(candidates):
                position = self._index.bad((level, w)).first_in(
                    overlap_lo, overlap_hi
                )
                if position is not None:
                    entry[w] = position
            if entry:
                intervals[rank] = entry
        return {"intervals": intervals}

    def select_segment_activations(self, round_number, segment_index, segments,
                                   views, carry):
        lo, hi = segments[segment_index]
        current_level = self._level_for_round(round_number)
        active: Dict[int, Tuple[int, int]] = {}
        phase: Dict[int, int] = {}
        activations: List[Activation] = []

        # FormPaths on every current-level interval overlapping this segment.
        size = self.branching ** (current_level + 1)
        for rank in range(lo // size, hi // size + 1):
            start = rank * size
            end = start + size - 1
            merged: Dict[int, int] = {}
            for view in views:
                entry = view["intervals"].get(rank)
                if not entry:
                    continue
                for w, position in entry.items():
                    current = merged.get(w)
                    if current is None or position < current:
                        merged[w] = position
            if not merged:
                continue
            destinations = sorted(merged)
            frontier = max(destinations)
            for w in reversed(destinations):
                key = (current_level, w)
                last = min(frontier - 1, w - 1, end)
                bad = merged[w]
                if bad > last:
                    continue
                for i in self._index.nonempty_in(key, max(bad, lo), min(last, hi)):
                    if i in active:
                        continue
                    activations.append(Activation(node=i, key=key))
                    active[i] = key
                    phase[i] = current_level
                frontier = bad

        open_out: Dict[int, Tuple[Tuple[int, int], int]] = {}
        if self.activate_pre_bad:
            open_in = carry["open"] if carry else {}
            last_info = carry["last"] if carry else None
            for level in range(current_level - 1, -1, -1):
                # First, continue any scan the left neighbour left open at
                # this level — it originates at an interval start left of
                # `lo`, so its activations precede this segment's own
                # interval starts in the single-process sweep order.
                open_scan = open_in.get(level)
                if open_scan is not None:
                    key, limit = open_scan
                    i = lo
                    while i <= min(limit, hi) and i not in active:
                        activations.append(Activation(node=i, key=key))
                        active[i] = key
                        phase[i] = level
                        i += 1
                    if i > hi and limit > hi:
                        open_out[level] = (key, limit)
                level_size = self.branching ** (level + 1)
                first_start = ((lo + level_size - 1) // level_size) * level_size
                for start in range(first_start, hi + 1, level_size):
                    if start == 0 or start in active:
                        continue
                    if start == lo and segment_index > 0:
                        pre_bad_key = self._pre_bad_key_from_carry(
                            start, level, last_info
                        )
                    else:
                        pre_bad_key = self._pre_bad_key(start, level, active)
                    if pre_bad_key is None:
                        continue
                    _, intermediate = pre_bad_key
                    end = self.partition.interval_containing(level, start)[1]
                    limit = min(intermediate, end)
                    i = start
                    while i <= min(limit, hi) and i not in active:
                        activations.append(Activation(node=i, key=pre_bad_key))
                        active[i] = pre_bad_key
                        phase[i] = level
                        i += 1
                    if i > hi and limit > hi:
                        open_out[level] = (pre_bad_key, limit)

        # Export the right-edge state for the next segment.
        last_key = active.get(hi)
        peek = None
        if last_key is not None:
            pseudo = self.buffers[hi].existing(last_key)
            peek = pseudo.peek() if pseudo is not None else None
        carry_out = {
            "last": {
                "phase": phase.get(hi),
                "key": last_key,
                "peek_nonempty": peek is not None,
                "peek_destination": None if peek is None else peek.destination,
            },
            "open": open_out,
        }
        return activations, carry_out

    def fold_sibling_state(self, states) -> None:
        """Nothing to fold: HPTS discovers no global state worth keeping.

        Sibling segments' :meth:`checkpoint_state` payloads only carry
        staged packet ids, which are strictly segment-local; the per-level
        destination sets are derived state rebuilt from this instance's own
        buffers via ``on_buffer_change``, and :meth:`theoretical_bound`
        depends only on construction parameters (``n``, ``ell``).  The
        override is deliberate (RPR004): it records that the question "does
        HPTS learn anything global from its siblings?" was answered, rather
        than silently inheriting the base no-op.
        """

    def _pre_bad_key_from_carry(
        self, node: int, level: int, last_info: Optional[Dict]
    ) -> Optional[Tuple[int, int]]:
        """Definition 4.6 across a segment boundary: the predecessor's state
        arrives in the left neighbour's carry instead of being peeked."""
        if last_info is None or last_info["phase"] is None:
            return None
        if last_info["phase"] < level:
            # Activated at a lower level than the one being processed — the
            # single-process `active` map would not contain it yet.
            return None
        if not last_info["peek_nonempty"]:
            return None
        predecessor_key = last_info["key"]
        _, current_intermediate = predecessor_key
        if current_intermediate != node:
            return None
        destination = last_info["peek_destination"]
        if destination == node:
            return None
        new_key = self.partition.pseudo_buffer_key(node, destination)
        if new_key[0] != level:
            return None
        if self.buffers[node].load_of(new_key) < 1:
            return None
        return new_key

    # -- internals ----------------------------------------------------------------

    def _level_for_round(self, round_number: int) -> int:
        offset = round_number % self.levels
        if self.level_schedule == "ascending":
            return offset
        return self.levels - 1 - offset

    def _form_paths(
        self,
        start: int,
        end: int,
        level: int,
        active: Dict[int, Tuple[int, int]],
        activations: List[Activation],
    ) -> None:
        """Algorithm 4 restricted to the level-``level`` interval ``[start, end]``."""
        if self.use_incremental_selection:
            destinations = sorted(
                w
                for w in self._level_destinations.get(level, ())
                if self._index.has_nonempty_in((level, w), start, end)
            )
        else:
            destinations = sorted(
                {
                    key[1]
                    for i in range(start, end + 1)
                    for key in self.buffers[i].nonempty_keys()
                    if isinstance(key, tuple) and key[0] == level
                }
            )
        if not destinations:
            return
        frontier = max(destinations)
        for w in reversed(destinations):
            key = (level, w)
            last = min(frontier - 1, w - 1, end)
            if self.use_incremental_selection:
                bad = self._index.leftmost_bad(key, start, last)
            else:
                bad = None
                for i in range(start, last + 1):
                    if self.buffers[i].load_of(key) >= 2:
                        bad = i
                        break
            if bad is None:
                continue
            for i in range(bad, last + 1):
                if i in active:
                    continue
                activations.append(Activation(node=i, key=key))
                active[i] = key
            frontier = bad

    def _activate_pre_bad(
        self,
        level: int,
        active: Dict[int, Tuple[int, int]],
        activations: List[Activation],
    ) -> None:
        """Algorithm 5 for one level: extend activations across segment hand-offs."""
        for start, end in self.partition.level_partition(level):
            if start in active or start == 0:
                continue
            pre_bad_key = self._pre_bad_key(start, level, active)
            if pre_bad_key is None:
                continue
            _, intermediate = pre_bad_key
            # w <- max{i in I : i <= w_k and [start, i] is inactive}
            limit = min(intermediate, end)
            last_inactive = start
            i = start
            while i <= limit and i not in active:
                last_inactive = i
                i += 1
            for i in range(start, last_inactive + 1):
                activations.append(Activation(node=i, key=pre_bad_key))
                active[i] = pre_bad_key

    def _pre_bad_key(
        self,
        node: int,
        level: int,
        active: Dict[int, Tuple[int, int]],
    ) -> Optional[Tuple[int, int]]:
        """If a packet is pre-bad for ``node`` at ``level``, its new pseudo-buffer key.

        Definition 4.6: the buffer at ``node - 1`` is active and its outgoing
        packet ``P`` finishes its current segment at ``node`` (the segment's
        intermediate destination is ``node``), where ``P`` re-classifies into a
        level-``level`` pseudo-buffer that is already occupied.
        """
        predecessor_key = active.get(node - 1)
        if predecessor_key is None:
            return None
        pseudo = self.buffers[node - 1].existing(predecessor_key)
        if pseudo is None or not pseudo:
            return None
        packet = pseudo.peek()
        if packet is None:
            return None
        _, current_intermediate = predecessor_key
        if current_intermediate != node:
            return None
        if packet.destination == node:
            # The packet is delivered on arrival; it never re-buffers.
            return None
        new_key = self.partition.pseudo_buffer_key(node, packet.destination)
        if new_key[0] != level:
            return None
        if self.buffers[node].load_of(new_key) < 1:
            return None
        return new_key
