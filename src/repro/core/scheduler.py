"""The forwarding-algorithm interface shared by PTS, PPTS, HPTS and baselines.

The AQT execution model (Section 2) separates each round into an injection
step and a forwarding step.  A forwarding algorithm owns the buffers: it
decides under which pseudo-buffer an arriving packet is stored (``classify``)
and which pseudo-buffers are *activated* each round (``select_activations``).
The simulator performs the actual packet movement, enforcing the capacity
constraint of one packet per directed edge per round.

The paper's "implementation convention" (Section 3) — buffers start inactive,
algorithms activate a family ``A`` of (pseudo-)buffers, and all active buffers
forward simultaneously — maps onto :class:`Activation` records returned by
``select_activations``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..network.topology import Topology
from .packet import Packet
from .pseudobuffer import NodeBuffer, QueueDiscipline

__all__ = ["Activation", "ForwardingAlgorithm"]


@dataclass(frozen=True)
class Activation:
    """One activated pseudo-buffer: node ``node`` forwards from queue ``key``.

    ``packet`` optionally names the exact packet to forward (used by greedy
    baselines whose priority is not the pseudo-buffer's own discipline);
    when ``None`` the pseudo-buffer pops according to its queue discipline.
    """

    node: int
    key: Hashable
    packet: Optional[Packet] = None


class ForwardingAlgorithm(ABC):
    """Base class for all forwarding algorithms.

    Subclasses must implement :meth:`classify` (how a packet at a node is
    assigned to a pseudo-buffer) and :meth:`select_activations` (which
    pseudo-buffers forward this round).  The default injection handling stores
    packets immediately; algorithms that batch acceptance (HPTS) override
    :meth:`on_inject` and :meth:`staged_count`.
    """

    #: Human-readable identifier used in result tables.
    name: str = "abstract"

    def __init__(
        self,
        topology: Topology,
        *,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        self.topology = topology
        self.discipline = discipline
        self.buffers: Dict[int, NodeBuffer] = {
            node: NodeBuffer(node, discipline) for node in topology.nodes
        }

    # -- packet placement --------------------------------------------------------

    @abstractmethod
    def classify(self, packet: Packet, node: int) -> Hashable:
        """The pseudo-buffer key under which ``packet`` is stored at ``node``."""

    def on_inject(self, round_number: int, packets: List[Packet]) -> None:
        """Handle the injection step: store newly injected packets.

        The default accepts every packet immediately at its injection site,
        which is what PTS, PPTS, the tree algorithms and all greedy baselines
        do.  HPTS overrides this to stage packets until the next phase start.
        """
        for packet in packets:
            packet.accept(round_number)
            self.buffers[packet.location].store(
                packet, self.classify(packet, packet.location)
            )

    def on_arrival(self, packet: Packet, node: int, round_number: int) -> None:
        """Handle a packet forwarded into ``node`` (not its destination)."""
        self.buffers[node].store(packet, self.classify(packet, node))

    # -- forwarding decisions ------------------------------------------------------

    @abstractmethod
    def select_activations(self, round_number: int) -> List[Activation]:
        """The family ``A`` of pseudo-buffers that forward this round."""

    def on_round_end(self, round_number: int) -> None:
        """Hook called after the forwarding step completes (default: no-op)."""

    # -- occupancy queries -----------------------------------------------------------

    def occupancy(self, node: int) -> int:
        """``|L(node)|`` — packets currently stored (accepted) at ``node``."""
        return self.buffers[node].load

    def occupancy_vector(self) -> Dict[int, int]:
        """Occupancy of every node."""
        return {node: buffer.load for node, buffer in self.buffers.items()}

    def max_occupancy(self) -> int:
        """The largest buffer occupancy right now."""
        return max((buffer.load for buffer in self.buffers.values()), default=0)

    def total_stored(self) -> int:
        """Total packets stored across all buffers (excluding staged packets)."""
        return sum(buffer.load for buffer in self.buffers.values())

    def staged_count(self) -> int:
        """Packets injected but not yet accepted (0 for immediate-accept algorithms)."""
        return 0

    def pending_packets(self) -> int:
        """All undelivered packets this algorithm is responsible for."""
        return self.total_stored() + self.staged_count()

    def theoretical_bound(self, sigma: float) -> Optional[float]:
        """The paper's space bound for this algorithm, if one applies.

        Returns ``None`` for algorithms with no stated bound (e.g. greedy
        baselines).  Subclasses with a bound override this.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.topology.num_nodes})"
