"""The forwarding-algorithm interface shared by PTS, PPTS, HPTS and baselines.

The AQT execution model (Section 2) separates each round into an injection
step and a forwarding step.  A forwarding algorithm owns the buffers: it
decides under which pseudo-buffer an arriving packet is stored (``classify``)
and which pseudo-buffers are *activated* each round (``select_activations``).
The simulator performs the actual packet movement, enforcing the capacity
constraint of one packet per directed edge per round.

The paper's "implementation convention" (Section 3) — buffers start inactive,
algorithms activate a family ``A`` of (pseudo-)buffers, and all active buffers
forward simultaneously — maps onto :class:`Activation` records returned by
``select_activations``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from ..network.errors import ConfigurationError
from ..network.topology import Topology
from .indexset import BufferIndex
from .packet import Packet
from .pseudobuffer import NodeBuffer, QueueDiscipline

__all__ = ["Activation", "ForwardingAlgorithm"]


@dataclass(frozen=True, slots=True)
class Activation:
    """One activated pseudo-buffer: node ``node`` forwards from queue ``key``.

    ``packet`` optionally names the exact packet to forward (used by greedy
    baselines whose priority is not the pseudo-buffer's own discipline);
    when ``None`` the pseudo-buffer pops according to its queue discipline.
    Slotted: peak-to-sink algorithms allocate one per activated buffer per
    round, which on long backlogs is the hottest allocation site after
    packets themselves.
    """

    node: int
    key: Hashable
    packet: Optional[Packet] = None


class ForwardingAlgorithm(ABC):
    """Base class for all forwarding algorithms.

    Subclasses must implement :meth:`classify` (how a packet at a node is
    assigned to a pseudo-buffer) and :meth:`select_activations` (which
    pseudo-buffers forward this round).  The default injection handling stores
    packets immediately; algorithms that batch acceptance (HPTS) override
    :meth:`on_inject` and :meth:`staged_count`.

    The base class keeps a *live* occupancy map: every buffer mutation flows
    through :meth:`_buffer_changed` (wired into the node buffers' change
    listeners), which updates the per-node load, the total stored count and a
    dirty-node set.  :meth:`occupancy_delta` hands the simulator just the
    nodes whose load changed since the last call, so per-round measurement
    cost is proportional to the number of packets that moved, not to the
    network size; :meth:`occupancy_vector` remains as the full-snapshot
    compatibility/debug path.

    The same notifications feed ``self._index``, a
    :class:`~repro.core.indexset.BufferIndex` of sorted nonempty/bad buffer
    positions per pseudo-buffer key, which the peak-to-sink algorithms
    select activations from in O(log n).  Subclasses needing further
    incremental structures override :meth:`on_buffer_change` (e.g. HPTS's
    per-level destination sets).
    """

    #: Human-readable identifier used in result tables.
    name: str = "abstract"

    #: Whether this algorithm implements segment-exact selection — i.e. its
    #: :meth:`boundary_view` / :meth:`select_segment_activations` pair
    #: reproduces the *global* activation set restricted to a line segment,
    #: bit for bit.  The sharded engine refuses algorithms that have not
    #: opted in, rather than silently diverging from the single-process run.
    supports_sharding: bool = False

    #: Whether segment selection must run left-to-right with a carry token
    #: threaded between neighbours (:meth:`select_segment_activations`'s
    #: ``carry``).  Only algorithms whose per-round decision propagates
    #: sequentially along the line (HPTS's pre-bad cascade) need this; for
    #: everything else the coordinator fans selection out in parallel.
    sharding_needs_carry: bool = False

    def __init__(
        self,
        topology: Topology,
        *,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
        bad_threshold: int = 2,
    ) -> None:
        self.topology = topology
        self.discipline = discipline
        self._occupancy: Dict[int, int] = {node: 0 for node in topology.nodes}
        #: Optional dense (index-addressable) mirror of ``_occupancy``, kept
        #: exact by :meth:`_buffer_changed`.  Enabled only for bulk-snapshot
        #: runs (``record_occupancy_vectors``); ``None`` costs nothing on the
        #: hot path.
        self._occupancy_dense = None
        self._dirty_nodes: Set[int] = set()
        self._total_stored = 0
        self._index = BufferIndex(bad_threshold)
        #: Empty pseudo-buffers are garbage-collected every ``_gc_interval``
        #: rounds (multi-destination runs otherwise leak one queue per
        #: destination per node over a long horizon).
        self._gc_interval = max(topology.num_nodes, 1)
        self._rounds_until_gc = self._gc_interval
        self.buffers: Dict[int, NodeBuffer] = {
            node: NodeBuffer(node, discipline, on_change=self._buffer_changed)
            for node in topology.nodes
        }

    def _buffer_changed(
        self, node: int, key: Hashable, old_len: int, new_len: int
    ) -> None:
        delta = new_len - old_len
        if delta:
            load = self._occupancy[node] + delta
            self._occupancy[node] = load
            self._total_stored += delta
            self._dirty_nodes.add(node)
            if self._occupancy_dense is not None:
                self._occupancy_dense[node] = load
        self._index.update(node, key, old_len, new_len)
        self.on_buffer_change(node, key, old_len, new_len)

    def on_buffer_change(
        self, node: int, key: Hashable, old_len: int, new_len: int
    ) -> None:
        """Hook: pseudo-buffer ``key`` at ``node`` went ``old_len -> new_len``.

        Called on every push/pop/remove, after the occupancy map and the
        position index have been updated.  The default does nothing.
        """

    # -- packet placement --------------------------------------------------------

    @abstractmethod
    def classify(self, packet: Packet, node: int) -> Hashable:
        """The pseudo-buffer key under which ``packet`` is stored at ``node``."""

    def on_inject(self, round_number: int, packets: List[Packet]) -> None:
        """Handle the injection step: store newly injected packets.

        The default accepts every packet immediately at its injection site,
        which is what PTS, PPTS, the tree algorithms and all greedy baselines
        do.  HPTS overrides this to stage packets until the next phase start.
        """
        for packet in packets:
            packet.accept(round_number)
            self.buffers[packet.location].store(
                packet, self.classify(packet, packet.location)
            )

    def on_arrival(self, packet: Packet, node: int, round_number: int) -> None:
        """Handle a packet forwarded into ``node`` (not its destination)."""
        self.buffers[node].store(packet, self.classify(packet, node))

    # -- forwarding decisions ------------------------------------------------------

    @abstractmethod
    def select_activations(self, round_number: int) -> List[Activation]:
        """The family ``A`` of pseudo-buffers that forward this round."""

    # -- segment (sharded) selection -----------------------------------------------
    #
    # The sharded engine (repro.network.sharded) runs one algorithm instance
    # per contiguous line segment; each instance stores only its own segment's
    # packets.  Per round every instance publishes a compact summary of its
    # segment (`boundary_view`) and then computes the *global* activation set
    # restricted to its own nodes from everyone's summaries
    # (`select_segment_activations`).  An algorithm that sets
    # ``supports_sharding = True`` guarantees this pair is exact: the union of
    # segment activations equals the single-process `select_activations`.

    def boundary_view(self, round_number: int, lo: int, hi: int) -> Dict[str, Any]:
        """Selection-relevant summary of this engine's segment ``[lo, hi]``.

        Must be small (O(keys with congestion), never O(n)) and picklable —
        it crosses a process boundary every superstep.  The default empty
        view suits algorithms whose per-node decision needs no remote state
        (greedy baselines).
        """
        return {}

    def select_segment_activations(
        self,
        round_number: int,
        segment_index: int,
        segments: Sequence[Tuple[int, int]],
        views: Sequence[Dict[str, Any]],
        carry: Any,
    ) -> Tuple[List[Activation], Any]:
        """The global activation set restricted to this engine's segment.

        ``segments`` lists every segment's inclusive ``(lo, hi)`` bounds in
        line order and ``views`` the matching :meth:`boundary_view` results;
        this engine owns ``segments[segment_index]``.  ``carry`` is the token
        returned by the left neighbour when :attr:`sharding_needs_carry` is
        set (``None`` otherwise / for the left-most segment); the returned
        second element is handed to the right neighbour.

        The default filters the engine's own global selection to its segment
        — exact for algorithms whose activation at a node depends only on
        that node's buffers, since every packet this instance stores lives
        inside its segment.
        """
        lo, hi = segments[segment_index]
        activations = [
            activation
            for activation in self.select_activations(round_number)
            if lo <= activation.node <= hi
        ]
        return activations, None

    def fold_sibling_state(self, states: Sequence[Dict]) -> None:
        """Fold sibling segment engines' :meth:`checkpoint_state` payloads in.

        After a sharded run the coordinator gives one representative instance
        every worker's state so globally *discovered* facts (PPTS's observed
        destination set) are complete before :meth:`theoretical_bound` is
        consulted.  The default does nothing — most algorithms' bounds depend
        only on construction parameters.
        """

    def on_round_end(self, round_number: int) -> None:
        """Hook called after the forwarding step completes.

        The default periodically garbage-collects empty pseudo-buffers (about
        once every ``num_nodes`` rounds); subclasses overriding this hook
        should call ``super().on_round_end(round_number)`` to keep long
        multi-destination runs from leaking empty queues.
        """
        self._rounds_until_gc -= 1
        if self._rounds_until_gc <= 0:
            self._rounds_until_gc = self._gc_interval
            for buffer in self.buffers.values():
                buffer.drop_empty()

    # -- occupancy queries -----------------------------------------------------------

    def occupancy(self, node: int) -> int:
        """``|L(node)|`` — packets currently stored (accepted) at ``node``."""
        return self._occupancy[node]

    def occupancy_vector(self) -> Dict[int, int]:
        """Occupancy of every node (full snapshot; compatibility/debug path).

        Does *not* consume the dirty-node set — adaptive adversaries may call
        this mid-round without disturbing the simulator's delta accounting.
        """
        return dict(self._occupancy)

    def occupancy_delta(self) -> Dict[int, int]:
        """Current load of every node whose load changed since the last call.

        Consumes the dirty-node set.  The simulator folds this into its
        running occupancy maxima: a node absent from the delta has the same
        load it had at the previous measurement, which is already folded in.
        """
        if not self._dirty_nodes:
            return {}
        occupancy = self._occupancy
        delta = {node: occupancy[node] for node in self._dirty_nodes}
        self._dirty_nodes.clear()
        return delta

    def enable_dense_occupancy(self) -> None:
        """Maintain a dense per-node occupancy vector alongside the dict.

        Requires the node set to be the contiguous range ``0..n-1`` (lines).
        The mirror is a numpy ``int64`` array when numpy is importable and a
        pure-python ``array('q')`` otherwise; either way
        :meth:`occupancy_array` afterwards returns index-addressable loads
        that :class:`~repro.network.events.OccupancyTimeline` can fold in
        bulk.  Existing loads are copied in, so enabling mid-life (e.g. just
        before a checkpoint restore replays its stores) is safe.
        """
        num_nodes = self.topology.num_nodes
        nodes = self.topology.nodes
        if not (isinstance(nodes, range) and nodes == range(num_nodes)):
            raise ConfigurationError(
                "dense occupancy needs contiguous node ids 0..n-1 "
                f"(got {type(self.topology).__name__})"
            )
        try:
            import numpy

            dense = numpy.zeros(num_nodes, dtype=numpy.int64)
        except ImportError:  # pragma: no cover - numpy is normally present
            from array import array

            dense = array("q", bytes(8 * num_nodes))
        for node, load in self._occupancy.items():
            if load:
                dense[node] = load
        self._occupancy_dense = dense

    def occupancy_array(self):
        """The dense occupancy mirror (``enable_dense_occupancy`` first)."""
        if self._occupancy_dense is None:
            raise ConfigurationError(
                "occupancy_array() requires enable_dense_occupancy()"
            )
        return self._occupancy_dense

    def max_occupancy(self) -> int:
        """The largest buffer occupancy right now."""
        return max(self._occupancy.values(), default=0)

    def total_stored(self) -> int:
        """Total packets stored across all buffers (excluding staged packets)."""
        return self._total_stored

    def staged_count(self) -> int:
        """Packets injected but not yet accepted (0 for immediate-accept algorithms)."""
        return 0

    def pending_packets(self) -> int:
        """All undelivered packets this algorithm is responsible for."""
        return self.total_stored() + self.staged_count()

    def theoretical_bound(self, sigma: float) -> Optional[float]:
        """The paper's space bound for this algorithm, if one applies.

        Returns ``None`` for algorithms with no stated bound (e.g. greedy
        baselines).  Subclasses with a bound override this.
        """
        return None

    # -- checkpoint support -----------------------------------------------------------

    def checkpoint_state(self) -> Dict:
        """Mutable algorithm state *beyond* the buffer contents.

        The checkpoint layer (:mod:`repro.checkpoint`) serialises the buffers
        itself (per-node pseudo-buffer keys and packet ids, in queue order)
        and rebuilds the occupancy map, the :class:`BufferIndex` and any
        structures maintained through :meth:`on_buffer_change` by replaying
        the stores.  Algorithms carrying extra mutable state — staged packets,
        discovered destination sets, per-packet bookkeeping — override this
        pair of hooks to round-trip it.  The returned mapping must be
        JSON-serialisable; packets are referenced by id.
        """
        return {}

    def restore_checkpoint_state(
        self, state: Dict, packets: Dict[int, Packet]
    ) -> None:
        """Restore :meth:`checkpoint_state` output (``packets`` maps ids to
        the already-rematerialised packet objects)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.topology.num_nodes})"
