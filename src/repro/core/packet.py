"""Packet model for the Adversarial Queuing Theory (AQT) simulator.

A packet in the paper (Section 2) is a triple ``(t, i_P, w_P)``: the round in
which it is injected, its injection site, and its destination.  For the
simulator we additionally carry a unique identifier (so multisets of packets
injected at the same place and time remain distinguishable), and mutable
bookkeeping used by the engine and by the lower-bound analysis (current
location, delivery round, fresh/stale status).

The immutable "injection record" lives in :class:`Injection`; the mutable
in-flight object is :class:`Packet`.  Both are ``__slots__`` classes: a
million-packet run allocates millions of them, and the per-instance ``__dict__``
would dominate the engine's footprint.  Large schedules are stored columnar in
a :class:`PacketStore` — four flat integer arrays instead of one boxed record
object per injection — and materialise :class:`Injection` views on demand.
"""

from __future__ import annotations

import contextvars
from array import array
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Optional

__all__ = [
    "Injection",
    "Packet",
    "PacketState",
    "PacketStore",
    "PacketIdAllocator",
    "packet_id_scope",
    "packet_id_counter",
]


class PacketIdAllocator:
    """A scoped source of unique packet ids.

    One process-wide allocator exists by default (ids shared by everything
    built outside a scope, as before); :class:`packet_id_scope` installs a
    fresh allocator for the current context so each :class:`repro.api.Session`
    run numbers its packets from 0 independently — deterministic regardless of
    what ran before, and safe under thread-pool fan-out because the scope is
    backed by a :class:`contextvars.ContextVar` (per-thread by default).

    The counter is a plain integer so the next value can be *observed*
    without being consumed (:attr:`next_value`) — checkpoints record it and
    restore it with :meth:`reset`, keeping resumed runs id-aligned with their
    uninterrupted counterparts.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def next_id(self) -> int:
        value = self._next
        self._next = value + 1
        return value

    @property
    def next_value(self) -> int:
        """The id the next :meth:`next_id` call will return (not consumed)."""
        return self._next

    def reset(self, start: int = 0) -> None:
        self._next = start

    # Iterator protocol, so the historical `next(packet_id_counter)` usage
    # keeps working now that the module global is an allocator.
    def __next__(self) -> int:
        return self.next_id()

    def __iter__(self) -> "PacketIdAllocator":
        return self


#: Process-wide fallback allocator (kept under the historical name).
packet_id_counter = PacketIdAllocator()

_active_allocator: contextvars.ContextVar[Optional[PacketIdAllocator]] = (
    contextvars.ContextVar("repro_packet_id_allocator", default=None)
)


def current_allocator() -> PacketIdAllocator:
    """The allocator for the current context (scoped if inside one)."""
    return _active_allocator.get() or packet_id_counter


class packet_id_scope:
    """Context manager installing a fresh packet-id counter for this context.

    >>> with packet_id_scope():
    ...     first = make_injection(0, 0, 1)
    >>> first.packet_id
    0
    """

    __slots__ = ("allocator", "_token")

    def __init__(self, start: int = 0) -> None:
        self.allocator = PacketIdAllocator(start)
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> PacketIdAllocator:
        self._token = _active_allocator.set(self.allocator)
        return self.allocator

    def __exit__(self, *exc_info: object) -> None:
        if self._token is not None:
            _active_allocator.reset(self._token)
            self._token = None


def reset_packet_ids() -> None:
    """Reset the current context's packet-id counter (deterministic tests)."""
    current_allocator().reset()


class PacketState(Enum):
    """Lifecycle of a packet inside the simulator."""

    #: Created by an adversary but not yet accepted by the algorithm
    #: (relevant for HPTS, which batches injections per phase).
    STAGED = "staged"
    #: Stored in some buffer and awaiting forwarding.
    IN_TRANSIT = "in_transit"
    #: Absorbed at its destination.
    DELIVERED = "delivered"


@dataclass(frozen=True, order=True, slots=True)
class Injection:
    """An immutable injection record ``(round, source, destination)``.

    This mirrors the paper's packet triple ``P = (t, i_P, w_P)``.  Ordering is
    lexicographic on ``(round, source, destination, packet_id)`` which makes
    injection patterns sortable and hashable for set-based reasoning in tests.
    """

    round: int
    source: int
    destination: int
    packet_id: int = field(default=-1, compare=True)

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError(f"injection round must be non-negative, got {self.round}")

    @property
    def path_length(self) -> int:
        """Number of edges the packet must traverse on a line topology."""
        return abs(self.destination - self.source)

    def with_round(self, new_round: int) -> "Injection":
        """Return a copy of this injection re-timed to ``new_round``.

        Used by the :math:`\\ell`-reduction (Definition 2.4), which re-times
        packets to phase boundaries without changing source or destination.
        """
        return Injection(new_round, self.source, self.destination, self.packet_id)


class Packet:
    """A mutable in-flight packet tracked by the simulation engine.

    The injection triple is stored *unboxed* — four int slots instead of a
    nested :class:`Injection` record — so an in-flight packet is one small
    object; :attr:`injection` materialises the immutable record on demand.
    Packets compare by identity: the engine moves the exact objects it
    stored, and two packets are never interchangeable even when injected at
    the same place and time.

    Attributes
    ----------
    packet_id, source, destination, injected_round:
        The unboxed injection record ``(t, i_P, w_P)`` plus its unique id.
    location:
        The node currently storing this packet (meaningful only while the
        packet is ``IN_TRANSIT``).
    state:
        Lifecycle state.
    accepted_round:
        Round in which the algorithm accepted the packet into a buffer.  For
        most algorithms this equals ``injected_round``; for HPTS it is the
        first round of the following phase.
    delivered_round:
        Round in which the packet reached its destination, or ``None``.
    hops:
        Number of forwarding steps the packet has taken so far.
    """

    __slots__ = (
        "packet_id",
        "source",
        "destination",
        "injected_round",
        "location",
        "state",
        "accepted_round",
        "delivered_round",
        "hops",
    )

    def __init__(
        self,
        injection: Injection,
        location: int,
        state: PacketState = PacketState.IN_TRANSIT,
        accepted_round: Optional[int] = None,
        delivered_round: Optional[int] = None,
        hops: int = 0,
    ) -> None:
        self.packet_id = injection.packet_id
        self.source = injection.source
        self.destination = injection.destination
        self.injected_round = injection.round
        self.location = location
        self.state = state
        self.accepted_round = accepted_round
        self.delivered_round = delivered_round
        self.hops = hops

    @classmethod
    def from_injection(cls, injection: Injection, *, staged: bool = False) -> "Packet":
        """Create an in-flight packet at its injection site."""
        state = PacketState.STAGED if staged else PacketState.IN_TRANSIT
        return cls(injection, injection.source, state)

    # -- convenience accessors ------------------------------------------------

    @property
    def injection(self) -> Injection:
        """The immutable injection record, materialised from the int slots."""
        return Injection(
            self.injected_round, self.source, self.destination, self.packet_id
        )

    @property
    def delivered(self) -> bool:
        return self.state is PacketState.DELIVERED

    @property
    def latency(self) -> Optional[int]:
        """Rounds from injection to delivery, or ``None`` if undelivered."""
        if self.delivered_round is None:
            return None
        return self.delivered_round - self.injected_round

    @property
    def remaining_distance(self) -> int:
        """Edges left to traverse on a line topology (0 when delivered)."""
        if self.delivered:
            return 0
        return abs(self.destination - self.location)

    # -- engine hooks ----------------------------------------------------------

    def accept(self, round_number: int) -> None:
        """Mark a staged packet as accepted into a buffer."""
        self.state = PacketState.IN_TRANSIT
        self.accepted_round = round_number

    def advance(self, new_location: int) -> None:
        """Move the packet one hop to ``new_location``."""
        self.location = new_location
        self.hops += 1

    def deliver(self, round_number: int) -> None:
        """Absorb the packet at its destination."""
        self.state = PacketState.DELIVERED
        self.delivered_round = round_number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, src={self.source}, dst={self.destination}, "
            f"t={self.injected_round}, at={self.location}, state={self.state.value})"
        )


class PacketStore:
    """A compact columnar store of immutable injection records.

    Rows are ``(round, source, destination, packet_id)`` int quadruples kept
    in four flat ``array('q')`` columns — roughly 32 bytes per injection
    instead of one boxed :class:`Injection` (plus container references) each.
    Rows are append-only and keep insertion order; :meth:`injection`
    materialises an :class:`Injection` view on demand.

    Used by :class:`repro.adversary.base.InjectionPattern` to hold large
    schedules, and by the streaming simulator to log what was injected
    without retaining delivered :class:`Packet` objects.
    """

    __slots__ = ("_rounds", "_sources", "_destinations", "_ids")

    def __init__(self) -> None:
        self._rounds = array("q")
        self._sources = array("q")
        self._destinations = array("q")
        self._ids = array("q")

    def append(self, round: int, source: int, destination: int, packet_id: int) -> int:
        """Append one record; returns its row index."""
        self._rounds.append(round)
        self._sources.append(source)
        self._destinations.append(destination)
        self._ids.append(packet_id)
        return len(self._ids) - 1

    def append_injection(self, injection: Injection) -> int:
        return self.append(
            injection.round, injection.source, injection.destination,
            injection.packet_id,
        )

    def injection(self, row: int) -> Injection:
        """Materialise the :class:`Injection` stored at ``row``."""
        return Injection(
            self._rounds[row], self._sources[row], self._destinations[row],
            self._ids[row],
        )

    def row_tuple(self, row: int) -> tuple:
        """``(round, source, destination, packet_id)`` without boxing."""
        return (
            self._rounds[row], self._sources[row], self._destinations[row],
            self._ids[row],
        )

    #: The :class:`Injection` lexicographic order key for a row — identical
    #: to the row's tuple form by construction.
    sort_key = row_tuple

    @classmethod
    def from_columns(
        cls, rounds: array, sources: array, destinations: array, ids: array
    ) -> "PacketStore":
        """Rebuild a store from four equal-length ``array('q')`` columns.

        Used by checkpoint restore.  The columns are *copied*: the store
        keeps appending as the resumed run injects, and sharing the caller's
        arrays would mutate the loaded checkpoint in place (breaking a second
        restore from the same object).
        """
        lengths = {len(rounds), len(sources), len(destinations), len(ids)}
        if len(lengths) != 1:
            raise ValueError(f"PacketStore columns disagree on length: {lengths}")
        store = cls()
        store._rounds = array("q", rounds)
        store._sources = array("q", sources)
        store._destinations = array("q", destinations)
        store._ids = array("q", ids)
        return store

    # -- column views (read-only by convention) ---------------------------------

    @property
    def rounds(self) -> array:
        return self._rounds

    @property
    def sources(self) -> array:
        return self._sources

    @property
    def destinations(self) -> array:
        return self._destinations

    @property
    def packet_ids(self) -> array:
        return self._ids

    @property
    def nbytes(self) -> int:
        """Approximate payload size of the four columns, in bytes."""
        return sum(
            column.buffer_info()[1] * column.itemsize
            for column in (self._rounds, self._sources, self._destinations, self._ids)
        )

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Injection]:
        """Materialise every record, in insertion order."""
        for row in range(len(self._ids)):
            yield self.injection(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PacketStore(records={len(self._ids)}, nbytes={self.nbytes})"


def make_injection(round: int, source: int, destination: int) -> Injection:
    """Create an :class:`Injection` with a fresh unique packet id.

    Ids come from the current :class:`packet_id_scope` if one is active, and
    from the process-wide counter otherwise.
    """
    return Injection(round, source, destination, current_allocator().next_id())
