"""Packet model for the Adversarial Queuing Theory (AQT) simulator.

A packet in the paper (Section 2) is a triple ``(t, i_P, w_P)``: the round in
which it is injected, its injection site, and its destination.  For the
simulator we additionally carry a unique identifier (so multisets of packets
injected at the same place and time remain distinguishable), and mutable
bookkeeping used by the engine and by the lower-bound analysis (current
location, delivery round, fresh/stale status).

The immutable "injection record" lives in :class:`Injection`; the mutable
in-flight object is :class:`Packet`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "Injection",
    "Packet",
    "PacketState",
    "packet_id_counter",
]

#: Process-wide counter used to assign unique packet ids when the caller does
#: not supply one.  Tests may reset it via :func:`reset_packet_ids`.
packet_id_counter = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (useful for deterministic tests)."""
    global packet_id_counter
    packet_id_counter = itertools.count()


class PacketState(Enum):
    """Lifecycle of a packet inside the simulator."""

    #: Created by an adversary but not yet accepted by the algorithm
    #: (relevant for HPTS, which batches injections per phase).
    STAGED = "staged"
    #: Stored in some buffer and awaiting forwarding.
    IN_TRANSIT = "in_transit"
    #: Absorbed at its destination.
    DELIVERED = "delivered"


@dataclass(frozen=True, order=True)
class Injection:
    """An immutable injection record ``(round, source, destination)``.

    This mirrors the paper's packet triple ``P = (t, i_P, w_P)``.  Ordering is
    lexicographic on ``(round, source, destination, packet_id)`` which makes
    injection patterns sortable and hashable for set-based reasoning in tests.
    """

    round: int
    source: int
    destination: int
    packet_id: int = field(default=-1, compare=True)

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError(f"injection round must be non-negative, got {self.round}")

    @property
    def path_length(self) -> int:
        """Number of edges the packet must traverse on a line topology."""
        return abs(self.destination - self.source)

    def with_round(self, new_round: int) -> "Injection":
        """Return a copy of this injection re-timed to ``new_round``.

        Used by the :math:`\\ell`-reduction (Definition 2.4), which re-times
        packets to phase boundaries without changing source or destination.
        """
        return Injection(new_round, self.source, self.destination, self.packet_id)


@dataclass
class Packet:
    """A mutable in-flight packet tracked by the simulation engine.

    Attributes
    ----------
    injection:
        The immutable injection record.
    location:
        The node currently storing this packet (meaningful only while the
        packet is ``IN_TRANSIT``).
    state:
        Lifecycle state.
    accepted_round:
        Round in which the algorithm accepted the packet into a buffer.  For
        most algorithms this equals ``injection.round``; for HPTS it is the
        first round of the following phase.
    delivered_round:
        Round in which the packet reached its destination, or ``None``.
    hops:
        Number of forwarding steps the packet has taken so far.
    """

    injection: Injection
    location: int
    state: PacketState = PacketState.IN_TRANSIT
    accepted_round: Optional[int] = None
    delivered_round: Optional[int] = None
    hops: int = 0

    @classmethod
    def from_injection(cls, injection: Injection, *, staged: bool = False) -> "Packet":
        """Create an in-flight packet at its injection site."""
        state = PacketState.STAGED if staged else PacketState.IN_TRANSIT
        return cls(injection=injection, location=injection.source, state=state)

    # -- convenience accessors ------------------------------------------------

    @property
    def packet_id(self) -> int:
        return self.injection.packet_id

    @property
    def source(self) -> int:
        return self.injection.source

    @property
    def destination(self) -> int:
        return self.injection.destination

    @property
    def injected_round(self) -> int:
        return self.injection.round

    @property
    def delivered(self) -> bool:
        return self.state is PacketState.DELIVERED

    @property
    def latency(self) -> Optional[int]:
        """Rounds from injection to delivery, or ``None`` if undelivered."""
        if self.delivered_round is None:
            return None
        return self.delivered_round - self.injection.round

    @property
    def remaining_distance(self) -> int:
        """Edges left to traverse on a line topology (0 when delivered)."""
        if self.delivered:
            return 0
        return abs(self.destination - self.location)

    # -- engine hooks ----------------------------------------------------------

    def accept(self, round_number: int) -> None:
        """Mark a staged packet as accepted into a buffer."""
        self.state = PacketState.IN_TRANSIT
        self.accepted_round = round_number

    def advance(self, new_location: int) -> None:
        """Move the packet one hop to ``new_location``."""
        self.location = new_location
        self.hops += 1

    def deliver(self, round_number: int) -> None:
        """Absorb the packet at its destination."""
        self.state = PacketState.DELIVERED
        self.delivered_round = round_number

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(id={self.packet_id}, src={self.source}, dst={self.destination}, "
            f"t={self.injected_round}, at={self.location}, state={self.state.value})"
        )


def make_injection(round: int, source: int, destination: int) -> Injection:
    """Create an :class:`Injection` with a fresh unique packet id."""
    return Injection(round, source, destination, next(packet_id_counter))
