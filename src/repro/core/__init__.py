"""Core contribution: the paper's forwarding algorithms and their analysis toolkit."""

from . import badness, bounds
from .excess import ExcessTracker, excess_brute_force
from .hierarchy import (
    HierarchicalPartition,
    Segment,
    base_m_digits,
    digits_to_index,
    factor_as_power,
    is_perfect_power,
)
from .hpts import HierarchicalPeakToSink
from .local import DownhillForwarding, LocalThresholdForwarding
from .packet import (
    Injection,
    Packet,
    PacketState,
    make_injection,
    packet_id_scope,
    reset_packet_ids,
)
from .ppts import ParallelPeakToSink
from .pseudobuffer import NodeBuffer, PseudoBuffer, QueueDiscipline
from .pts import PeakToSink
from .scheduler import Activation, ForwardingAlgorithm
from .tree import TreeParallelPeakToSink, TreePeakToSink

__all__ = [
    "badness",
    "bounds",
    "ExcessTracker",
    "excess_brute_force",
    "HierarchicalPartition",
    "Segment",
    "base_m_digits",
    "digits_to_index",
    "factor_as_power",
    "is_perfect_power",
    "HierarchicalPeakToSink",
    "DownhillForwarding",
    "LocalThresholdForwarding",
    "Injection",
    "Packet",
    "PacketState",
    "make_injection",
    "packet_id_scope",
    "reset_packet_ids",
    "ParallelPeakToSink",
    "NodeBuffer",
    "PseudoBuffer",
    "QueueDiscipline",
    "PeakToSink",
    "Activation",
    "ForwardingAlgorithm",
    "TreeParallelPeakToSink",
    "TreePeakToSink",
]
