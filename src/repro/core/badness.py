"""Badness accounting (Definitions 3.3, 4.4, 4.5 and B.4).

The paper's analysis of PTS / PPTS / HPTS revolves around *badness*: a packet
is bad if it sits at position >= 2 inside its pseudo-buffer, and the badness
``B_k(i)`` of a buffer ``i`` with respect to destination ``w_k`` counts the
bad ``k``-packets in buffers ``i' <= i`` (i.e. also upstream of ``i``).  The
key invariants are

* PPTS (Prop. 3.2):    ``B^t(i) <= xi_t(i) + 1`` and ``B^{t+}(i) <= xi_t(i)``,
* HPTS (Thm. 4.1):     the same per phase, with badness refined by level.

These functions compute badness directly from a buffer configuration so the
test suite can check the invariants independently of the algorithms'
internal bookkeeping, and so the benchmarks can report badness trajectories.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

from ..network.topology import TreeTopology
from .pseudobuffer import NodeBuffer

__all__ = [
    "pseudo_buffer_badness",
    "line_badness_by_destination",
    "line_total_badness",
    "line_badness_single_destination",
    "hpts_level_badness",
    "hpts_total_badness",
    "tree_badness",
    "tree_badness_by_destination",
]


def pseudo_buffer_badness(load: int) -> int:
    """``beta`` for a pseudo-buffer with the given load: ``max(load - 1, 0)``."""
    return max(load - 1, 0)


# ---------------------------------------------------------------------------
# Line topology (Sections 3.1-3.2)
# ---------------------------------------------------------------------------


def line_badness_single_destination(
    buffers: Mapping[int, NodeBuffer],
    destination: int,
) -> Dict[int, int]:
    """Single-destination badness ``B^t(i)`` for PTS (proof of Prop. 3.1).

    With one destination ``w``, the badness of the network is the total number
    of packets stored at position >= 2 in any buffer to the left of ``w``.
    The returned mapping gives, for every buffer ``i``, the number of bad
    packets in buffers ``i' <= i`` — the prefix sums used in the proof.
    """
    prefix = 0
    result: Dict[int, int] = {}
    for i in sorted(buffers):
        node_buffer = buffers[i]
        if i < destination:
            prefix += pseudo_buffer_badness(node_buffer.load)
        result[i] = prefix
    return result


def line_badness_by_destination(
    buffers: Mapping[int, NodeBuffer],
    destinations: Sequence[int],
) -> Dict[Tuple[int, int], int]:
    """Per-destination badness ``B^t_k(i)`` for PPTS (Definition 3.3).

    ``B^t_k(i)`` is the number of ``k``-bad packets (packets at position >= 2
    in a ``k``-pseudo-buffer) stored in buffers ``i' <= i``, counted only when
    the destination ``w_k`` lies strictly to the right of ``i``.

    Parameters
    ----------
    buffers:
        Mapping from node index to its :class:`NodeBuffer`; pseudo-buffer keys
        are destination node indices (the PPTS convention).
    destinations:
        The destination set ``W`` in increasing order.

    Returns
    -------
    dict
        ``{(i, w_k): B_k(i)}`` for every buffer ``i`` and destination ``w_k``.
    """
    sorted_nodes = sorted(buffers)
    result: Dict[Tuple[int, int], int] = {}
    for w in destinations:
        prefix = 0
        for i in sorted_nodes:
            if i < w:
                prefix += pseudo_buffer_badness(buffers[i].load_of(w))
            result[(i, w)] = prefix if w > i else 0
    return result


def line_total_badness(
    buffers: Mapping[int, NodeBuffer],
    destinations: Sequence[int],
) -> Dict[int, int]:
    """Total badness ``B^t(i) = sum_k B^t_k(i)`` over destinations ``w_k > i``.

    This is the quantity bounded by ``xi_t(i) + 1`` in Proposition 3.2.
    """
    per_destination = line_badness_by_destination(buffers, destinations)
    result: Dict[int, int] = {}
    for i in buffers:
        result[i] = sum(
            per_destination[(i, w)] for w in destinations if w > i
        )
    return result


# ---------------------------------------------------------------------------
# HPTS level badness (Definitions 4.4-4.5)
# ---------------------------------------------------------------------------


def hpts_level_badness(
    buffers: Mapping[int, NodeBuffer],
    level_intervals: Mapping[int, Sequence[Tuple[int, int]]],
) -> Dict[Tuple[int, int, Hashable], int]:
    """Per-(level, intermediate destination) badness ``B^t_{j,k}(i)``.

    For HPTS a pseudo-buffer key is a pair ``(level, intermediate_destination)``.
    The ``(j, k)``-badness of buffer ``i`` sums bad packets over buffers
    ``i' in [a, i]`` where ``[a, b]`` is the level-``j`` interval containing
    ``i`` — the prefix restarts at every interval boundary, unlike the PPTS
    case where it spans the whole line.

    Parameters
    ----------
    buffers:
        Node buffers keyed by ``(level, intermediate_destination)``.
    level_intervals:
        ``{level: [(a_0, b_0), (a_1, b_1), ...]}``, the level-``j`` partition
        of the line into intervals (inclusive endpoints).

    Returns
    -------
    dict
        ``{(i, level, intermediate_destination): B_{j,k}(i)}``.
    """
    result: Dict[Tuple[int, int, Hashable], int] = {}
    for level, intervals in level_intervals.items():
        for (a, b) in intervals:
            # Collect the (level, w) keys present anywhere in this interval.
            keys = set()
            for i in range(a, b + 1):
                node_buffer = buffers.get(i)
                if node_buffer is None:
                    continue
                for key in node_buffer.keys():
                    if isinstance(key, tuple) and len(key) == 2 and key[0] == level:
                        keys.add(key)
            for key in keys:
                prefix = 0
                for i in range(a, b + 1):
                    node_buffer = buffers.get(i)
                    if node_buffer is not None:
                        prefix += pseudo_buffer_badness(node_buffer.load_of(key))
                    result[(i, level, key[1])] = prefix
    return result


def hpts_total_badness(
    buffers: Mapping[int, NodeBuffer],
    level_intervals: Mapping[int, Sequence[Tuple[int, int]]],
) -> Dict[int, int]:
    """Total badness ``B^t(i) = sum_j sum_k B^t_{j,k}(i)`` (Definition 4.5)."""
    per_key = hpts_level_badness(buffers, level_intervals)
    result: Dict[int, int] = {i: 0 for i in buffers}
    for (i, _level, _w), value in per_key.items():
        if i in result:
            result[i] += value
    return result


# ---------------------------------------------------------------------------
# Directed trees (Appendix B.2, Definition B.4)
# ---------------------------------------------------------------------------


def tree_badness(
    buffers: Mapping[int, NodeBuffer],
    tree: TreeTopology,
) -> Dict[int, int]:
    """Single-destination tree badness ``B^t(v) = sum_{u <= v} beta(u)``.

    ``beta(u)`` is the number of bad packets at node ``u`` (counting the whole
    node buffer, since there is a single destination — the root) and the sum
    ranges over the subtree rooted at ``v`` (all nodes upstream of ``v``).
    """
    result: Dict[int, int] = {}
    for v in tree.nodes:
        total = 0
        for u in tree.subtree(v):
            node_buffer = buffers.get(u)
            if node_buffer is not None:
                total += pseudo_buffer_badness(node_buffer.load)
        result[v] = total
    return result


def tree_badness_by_destination(
    buffers: Mapping[int, NodeBuffer],
    tree: TreeTopology,
    destinations: Iterable[int],
) -> Dict[Tuple[int, int], int]:
    """Per-destination tree badness ``B^t_k(v)`` for the tree variant of PPTS.

    ``B^t_k(v)`` counts bad packets destined for ``w_k`` in the subtree rooted
    at ``v``, but only when ``w_k`` is a strict ancestor of ``v`` (otherwise
    those packets never cross ``v``).
    """
    result: Dict[Tuple[int, int], int] = {}
    destination_list = list(destinations)
    subtree_cache: Dict[int, List[int]] = {v: tree.subtree(v) for v in tree.nodes}
    for w in destination_list:
        for v in tree.nodes:
            if v == w or not tree.is_upstream(v, w):
                result[(v, w)] = 0
                continue
            total = 0
            for u in subtree_cache[v]:
                node_buffer = buffers.get(u)
                if node_buffer is not None:
                    total += pseudo_buffer_badness(node_buffer.load_of(w))
            result[(v, w)] = total
    return result
