"""Peak-to-Sink (PTS) forwarding — Algorithm 1, Proposition 3.1.

All packets share a single destination ``w``.  Each round, PTS finds the
left-most *bad* buffer (one holding at least two packets) and activates every
non-empty buffer from there up to ``w - 1``; they all forward simultaneously.
If no buffer is bad, nothing forwards.

Proposition 3.1: against any ``(rho, sigma)``-bounded adversary with
``rho <= 1``, the maximum buffer occupancy is at most ``2 + sigma``.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from ..api.registry import register_algorithm
from ..network.errors import ConfigurationError, SchedulingError
from ..network.topology import LineTopology
from .packet import Packet
from .pseudobuffer import QueueDiscipline
from .scheduler import Activation, ForwardingAlgorithm
from . import bounds

__all__ = ["PeakToSink"]


@register_algorithm("pts")
class PeakToSink(ForwardingAlgorithm):
    """The single-destination PTS algorithm on a line.

    Parameters
    ----------
    topology:
        The line.
    destination:
        The common destination ``w``; defaults to the right end of the line.
        Packets with any other destination are rejected at injection time.
    work_conserving:
        Optional extension (off by default, see DESIGN.md): when no buffer is
        bad, still forward from every non-empty buffer.  The paper's bound
        holds either way; the extension only reduces latency and is measured
        in the E9 ablation benchmark.
    """

    name = "PTS"
    supports_sharding = True

    #: Debug/equivalence switch: ``False`` restores the seed engine's
    #: per-round linear scans (the indices stay maintained either way).
    use_incremental_selection = True

    def __init__(
        self,
        topology: LineTopology,
        destination: Optional[int] = None,
        *,
        work_conserving: bool = False,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        if destination is None:
            destination = topology.num_nodes - 1
        max_destination = (
            topology.num_nodes if topology.allow_virtual_sink else topology.num_nodes - 1
        )
        if not (1 <= destination <= max_destination):
            raise ConfigurationError(
                f"destination {destination} outside [1, {max_destination}]"
            )
        self.destination = destination
        self.work_conserving = work_conserving

    # -- ForwardingAlgorithm interface ------------------------------------------

    def classify(self, packet: Packet, node: int) -> Hashable:
        if packet.destination != self.destination:
            raise SchedulingError(
                f"PTS is single-destination (w={self.destination}); got a packet "
                f"for {packet.destination}"
            )
        return self.destination

    def select_activations(self, round_number: int) -> List[Activation]:
        if not self.use_incremental_selection:
            return self._select_activations_scan(round_number)
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        leftmost_bad = self._index.leftmost_bad(self.destination, 0, last_buffer)
        if leftmost_bad is None:
            if not self.work_conserving:
                return []
            start = 0
        else:
            start = leftmost_bad
        return [
            Activation(node=i, key=self.destination)
            for i in self._index.nonempty_in(self.destination, start, last_buffer)
        ]

    def theoretical_bound(self, sigma: float) -> float:
        """Proposition 3.1: ``2 + sigma``."""
        return bounds.pts_upper_bound(sigma)

    # -- segment (sharded) selection -----------------------------------------------

    def boundary_view(self, round_number, lo, hi):
        """The segment's left-most bad buffer — all PTS selection needs."""
        return {"bad": self._index.bad(self.destination).first_in(lo, hi)}

    def select_segment_activations(self, round_number, segment_index, segments,
                                   views, carry):
        """Exact PTS restricted to one segment.

        The global left-most bad buffer is the minimum of the per-segment
        left-most bad positions; everything non-empty from there to ``w - 1``
        activates, so this segment contributes its own non-empty positions in
        the intersection with ``[leftmost, w - 1]``.
        """
        lo, hi = segments[segment_index]
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        bad_positions = [
            view["bad"] for view in views if view["bad"] is not None
        ]
        leftmost_bad = min(bad_positions) if bad_positions else None
        if leftmost_bad is None or leftmost_bad > last_buffer:
            if not self.work_conserving:
                return [], None
            start = 0
        else:
            start = leftmost_bad
        activations = [
            Activation(node=i, key=self.destination)
            for i in self._index.nonempty_in(
                self.destination, max(start, lo), min(last_buffer, hi)
            )
        ]
        return activations, None

    # -- internals ----------------------------------------------------------------

    def _select_activations_scan(self, round_number: int) -> List[Activation]:
        """The seed engine's O(n) selection, kept as the reference path."""
        leftmost_bad = self._leftmost_bad_buffer()
        if leftmost_bad is None:
            if not self.work_conserving:
                return []
            start = 0
        else:
            start = leftmost_bad
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        return [
            Activation(node=i, key=self.destination)
            for i in range(start, last_buffer + 1)
            if self.buffers[i].load_of(self.destination) > 0
        ]

    def _leftmost_bad_buffer(self) -> Optional[int]:
        """The left-most buffer holding at least two packets, by full scan."""
        last_buffer = min(self.destination - 1, self.topology.num_nodes - 1)
        for i in range(0, last_buffer + 1):
            if self.buffers[i].load >= 2:
                return i
        return None
