"""Excess tracking (Definition 2.2) and (rho, sigma)-boundedness (Definition 2.1).

For an adversary ``A``, a buffer ``v`` and a round ``t``, the *excess* is

.. math::

    \\xi_t(v) = \\max_{s \\le t} \\Big( \\{ N_{[s,t]}(v) - \\rho (t - s + 1) \\} \\cup \\{0\\} \\Big)

where ``N_T(v)`` counts packets injected during ``T`` whose paths contain
``v``.  Lemma 2.3 shows that for a (rho, sigma)-bounded adversary the excess
never exceeds sigma, and that the per-round injection crossing ``v`` is at
most ``xi_t(v) - xi_{t-1}(v) + rho``.

The incremental recurrence used by :class:`ExcessTracker` is the standard
leaky-bucket identity

.. math::

    \\xi_t(v) = \\max(\\xi_{t-1}(v) + N_{\\{t\\}}(v) - \\rho,\\; N_{\\{t\\}}(v) - \\rho,\\; 0)
             = \\max(\\xi_{t-1}(v), 0)\\ \\text{-ish}

which we verify against the brute-force definition in the test suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["ExcessTracker", "excess_brute_force"]


class ExcessTracker:
    """Incrementally maintains the excess ``xi_t(v)`` of every buffer.

    Parameters
    ----------
    num_nodes:
        Number of buffers (nodes) tracked, indexed ``0 .. num_nodes - 1``.
    rho:
        The adversary's average-rate parameter.

    Notes
    -----
    The tracker is driven by the simulator: at each round it is told, for
    every buffer, how many newly injected packets have that buffer on their
    path (``N_{t}(v)``), and it updates the running excess.  The recurrence

    ``xi_t(v) = max(xi_{t-1}(v) + N_t(v) - rho, N_t(v) - rho, 0)``

    follows from splitting the maximising interval ``[s, t]`` into the case
    ``s = t`` and the case ``s < t``.  Because ``N_t(v) >= 0`` and ``rho >= 0``
    the middle term is dominated by the first whenever ``xi_{t-1}(v) >= 0``,
    so the implementation simply uses ``max(xi_{t-1} + N_t - rho, 0)``.
    """

    __slots__ = ("num_nodes", "rho", "_excess", "_previous", "round")

    def __init__(self, num_nodes: int, rho: float) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if rho < 0:
            raise ValueError("rho must be non-negative")
        self.num_nodes = num_nodes
        self.rho = float(rho)
        self._excess: List[float] = [0.0] * num_nodes
        self._previous: List[float] = [0.0] * num_nodes
        self.round = -1

    def observe_round(self, crossings: Dict[int, int]) -> None:
        """Advance one round.

        Parameters
        ----------
        crossings:
            Maps a buffer index ``v`` to ``N_{t}(v)``, the number of packets
            injected this round whose path contains ``v``.  Buffers absent
            from the mapping received no crossing injections.
        """
        self.round += 1
        self._previous = list(self._excess)
        for v in range(self.num_nodes):
            injected = crossings.get(v, 0)
            self._excess[v] = max(self._excess[v] + injected - self.rho, 0.0)

    def excess(self, v: int) -> float:
        """Current excess ``xi_t(v)``."""
        return self._excess[v]

    def previous_excess(self, v: int) -> float:
        """Excess at the previous round, ``xi_{t-1}(v)``."""
        return self._previous[v]

    def max_excess(self) -> float:
        """Maximum excess over all buffers (<= sigma for bounded adversaries)."""
        return max(self._excess) if self._excess else 0.0

    def snapshot(self) -> List[float]:
        """Copy of the per-buffer excess vector."""
        return list(self._excess)


def excess_brute_force(
    crossings_per_round: Sequence[Dict[int, int]],
    v: int,
    rho: float,
) -> float:
    """Compute ``xi_t(v)`` directly from Definition 2.2.

    ``crossings_per_round[t]`` maps buffers to the number of injections in
    round ``t`` whose paths contain them; the returned value is the excess at
    the final round ``t = len(crossings_per_round) - 1``.  This quadratic
    routine exists to cross-check :class:`ExcessTracker` in tests.
    """
    t = len(crossings_per_round) - 1
    if t < 0:
        return 0.0
    best = 0.0
    cumulative = 0
    # Iterate s from t down to 0, accumulating N_{[s, t]}(v).
    for s in range(t, -1, -1):
        cumulative += crossings_per_round[s].get(v, 0)
        candidate = cumulative - rho * (t - s + 1)
        best = max(best, candidate)
    return best
