"""Incrementally maintained indices over (pseudo-)buffer occupancy.

The delta-driven engine replaces the per-round linear scans of PTS, PPTS,
HPTS and the tree algorithms ("find the left-most bad buffer") with sorted
sets of buffer positions that are updated whenever a pseudo-buffer's length
crosses the relevant thresholds:

* *nonempty* — the pseudo-buffer holds at least one packet (threshold 1);
* *bad*      — the pseudo-buffer holds at least ``bad_threshold`` packets
  (Definition 3.3 / 4.4 uses 2; :class:`repro.core.local` rules may use a
  configurable congestion threshold).

:class:`SortedIndexSet` is a sorted list + membership set (``bisect``-based;
insertions shift the underlying list, but the sets track only nonempty/bad
positions so they stay small, and updates happen only when a threshold is
actually crossed — O(packets moved), not O(n), per round).
:class:`BufferIndex` groups one pair of index sets per pseudo-buffer key and
is fed from :meth:`repro.core.scheduler.ForwardingAlgorithm.on_buffer_change`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Hashable, Iterator, List, Optional

__all__ = ["SortedIndexSet", "BufferIndex"]


class SortedIndexSet:
    """A set of integer positions supporting ordered queries.

    Backed by a sorted list (for ``first_in`` / ``range_iter``) and a set
    (for O(1) membership checks that keep ``add``/``discard`` idempotent).
    """

    __slots__ = ("_items", "_members")

    def __init__(self) -> None:
        self._items: List[int] = []
        self._members: set = set()

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __contains__(self, value: int) -> bool:
        return value in self._members

    def __iter__(self) -> Iterator[int]:
        """Iterate positions in ascending order."""
        return iter(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SortedIndexSet({self._items})"

    def add(self, value: int) -> None:
        if value in self._members:
            return
        self._members.add(value)
        insort(self._items, value)

    def discard(self, value: int) -> None:
        if value not in self._members:
            return
        self._members.discard(value)
        index = bisect_left(self._items, value)
        del self._items[index]

    def first(self) -> Optional[int]:
        """The smallest position, or ``None`` if empty."""
        return self._items[0] if self._items else None

    def first_in(self, lo: int, hi: int) -> Optional[int]:
        """The smallest position in ``[lo, hi]``, or ``None``."""
        index = bisect_left(self._items, lo)
        if index < len(self._items) and self._items[index] <= hi:
            return self._items[index]
        return None

    def last_in(self, lo: int, hi: int) -> Optional[int]:
        """The largest position in ``[lo, hi]``, or ``None``."""
        index = bisect_right(self._items, hi)
        if index > 0 and self._items[index - 1] >= lo:
            return self._items[index - 1]
        return None

    def range_iter(self, lo: int, hi: int) -> Iterator[int]:
        """All positions in ``[lo, hi]``, ascending."""
        index = bisect_left(self._items, lo)
        while index < len(self._items) and self._items[index] <= hi:
            yield self._items[index]
            index += 1


class BufferIndex:
    """Per-key nonempty/bad position indices for one forwarding algorithm.

    ``update`` is a no-op unless the length change crossed a threshold;
    when it did, the insort/delete costs O(s) worst case in the size ``s``
    of the affected index set (the backing list shifts).  Queries are
    O(log s).  The aggregate maintenance cost per round stays proportional
    to the number of packets that moved, with a list-shift constant that is
    tiny in practice because membership only churns at threshold crossings.
    """

    __slots__ = ("bad_threshold", "_nonempty", "_bad")

    def __init__(self, bad_threshold: int = 2) -> None:
        self.bad_threshold = bad_threshold
        self._nonempty: Dict[Hashable, SortedIndexSet] = {}
        self._bad: Dict[Hashable, SortedIndexSet] = {}

    # -- maintenance -----------------------------------------------------------

    def update(self, node: int, key: Hashable, old_len: int, new_len: int) -> None:
        """Fold one pseudo-buffer length change into the indices."""
        if old_len == 0 and new_len > 0:
            self._set_for(self._nonempty, key).add(node)
        elif new_len == 0 and old_len > 0:
            existing = self._nonempty.get(key)
            if existing is not None:
                existing.discard(node)
        threshold = self.bad_threshold
        if old_len < threshold <= new_len:
            self._set_for(self._bad, key).add(node)
        elif new_len < threshold <= old_len:
            existing = self._bad.get(key)
            if existing is not None:
                existing.discard(node)

    def _set_for(
        self, table: Dict[Hashable, SortedIndexSet], key: Hashable
    ) -> SortedIndexSet:
        index_set = table.get(key)
        if index_set is None:
            index_set = SortedIndexSet()
            table[key] = index_set
        return index_set

    # -- queries ----------------------------------------------------------------

    def nonempty(self, key: Hashable) -> SortedIndexSet:
        """Positions whose ``key`` pseudo-buffer holds >= 1 packet."""
        return self._nonempty.get(key) or _EMPTY

    def bad_keys(self) -> List[Hashable]:
        """Keys with at least one bad position anywhere (any order)."""
        return [key for key, index_set in self._bad.items() if index_set]

    def bad(self, key: Hashable) -> SortedIndexSet:
        """Positions whose ``key`` pseudo-buffer holds >= ``bad_threshold``."""
        return self._bad.get(key) or _EMPTY

    def leftmost_bad(self, key: Hashable, lo: int, hi: int) -> Optional[int]:
        """Smallest bad position in ``[lo, hi]`` for ``key``, or ``None``."""
        return self.bad(key).first_in(lo, hi)

    def nonempty_in(self, key: Hashable, lo: int, hi: int) -> Iterator[int]:
        """Nonempty positions in ``[lo, hi]`` for ``key``, ascending."""
        return self.nonempty(key).range_iter(lo, hi)

    def has_nonempty_in(self, key: Hashable, lo: int, hi: int) -> bool:
        return self.nonempty(key).first_in(lo, hi) is not None


#: Shared immutable empty set returned for keys that never saw a packet.
_EMPTY = SortedIndexSet()
