"""Closed-form buffer-space bounds stated in the paper.

Each function returns the bound exactly as stated in the corresponding
proposition or theorem, so benchmarks can print "measured vs. bound" columns
and tests can assert ``measured <= bound``.

Summary of the bounds (line topology unless noted):

===========  ==========================================================
Paper item   Bound
===========  ==========================================================
Prop. 3.1    PTS, single destination:           ``2 + sigma``
Prop. 3.2    PPTS, ``d`` destinations:          ``1 + d + sigma``
Prop. 3.5    tree PPTS, destination depth d':   ``1 + d' + sigma``
Thm. 4.1     HPTS with ``ell`` levels:          ``ell * n**(1/ell) + sigma + 1``
Thm. 5.1     lower bound (any protocol):        ``((ell+1)rho - 1) / (2 ell) * n**(1/ell)``
Abstract     destinations form, k = floor(1/rho): ``O(k d**(1/k))`` upper,
             ``Omega(d**(1/k) / k)`` lower
===========  ==========================================================
"""

from __future__ import annotations

import math
from typing import Optional

from ..network.errors import ConfigurationError

__all__ = [
    "pts_upper_bound",
    "ppts_upper_bound",
    "tree_ppts_upper_bound",
    "hpts_upper_bound",
    "lower_bound",
    "destination_upper_bound",
    "destination_lower_bound",
    "optimal_levels",
    "max_levels_for_rate",
    "log_destination_threshold_rate",
    "bandwidth_space_tradeoff",
]


def _check_sigma(sigma: float) -> None:
    if sigma < 0:
        raise ConfigurationError(f"sigma must be non-negative, got {sigma}")


def _check_rho(rho: float) -> None:
    if not (0 < rho <= 1):
        raise ConfigurationError(f"rho must satisfy 0 < rho <= 1, got {rho}")


def pts_upper_bound(sigma: float) -> float:
    """Proposition 3.1: PTS keeps every buffer at most ``2 + sigma``."""
    _check_sigma(sigma)
    return 2 + sigma


def ppts_upper_bound(num_destinations: int, sigma: float) -> float:
    """Proposition 3.2: PPTS with ``d`` destinations uses at most ``1 + d + sigma``."""
    _check_sigma(sigma)
    if num_destinations < 1:
        raise ConfigurationError(
            f"num_destinations must be >= 1, got {num_destinations}"
        )
    return 1 + num_destinations + sigma


def tree_ppts_upper_bound(destination_depth: int, sigma: float) -> float:
    """Proposition 3.5: tree PPTS uses at most ``1 + d' + sigma``.

    ``destination_depth`` is ``d'``, the maximum number of destinations on any
    leaf-root path.
    """
    _check_sigma(sigma)
    if destination_depth < 0:
        raise ConfigurationError(
            f"destination_depth must be >= 0, got {destination_depth}"
        )
    return 1 + destination_depth + sigma


def hpts_upper_bound(num_nodes: int, levels: int, sigma: float) -> float:
    """Theorem 4.1: HPTS with ``ell`` levels uses at most ``ell * n**(1/ell) + sigma + 1``.

    Requires ``rho * ell <= 1`` for the theorem to apply; that precondition is
    checked by the algorithm, not here, since the bound itself is just a
    formula in ``n``, ``ell`` and ``sigma``.
    """
    _check_sigma(sigma)
    if num_nodes < 2:
        raise ConfigurationError(f"num_nodes must be >= 2, got {num_nodes}")
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    return levels * num_nodes ** (1.0 / levels) + sigma + 1


def lower_bound(num_nodes: int, levels: int, rho: float) -> float:
    """Theorem 5.1: any protocol needs ``((ell+1)rho - 1) / (2 ell) * n**(1/ell)`` space.

    Valid for ``rho > 1 / (ell + 1)``; returns 0 when the premise fails (the
    theorem gives no information there).
    """
    _check_rho(rho)
    if num_nodes < 2:
        raise ConfigurationError(f"num_nodes must be >= 2, got {num_nodes}")
    if levels < 1:
        raise ConfigurationError(f"levels must be >= 1, got {levels}")
    coefficient = (levels + 1) * rho - 1
    if coefficient <= 0:
        return 0.0
    return coefficient / (2.0 * levels) * num_nodes ** (1.0 / levels)


def optimal_levels(rho: float) -> int:
    """The hierarchy depth ``k = floor(1 / rho)`` used by the headline result.

    The abstract's ``O(k d**(1/k))`` bound picks ``k = floor(1/rho)``, the
    deepest hierarchy whose time-division multiplexing still fits in the
    available bandwidth (``rho * k <= 1``).
    """
    _check_rho(rho)
    return max(1, math.floor(1.0 / rho))


def max_levels_for_rate(rho: float) -> int:
    """Largest ``ell`` with ``rho * ell <= 1`` (identical to :func:`optimal_levels`)."""
    return optimal_levels(rho)


def destination_upper_bound(
    num_destinations: int,
    rho: float,
    sigma: float,
    levels: Optional[int] = None,
) -> float:
    """The headline upper bound ``O(k d**(1/k) + sigma)`` with ``k = floor(1/rho)``.

    This is the destination-parameterised form from the abstract and the
    introduction: run HPTS over the ``d`` distinct destinations (rather than
    the ``n`` nodes), giving ``k * d**(1/k) + sigma + 1`` space.
    """
    _check_rho(rho)
    _check_sigma(sigma)
    if num_destinations < 1:
        raise ConfigurationError(
            f"num_destinations must be >= 1, got {num_destinations}"
        )
    k = levels if levels is not None else optimal_levels(rho)
    if k < 1:
        raise ConfigurationError(f"levels must be >= 1, got {k}")
    return k * num_destinations ** (1.0 / k) + sigma + 1


def destination_lower_bound(
    num_destinations: int,
    rho: float,
    levels: Optional[int] = None,
) -> float:
    """The headline lower bound ``Omega(d**(1/k) / k)``.

    Stated in the abstract as ``Omega(1/k * d**(1/k))`` with ``k = floor(1/rho)``;
    the constant is the one from Theorem 5.1 applied with ``n ~ d``.
    """
    _check_rho(rho)
    if num_destinations < 1:
        raise ConfigurationError(
            f"num_destinations must be >= 1, got {num_destinations}"
        )
    k = levels if levels is not None else optimal_levels(rho)
    coefficient = (k + 1) * rho - 1
    if coefficient <= 0:
        return 0.0
    return coefficient / (2.0 * k) * num_destinations ** (1.0 / k)


def log_destination_threshold_rate(num_destinations: int) -> float:
    """The rate ``rho = 1 / log2(d)`` below which ``O(log d)`` buffers suffice.

    The introduction notes that when ``rho <= 1 / log d``, picking
    ``k = log d`` levels gives ``k * d**(1/k) = O(log d)`` space.
    """
    if num_destinations < 2:
        raise ConfigurationError(
            f"need at least 2 destinations for a meaningful threshold, "
            f"got {num_destinations}"
        )
    return 1.0 / math.log2(num_destinations)


def bandwidth_space_tradeoff(
    num_destinations: int,
    scale_factor: float,
    sigma: float,
    rho: float,
) -> dict:
    """The Section 1 "implications" tradeoff, made concrete.

    Suppose a line system handles ``d`` destinations within some buffer
    budget, and the number of destinations is increased by a factor
    ``alpha = scale_factor`` at unchanged per-link load.  Two remedies are
    compared:

    * **space-only** — keep bandwidth, multiply buffers by ``alpha``
      (PPTS bound goes from ``1 + d + sigma`` to ``1 + alpha d + sigma``);
    * **space+bandwidth** — multiply both buffer space and link bandwidth by
      ``O(log alpha)`` (run HPTS with ``k = ceil(log2 alpha)`` levels, which
      needs ``k``-fold time-division of the link, i.e. ``k``-fold bandwidth
      at the original rate).

    Returns a dictionary with both costs, used by the E7 benchmark.
    """
    _check_sigma(sigma)
    _check_rho(rho)
    if scale_factor < 1:
        raise ConfigurationError(f"scale_factor must be >= 1, got {scale_factor}")
    scaled_destinations = max(1, int(round(num_destinations * scale_factor)))
    space_only_buffers = ppts_upper_bound(scaled_destinations, sigma)
    levels = max(1, math.ceil(math.log2(scale_factor))) if scale_factor > 1 else 1
    space_bandwidth_buffers = destination_upper_bound(
        scaled_destinations, rho, sigma, levels=levels
    )
    return {
        "destinations": num_destinations,
        "scale_factor": scale_factor,
        "scaled_destinations": scaled_destinations,
        "space_only_buffers": space_only_buffers,
        "space_bandwidth_levels": levels,
        "space_bandwidth_buffers": space_bandwidth_buffers,
        "bandwidth_multiplier": levels,
    }
