"""Parallel Peak-to-Sink (PPTS) forwarding — Algorithm 2, Proposition 3.2.

Each node partitions its buffer into per-destination pseudo-buffers ("virtual
output queuing").  Going from the right-most destination to the left-most,
PPTS finds the left-most bad pseudo-buffer for that destination that lies to
the left of everything already activated, and activates the interval of that
destination's pseudo-buffers from there up to (but not past) the activation
frontier.  By construction the activated intervals are pairwise disjoint, so
the forwarding pattern is feasible (Lemma B.1).

Proposition 3.2: against any ``(rho, sigma)``-bounded adversary whose packets
use ``d`` distinct destinations, the maximum buffer occupancy is at most
``1 + d + sigma``.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from ..api.registry import register_algorithm
from ..network.errors import ConfigurationError
from ..network.topology import LineTopology
from .packet import Packet
from .pseudobuffer import QueueDiscipline
from .scheduler import Activation, ForwardingAlgorithm
from . import bounds

__all__ = ["ParallelPeakToSink"]


@register_algorithm("ppts")
class ParallelPeakToSink(ForwardingAlgorithm):
    """The multi-destination PPTS algorithm on a line.

    Parameters
    ----------
    topology:
        The line.
    destinations:
        The destination set ``W``.  May be omitted, in which case the
        algorithm discovers destinations from the packets it stores — the
        paper notes PPTS "need not be told the set of destinations in
        advance".
    """

    name = "PPTS"
    supports_sharding = True

    def __init__(
        self,
        topology: LineTopology,
        destinations: Optional[Sequence[int]] = None,
        *,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        self._declared_destinations: Optional[List[int]] = None
        if destinations is not None:
            max_destination = (
                topology.num_nodes
                if topology.allow_virtual_sink
                else topology.num_nodes - 1
            )
            cleaned = sorted(set(destinations))
            for w in cleaned:
                if not (1 <= w <= max_destination):
                    raise ConfigurationError(
                        f"destination {w} outside [1, {max_destination}]"
                    )
            self._declared_destinations = cleaned
        #: Destinations actually observed among injected packets.
        self._observed_destinations: set = set()

    #: Debug/equivalence switch: ``False`` restores the seed engine's
    #: per-round linear scans (the indices stay maintained either way).
    use_incremental_selection = True

    # -- ForwardingAlgorithm interface ------------------------------------------

    def classify(self, packet: Packet, node: int) -> Hashable:
        self._observed_destinations.add(packet.destination)
        return packet.destination

    def select_activations(self, round_number: int) -> List[Activation]:
        if not self.use_incremental_selection:
            return self._select_activations_scan(round_number)
        destinations = self.destinations()
        activations: List[Activation] = []
        # The activation frontier: nothing to its right may be activated for
        # the remaining (smaller) destinations.  It starts past the largest
        # destination, playing the role of the sentinel "w_d" in Algorithm 2.
        frontier = self.topology.num_nodes
        if destinations:
            frontier = max(
                frontier, max(destinations)
            )  # virtual-sink destinations can exceed n - 1
        for w in reversed(destinations):
            last = min(frontier - 1, w - 1, self.topology.num_nodes - 1)
            bad = self._index.leftmost_bad(w, 0, last)
            if bad is None:
                continue
            for i in self._index.nonempty_in(w, bad, last):
                activations.append(Activation(node=i, key=w))
            frontier = bad
        return activations

    def _select_activations_scan(self, round_number: int) -> List[Activation]:
        """The seed engine's O(n * d) selection, kept as the reference path."""
        destinations = self.destinations()
        activations: List[Activation] = []
        frontier = self.topology.num_nodes
        if destinations:
            frontier = max(frontier, max(destinations))
        for w in reversed(destinations):
            bad = self._leftmost_bad_for(w, frontier)
            if bad is None:
                continue
            last = min(frontier - 1, w - 1, self.topology.num_nodes - 1)
            for i in range(bad, last + 1):
                if self.buffers[i].load_of(w) > 0:
                    activations.append(Activation(node=i, key=w))
            frontier = bad
        return activations

    def theoretical_bound(self, sigma: float) -> Optional[float]:
        """Proposition 3.2: ``1 + d + sigma`` (``None`` before any packet is seen)."""
        destinations = self.destinations()
        if not destinations:
            return None
        return bounds.ppts_upper_bound(len(destinations), sigma)

    # -- segment (sharded) selection -----------------------------------------------

    def boundary_view(self, round_number, lo, hi):
        """Per destination, the segment's left-most bad pseudo-buffer.

        Destinations with no bad pseudo-buffer anywhere never activate and
        never move the frontier (the cascade skips them without effect), so
        the view only carries destinations that are bad *somewhere in this
        segment* — O(congested destinations), not O(d) or O(n).
        """
        bad_map = {}
        for key in self._index.bad_keys():
            position = self._index.bad(key).first_in(lo, hi)
            if position is not None:
                bad_map[key] = position
        return {"bad": bad_map}

    def select_segment_activations(self, round_number, segment_index, segments,
                                   views, carry):
        """Exact PPTS restricted to one segment.

        Replays Algorithm 2's right-to-left frontier cascade over the merged
        per-destination left-most-bad positions.  Because every
        ``leftmost_bad`` query in the cascade has a fixed lower end (0), the
        global minimum bad position per destination is all that is needed:
        it either lies inside the query window (and is the answer) or past
        it (and the window holds no bad position at all).
        """
        lo, hi = segments[segment_index]
        merged: dict = {}
        for view in views:
            for w, position in view["bad"].items():
                current = merged.get(w)
                if current is None or position < current:
                    merged[w] = position
        if self._declared_destinations is not None:
            # With an explicit destination set the cascade only serves those
            # destinations, exactly like the single-process selection.
            declared = set(self._declared_destinations)
            merged = {w: p for w, p in merged.items() if w in declared}
        destinations = sorted(merged)
        activations: List[Activation] = []
        frontier = self.topology.num_nodes
        if destinations:
            frontier = max(frontier, max(destinations))
        for w in reversed(destinations):
            last = min(frontier - 1, w - 1, self.topology.num_nodes - 1)
            bad = merged[w]
            if bad > last:
                continue
            for i in self._index.nonempty_in(w, max(bad, lo), min(last, hi)):
                activations.append(Activation(node=i, key=w))
            frontier = bad
        return activations, None

    def fold_sibling_state(self, states) -> None:
        """Union sibling segments' observed destinations (the Prop. 3.2 ``d``)."""
        for state in states:
            self._observed_destinations.update(state.get("observed", ()))

    # -- queries ------------------------------------------------------------------

    def destinations(self) -> List[int]:
        """The destination set ``W`` currently in force, sorted ascending."""
        if self._declared_destinations is not None:
            return list(self._declared_destinations)
        return sorted(self._observed_destinations)

    # -- checkpoint support --------------------------------------------------------

    def checkpoint_state(self) -> dict:
        # Discovered destinations persist even after their packets drain, so
        # they cannot be reconstructed from the buffers alone.
        return {"observed": sorted(self._observed_destinations)}

    def restore_checkpoint_state(self, state: dict, packets) -> None:
        self._observed_destinations = set(state["observed"])

    # -- internals ----------------------------------------------------------------

    def _leftmost_bad_for(self, destination: int, frontier: int) -> Optional[int]:
        """Left-most buffer ``i < frontier`` whose ``destination``-queue is bad."""
        last = min(frontier - 1, destination - 1, self.topology.num_nodes - 1)
        for i in range(0, last + 1):
            if self.buffers[i].load_of(destination) >= 2:
                return i
        return None
