"""Buffers and pseudo-buffers ("virtual output queuing").

The paper lets every node partition its buffer into *pseudo-buffers* keyed by
destination (PPTS, Section 3.2) or by ``(level, intermediate destination)``
(HPTS, Definition 4.3).  All pseudo-buffers use LIFO priority "for
concreteness" (Section 2); the bounds do not depend on the within-queue
priority, so the discipline is configurable here.

:class:`PseudoBuffer` is a single queue.  :class:`NodeBuffer` is a node's
whole buffer: a dictionary of pseudo-buffers keyed by an arbitrary hashable
key, with helpers for the load/badness quantities the analysis needs.
"""

from __future__ import annotations

from collections import deque
from enum import Enum
from typing import Callable, Deque, Dict, Hashable, Iterable, Iterator, List, Optional

from .packet import Packet

__all__ = ["QueueDiscipline", "PseudoBuffer", "NodeBuffer"]

#: Change listener signature: ``(key, old_len, new_len)`` for pseudo-buffers,
#: ``(node, key, old_len, new_len)`` for node buffers.
PseudoChangeListener = Callable[[Hashable, int, int], None]
NodeChangeListener = Callable[[int, Hashable, int, int], None]


class QueueDiscipline(Enum):
    """Priority order within a single pseudo-buffer."""

    LIFO = "lifo"
    FIFO = "fifo"


class PseudoBuffer:
    """A single pseudo-buffer holding packets for one (virtual) destination.

    Parameters
    ----------
    key:
        Identifier of this pseudo-buffer within its node (e.g. a destination
        index, or a ``(level, destination)`` pair for HPTS).
    discipline:
        Queue discipline used when a packet is popped for forwarding.
    on_change:
        Optional listener invoked as ``on_change(key, old_len, new_len)``
        after every mutation.  :class:`NodeBuffer` uses it to keep its cached
        load/badness counters exact without re-summing.
    """

    __slots__ = ("key", "discipline", "_packets", "_on_change")

    def __init__(
        self,
        key: Hashable,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
        *,
        on_change: Optional[PseudoChangeListener] = None,
    ) -> None:
        self.key = key
        self.discipline = discipline
        self._packets: Deque[Packet] = deque()
        self._on_change = on_change

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self._packets)

    def __bool__(self) -> bool:
        return bool(self._packets)

    def __contains__(self, packet: Packet) -> bool:
        return packet in self._packets

    # -- queue operations ------------------------------------------------------

    def push(self, packet: Packet) -> None:
        """Store a packet (arrival by injection or by forwarding)."""
        self._packets.append(packet)
        if self._on_change is not None:
            new_len = len(self._packets)
            self._on_change(self.key, new_len - 1, new_len)

    def pop(self) -> Packet:
        """Remove and return the next packet according to the discipline."""
        if not self._packets:
            raise IndexError(f"pop from empty pseudo-buffer {self.key!r}")
        if self.discipline is QueueDiscipline.LIFO:
            packet = self._packets.pop()
        else:
            packet = self._packets.popleft()
        if self._on_change is not None:
            new_len = len(self._packets)
            self._on_change(self.key, new_len + 1, new_len)
        return packet

    def peek(self) -> Optional[Packet]:
        """Return the packet that :meth:`pop` would return, without removing it."""
        if not self._packets:
            return None
        if self.discipline is QueueDiscipline.LIFO:
            return self._packets[-1]
        return self._packets[0]

    def remove(self, packet: Packet) -> None:
        """Remove a specific packet (used by schedulers with custom priority)."""
        self._packets.remove(packet)
        if self._on_change is not None:
            new_len = len(self._packets)
            self._on_change(self.key, new_len + 1, new_len)

    def packets(self) -> List[Packet]:
        """Snapshot of the stored packets, oldest first."""
        return list(self._packets)

    # -- analysis quantities ---------------------------------------------------

    @property
    def load(self) -> int:
        """``|L_k(i)|`` — number of stored packets."""
        return len(self._packets)

    @property
    def is_bad(self) -> bool:
        """Definition 3.3 / 4.4: a pseudo-buffer is *bad* if it holds >= 2 packets."""
        return len(self._packets) >= 2

    @property
    def bad_packet_count(self) -> int:
        """``beta`` — number of packets stored at position >= 2 (max(load - 1, 0))."""
        return max(len(self._packets) - 1, 0)


class NodeBuffer:
    """The complete buffer of one node, partitioned into pseudo-buffers.

    The node lazily creates pseudo-buffers on first use, mirroring the paper's
    remark that PPTS need not know the destination set in advance: only
    destinations that actually receive packets ever materialise a queue.

    Load and badness totals (``load``, ``total_bad``) are cached counters,
    updated by the pseudo-buffers' change notifications on every push / pop /
    remove, so reading them is O(1) regardless of how many pseudo-buffers the
    node has accumulated.  An optional ``on_change`` listener receives
    ``(node, key, old_len, new_len)`` after each mutation — the forwarding
    algorithm uses it to keep its occupancy delta and bad-buffer indices live.

    Both buffer classes are slotted: a million-node network materialises one
    :class:`NodeBuffer` per node up front, so the per-instance ``__dict__``
    would dominate the engine's idle footprint.
    """

    __slots__ = ("node", "discipline", "_pseudo", "_load", "_total_bad", "_on_change")

    def __init__(
        self,
        node: int,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
        *,
        on_change: Optional[NodeChangeListener] = None,
    ) -> None:
        self.node = node
        self.discipline = discipline
        self._pseudo: Dict[Hashable, PseudoBuffer] = {}
        self._load = 0
        self._total_bad = 0
        self._on_change = on_change

    def _pseudo_changed(self, key: Hashable, old_len: int, new_len: int) -> None:
        self._load += new_len - old_len
        self._total_bad += (new_len - 1 if new_len > 1 else 0) - (
            old_len - 1 if old_len > 1 else 0
        )
        if self._on_change is not None:
            self._on_change(self.node, key, old_len, new_len)

    # -- pseudo-buffer management ----------------------------------------------

    def pseudo_buffer(self, key: Hashable) -> PseudoBuffer:
        """Return (creating if necessary) the pseudo-buffer for ``key``."""
        pb = self._pseudo.get(key)
        if pb is None:
            pb = PseudoBuffer(key, self.discipline, on_change=self._pseudo_changed)
            self._pseudo[key] = pb
        return pb

    def existing(self, key: Hashable) -> Optional[PseudoBuffer]:
        """Return the pseudo-buffer for ``key`` if it exists, else ``None``."""
        return self._pseudo.get(key)

    def keys(self) -> List[Hashable]:
        """Keys of all (possibly empty) pseudo-buffers created so far."""
        return list(self._pseudo.keys())

    def nonempty_keys(self) -> List[Hashable]:
        """Keys of pseudo-buffers currently holding at least one packet."""
        return [key for key, pb in self._pseudo.items() if pb]

    def pseudo_buffers(self) -> Iterable[PseudoBuffer]:
        return self._pseudo.values()

    def drop_empty(self) -> None:
        """Garbage-collect empty pseudo-buffers (keeps long runs lean)."""
        self._pseudo = {k: pb for k, pb in self._pseudo.items() if pb}

    # -- packet operations -----------------------------------------------------

    def store(self, packet: Packet, key: Hashable) -> None:
        """Store ``packet`` under pseudo-buffer ``key``."""
        self.pseudo_buffer(key).push(packet)

    def pop_from(self, key: Hashable) -> Packet:
        """Pop the next packet from pseudo-buffer ``key``."""
        pb = self._pseudo.get(key)
        if pb is None or not pb:
            raise IndexError(f"node {self.node}: pseudo-buffer {key!r} is empty")
        return pb.pop()

    def all_packets(self) -> List[Packet]:
        """All packets stored at this node, grouped by pseudo-buffer."""
        result: List[Packet] = []
        for pb in self._pseudo.values():
            result.extend(pb.packets())
        return result

    # -- analysis quantities ---------------------------------------------------

    @property
    def load(self) -> int:
        """``|L(i)|`` — total number of packets stored at this node (cached)."""
        return self._load

    def load_of(self, key: Hashable) -> int:
        """``|L_k(i)|`` for pseudo-buffer ``key`` (0 if it does not exist)."""
        pb = self._pseudo.get(key)
        return len(pb) if pb is not None else 0

    def bad_count(self, key: Hashable) -> int:
        """``beta_k(i)`` — bad packets in pseudo-buffer ``key``."""
        pb = self._pseudo.get(key)
        return pb.bad_packet_count if pb is not None else 0

    def is_bad_for(self, key: Hashable) -> bool:
        """Whether the pseudo-buffer ``key`` holds >= 2 packets."""
        pb = self._pseudo.get(key)
        return pb.is_bad if pb is not None else False

    @property
    def total_bad(self) -> int:
        """Total bad packets at this node, over all pseudo-buffers (cached)."""
        return self._total_bad

    def recount_load(self) -> int:
        """From-scratch recount of :attr:`load` (tests / debugging only)."""
        return sum(len(pb) for pb in self._pseudo.values())

    def recount_total_bad(self) -> int:
        """From-scratch recount of :attr:`total_bad` (tests / debugging only)."""
        return sum(pb.bad_packet_count for pb in self._pseudo.values())

    def __len__(self) -> int:
        return self.load

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loads = {k: len(pb) for k, pb in self._pseudo.items() if pb}
        return f"NodeBuffer(node={self.node}, load={self.load}, pseudo={loads})"
