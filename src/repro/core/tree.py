"""PTS and PPTS on directed in-trees — Appendix B.2, Propositions B.3 and 3.5.

All edges point toward the root and every packet follows the directed path
from its injection site to a destination that is one of its ancestors.  The
edge orientation induces the partial order ``u \\preceq v`` ("``u`` is upstream
of ``v``"), under which:

* **Tree PTS** (single destination, the root): find the minimal antichain of
  bad buffers (nodes holding >= 2 packets that no other bad buffer lies
  below), and activate every node that has a bad buffer in its subtree —
  equivalently, the union of the paths from the minimal bad buffers to the
  root.  Bound: ``2 + sigma`` (Proposition B.3).
* **Tree PPTS** (destination set ``W``): process destinations in reverse
  topological order (root-most first); for each, activate the union of paths
  from the minimal ``k``-bad buffers to ``w_k``, skipping nodes already
  activated for an earlier (root-ward) destination.  Bound: ``1 + d' + sigma``
  where ``d'`` is the maximum number of destinations on a leaf-root path
  (Proposition 3.5).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from ..api.registry import register_algorithm
from ..network.errors import ConfigurationError, SchedulingError
from ..network.topology import TreeTopology
from .packet import Packet
from .pseudobuffer import QueueDiscipline
from .scheduler import Activation, ForwardingAlgorithm
from . import bounds

__all__ = ["TreePeakToSink", "TreeParallelPeakToSink"]


@register_algorithm("tree-pts", aliases=("tree_pts",))
class TreePeakToSink(ForwardingAlgorithm):
    """Single-destination PTS on a directed in-tree (Proposition B.3).

    Parameters
    ----------
    topology:
        The in-tree.
    destination:
        The common destination; defaults to the root (and must be an ancestor
        of every injection site, which the simulator's route validation
        enforces anyway).
    """

    name = "TreePTS"

    #: Debug/equivalence switch: ``False`` restores the seed engine's
    #: per-round full-network scans (the indices stay maintained either way).
    use_incremental_selection = True

    def __init__(
        self,
        topology: TreeTopology,
        destination: Optional[int] = None,
        *,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        self.tree = topology
        self.destination = destination if destination is not None else topology.root

    def classify(self, packet: Packet, node: int) -> Hashable:
        if packet.destination != self.destination:
            raise SchedulingError(
                f"TreePTS is single-destination (w={self.destination}); got a packet "
                f"for {packet.destination}"
            )
        return self.destination

    def select_activations(self, round_number: int) -> List[Activation]:
        if self.use_incremental_selection:
            # The bad index iterates ascending, matching the seed engine's
            # buffers-dict order (node buffers are created in sorted order).
            bad_nodes = [
                node for node in self._index.bad(self.destination)
                if node != self.destination
            ]
        else:
            bad_nodes = [
                node
                for node, node_buffer in self.buffers.items()
                if node_buffer.load >= 2 and node != self.destination
            ]
        if not bad_nodes:
            return []
        # Activate every node v (other than the destination) whose subtree
        # contains a bad buffer, i.e. the union of bad-to-destination paths.
        activations: List[Activation] = []
        activated = set()
        for bad in bad_nodes:
            for node in self.tree.path(bad, self.destination)[:-1]:
                if node in activated:
                    continue
                activated.add(node)
                if self.buffers[node].load_of(self.destination) > 0:
                    activations.append(Activation(node=node, key=self.destination))
        return activations

    def theoretical_bound(self, sigma: float) -> float:
        """Proposition B.3: ``2 + sigma``."""
        return bounds.pts_upper_bound(sigma)


@register_algorithm("tree-ppts", aliases=("tree_ppts",))
class TreeParallelPeakToSink(ForwardingAlgorithm):
    """Multi-destination PPTS on a directed in-tree (Algorithm 6, Proposition 3.5).

    Parameters
    ----------
    topology:
        The in-tree.
    destinations:
        The destination set ``W``.  May be omitted to let the algorithm
        discover destinations from the traffic, exactly as on the line.
    """

    name = "TreePPTS"

    def __init__(
        self,
        topology: TreeTopology,
        destinations: Optional[Sequence[int]] = None,
        *,
        discipline: QueueDiscipline = QueueDiscipline.LIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        self.tree = topology
        self._declared_destinations: Optional[List[int]] = None
        if destinations is not None:
            node_set = set(topology.nodes)
            for w in destinations:
                if w not in node_set:
                    raise ConfigurationError(f"destination {w} is not a tree node")
            self._declared_destinations = self._topological_sort(set(destinations))
        self._observed_destinations: set = set()

    #: Debug/equivalence switch: ``False`` restores the seed engine's
    #: per-round full-network scans (the indices stay maintained either way).
    use_incremental_selection = True

    # -- packet placement --------------------------------------------------------

    def classify(self, packet: Packet, node: int) -> Hashable:
        self._observed_destinations.add(packet.destination)
        return packet.destination

    # -- forwarding decisions ------------------------------------------------------

    def select_activations(self, round_number: int) -> List[Activation]:
        destinations = self.destinations()
        activations: List[Activation] = []
        activated = set()
        # Reverse topological order: root-most destinations first, exactly as
        # Algorithm 6 iterates k = d-1 downto 0 over a topologically sorted W.
        for w in reversed(destinations):
            if self.use_incremental_selection:
                bad_nodes = [
                    node for node in self._index.bad(w)
                    if node != w and self.tree.is_upstream(node, w)
                ]
            else:
                bad_nodes = [
                    node
                    for node, node_buffer in self.buffers.items()
                    if node != w
                    and node_buffer.load_of(w) >= 2
                    and self.tree.is_upstream(node, w)
                ]
            if not bad_nodes:
                continue
            minimal_bad = self._minimal_antichain(bad_nodes)
            for bad in minimal_bad:
                for node in self.tree.path(bad, w)[:-1]:
                    if node in activated:
                        continue
                    activated.add(node)
                    if self.buffers[node].load_of(w) > 0:
                        activations.append(Activation(node=node, key=w))
        return activations

    def theoretical_bound(self, sigma: float) -> Optional[float]:
        """Proposition 3.5: ``1 + d' + sigma``."""
        destinations = self.destinations()
        if not destinations:
            return None
        depth = self.tree.destination_depth(destinations)
        return bounds.tree_ppts_upper_bound(depth, sigma)

    # -- queries ------------------------------------------------------------------

    def destinations(self) -> List[int]:
        """The destination set in topological order (descendants before ancestors)."""
        if self._declared_destinations is not None:
            return list(self._declared_destinations)
        return self._topological_sort(self._observed_destinations)

    def destination_depth(self) -> int:
        """``d'`` for the current destination set."""
        destinations = self.destinations()
        if not destinations:
            return 0
        return self.tree.destination_depth(destinations)

    # -- checkpoint support --------------------------------------------------------

    def checkpoint_state(self) -> dict:
        return {"observed": sorted(self._observed_destinations)}

    def restore_checkpoint_state(self, state: dict, packets) -> None:
        self._observed_destinations = set(state["observed"])

    # -- internals ----------------------------------------------------------------

    def _topological_sort(self, destinations: set) -> List[int]:
        """Sort so that ``w_i`` upstream of ``w_j`` implies ``i < j`` (by depth, descending)."""
        return sorted(destinations, key=lambda w: (-self.tree.depth(w), w))

    def _minimal_antichain(self, nodes: List[int]) -> List[int]:
        """The low-antichain ``min(B)``: nodes with no other bad node strictly below them."""
        result = []
        for candidate in nodes:
            has_lower = any(
                other != candidate and self.tree.is_upstream(other, candidate)
                for other in nodes
            )
            if not has_lower:
                result.append(candidate)
        return result
