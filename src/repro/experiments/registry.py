"""The experiment registry: one entry per table/figure reproduced (E1-E9).

DESIGN.md's per-experiment index is mirrored here programmatically so that
examples, benchmarks and documentation all agree on what each experiment id
means and where its code lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Experiment", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """Metadata describing one reproduced result."""

    #: Short id used in DESIGN.md / EXPERIMENTS.md (e.g. ``"E1"``).
    id: str
    #: The paper item being reproduced.
    paper_item: str
    #: One-line statement of the claim.
    claim: str
    #: The workload / parameter sweep used.
    workload: str
    #: Library modules implementing the pieces.
    modules: Tuple[str, ...]
    #: The benchmark file that regenerates the table/series.
    benchmark: str


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.id: experiment
    for experiment in (
        Experiment(
            id="E1",
            paper_item="Proposition 3.1 (PTS)",
            claim="Single destination: max occupancy <= 2 + sigma",
            workload="line n in {16..256}, rho in {0.25, 0.5, 1.0}, sigma in {0..8}, "
            "burst stress + random adversaries",
            modules=("repro.core.pts", "repro.adversary.stress", "repro.network.simulator"),
            benchmark="benchmarks/bench_prop_3_1_pts.py",
        ),
        Experiment(
            id="E2",
            paper_item="Proposition 3.2 (PPTS)",
            claim="d destinations: max occupancy <= 1 + d + sigma",
            workload="line n=128, d in {1, 2, 4, ..., 64}, sigma in {0, 2, 4}",
            modules=("repro.core.ppts", "repro.adversary.stress"),
            benchmark="benchmarks/bench_prop_3_2_ppts.py",
        ),
        Experiment(
            id="E3",
            paper_item="Proposition 3.5 (trees)",
            claim="Directed trees: max occupancy <= 1 + d' + sigma",
            workload="caterpillar / star / binary / random trees, convergecast traffic",
            modules=("repro.core.tree", "repro.network.topology"),
            benchmark="benchmarks/bench_prop_3_5_tree.py",
        ),
        Experiment(
            id="E4",
            paper_item="Theorem 4.1 (HPTS)",
            claim="ell levels, rho * ell <= 1: max occupancy <= ell * n^(1/ell) + sigma + 1",
            workload="n = m**ell for m in {2, 3, 4}, ell in {1..4}",
            modules=("repro.core.hpts", "repro.core.hierarchy"),
            benchmark="benchmarks/bench_thm_4_1_hpts.py",
        ),
        Experiment(
            id="E5",
            paper_item="Theorem 5.1 (lower bound)",
            claim="Some (rho,1)-bounded adversary forces Omega(((ell+1)rho-1)/(2 ell) * n^(1/ell)) "
            "occupancy for every protocol",
            workload="n = (ell+1) m**ell, ell in {2, 3}; adversary vs PPTS/HPTS/greedy",
            modules=("repro.adversary.lower_bound", "repro.baselines"),
            benchmark="benchmarks/bench_thm_5_1_lower_bound.py",
        ),
        Experiment(
            id="E6",
            paper_item="Figure 1 (hierarchical partition)",
            claim="The nested interval structure and virtual trajectories for n=16, m=2, ell=4",
            workload="structural (no simulation)",
            modules=("repro.core.hierarchy", "repro.experiments.figures"),
            benchmark="benchmarks/bench_fig_1_hierarchy.py",
        ),
        Experiment(
            id="E7",
            paper_item="Section 1 implications (space-bandwidth tradeoff)",
            claim="Scaling destinations by alpha costs either x alpha buffers, "
            "or x O(log alpha) buffers and bandwidth",
            workload="fixed load, destination scale alpha in {2, 4, ..., 64}",
            modules=("repro.analysis.tradeoff", "repro.core.bounds"),
            benchmark="benchmarks/bench_tradeoff_implication.py",
        ),
        Experiment(
            id="E8",
            paper_item="Motivation (greedy baselines)",
            claim="PTS-family algorithms use no more buffer space than greedy policies "
            "on the same bounded workloads",
            workload="identical adversaries run against PTS/PPTS/HPTS and all greedy policies",
            modules=("repro.baselines", "repro.core"),
            benchmark="benchmarks/bench_baselines_comparison.py",
        ),
        Experiment(
            id="E9",
            paper_item="Ablation (HPTS design choices)",
            claim="Phase batching, pre-bad activation and the level schedule each matter "
            "for meeting the Theorem 4.1 bound",
            workload="HPTS variants on hierarchy stress",
            modules=("repro.core.hpts",),
            benchmark="benchmarks/bench_ablation_hpts.py",
        ),
    )
}


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id (e.g. ``"E4"``)."""
    try:
        return EXPERIMENTS[experiment_id.upper()]
    except KeyError as error:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        ) from error


def list_experiments() -> List[Experiment]:
    """All experiments in id order."""
    return [EXPERIMENTS[key] for key in sorted(EXPERIMENTS)]
