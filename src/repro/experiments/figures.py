"""Figure 1 reproduction: the hierarchical partition and virtual trajectories.

Figure 1 of the paper shows the line with ``n = 16``, ``m = 2``, ``ell = 4``:
each column is a buffer, each row a hierarchy level, and horizontal boxes mark
the intervals of each level; a packet's virtual trajectory threads through one
pseudo-buffer per segment.  :func:`figure1_data` computes the same structure
for arbitrary ``(m, ell)`` and :func:`render_figure1` draws it as ASCII art,
which is what the E6 benchmark prints.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.hierarchy import HierarchicalPartition

__all__ = ["figure1_data", "render_figure1", "trajectory_table"]


def figure1_data(
    branching: int = 2, levels: int = 4
) -> Dict[str, object]:
    """The structural content of Figure 1 for the given parameters.

    Returns a dict with the partition rows (one per level/interval), the
    binary (base-``m``) labels of every buffer, and the partition object
    itself for further queries.
    """
    partition = HierarchicalPartition(branching**levels, levels, branching)
    labels = [
        "".join(str(d) for d in reversed(partition.digits(i)))
        for i in range(partition.num_nodes)
    ]
    return {
        "partition": partition,
        "num_nodes": partition.num_nodes,
        "branching": branching,
        "levels": levels,
        "labels": labels,
        "rows": partition.figure_rows(),
    }


def render_figure1(
    branching: int = 2,
    levels: int = 4,
    *,
    trajectory: Optional[Tuple[int, int]] = None,
) -> str:
    """ASCII rendering of Figure 1, optionally overlaying one packet trajectory.

    ``trajectory`` is an optional ``(source, destination)`` pair whose segment
    decomposition is marked with ``*`` at the (level, buffer) cells the packet
    virtually occupies.
    """
    data = figure1_data(branching, levels)
    partition: HierarchicalPartition = data["partition"]  # type: ignore[assignment]
    n = partition.num_nodes
    cell = max(len(label) for label in data["labels"]) + 1  # type: ignore[arg-type]

    marked: Dict[int, Tuple[int, int]] = {}
    if trajectory is not None:
        source, destination = trajectory
        for segment in partition.virtual_trajectory(source, destination):
            # Mark the whole segment at its level.
            marked[segment.level] = (segment.start, min(segment.end, n - 1))

    lines: List[str] = []
    header = "".join(label.rjust(cell) for label in data["labels"])  # type: ignore[union-attr]
    lines.append(" " * 6 + header)
    for level in range(levels - 1, -1, -1):
        row_chars = []
        for start, end in partition.level_partition(level):
            width = (end - start + 1) * cell
            interior = "-" * (width - 2)
            if level in marked:
                seg_start, seg_end = marked[level]
                if start <= seg_start and seg_end <= end:
                    # Replace the span covered by the segment with '*'.
                    chars = list("[" + interior + "]")
                    for i in range(seg_start, seg_end + 1):
                        offset = (i - start) * cell + cell // 2
                        if 0 <= offset < len(chars):
                            chars[offset] = "*"
                    row_chars.append("".join(chars))
                    continue
            row_chars.append("[" + interior + "]")
        lines.append(f"j={level}  " + "".join(row_chars))
    if trajectory is not None:
        source, destination = trajectory
        lines.append(f"trajectory: {source} -> {destination} (segments marked with *)")
    return "\n".join(lines)


def trajectory_table(
    branching: int,
    levels: int,
    source: int,
    destination: int,
) -> List[Dict[str, object]]:
    """The segment decomposition of one route as table rows (level, start, end)."""
    partition = HierarchicalPartition(branching**levels, levels, branching)
    rows = []
    for index, segment in enumerate(
        partition.virtual_trajectory(source, destination)
    ):
        rows.append(
            {
                "segment": index,
                "level": segment.level,
                "start": segment.start,
                "end": segment.end,
                "hops": segment.length,
            }
        )
    return rows
