"""Named workload builders used by the experiment harness and benchmarks.

A *workload* bundles a topology, an adversary and the parameters needed to
build a forwarding algorithm for it.  Each builder corresponds to a family of
scenarios in the paper's results (single destination, multiple destinations,
trees, hierarchy, lower bound) and exposes knobs for the sweeps in DESIGN.md's
per-experiment index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..adversary.base import InjectionPattern
from ..adversary.generators import (
    hierarchy_random_destinations,
    random_line_adversary,
    random_tree_adversary,
    single_destination_adversary,
)
from ..adversary.lower_bound import LowerBoundConstruction
from ..adversary.stress import (
    hierarchy_stress,
    nested_route_stress,
    pts_burst_stress,
    round_robin_destination_stress,
    tree_convergecast_stress,
)
from ..network.topology import LineTopology, TreeTopology, caterpillar_tree
from ..network.errors import ConfigurationError

__all__ = [
    "Workload",
    "single_destination_workload",
    "multi_destination_workload",
    "hierarchical_workload",
    "tree_workload",
    "lower_bound_workload",
]


@dataclass
class Workload:
    """A topology plus an adversary plus the parameters that describe them."""

    name: str
    topology: object
    pattern: InjectionPattern
    rho: float
    sigma: float
    #: Extra scenario parameters (destinations, levels, ...) for reporting.
    params: Dict[str, object] = field(default_factory=dict)


def single_destination_workload(
    num_nodes: int,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    kind: str = "stress",
    seed: Optional[int] = None,
) -> Workload:
    """The PTS setting: one destination at the right end of a line.

    ``kind`` selects between the deterministic burst stress (default) and a
    random bounded adversary.
    """
    topology = LineTopology(num_nodes)
    if kind == "stress":
        pattern = pts_burst_stress(topology, rho, sigma, num_rounds)
    elif kind == "random":
        pattern = single_destination_adversary(
            topology, rho, sigma, num_rounds, seed=seed
        )
    else:
        raise ConfigurationError(f"unknown single-destination workload kind {kind!r}")
    return Workload(
        name=f"single-dest/{kind}",
        topology=topology,
        pattern=pattern,
        rho=rho,
        sigma=sigma,
        params={"n": num_nodes, "rounds": num_rounds, "kind": kind},
    )


def multi_destination_workload(
    num_nodes: int,
    num_destinations: int,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    kind: str = "round_robin",
    seed: Optional[int] = None,
) -> Workload:
    """The PPTS setting: ``d`` destinations on a line.

    ``kind`` is one of ``"round_robin"`` (drives the ``+ d`` term),
    ``"nested"`` (edge-disjoint nested routes) or ``"random"``.
    """
    topology = LineTopology(num_nodes)
    if kind == "round_robin":
        pattern = round_robin_destination_stress(
            topology, rho, sigma, num_rounds, num_destinations
        )
    elif kind == "nested":
        pattern = nested_route_stress(
            topology, rho, sigma, num_rounds, num_destinations
        )
    elif kind == "random":
        pattern = random_line_adversary(
            topology, rho, sigma, num_rounds, num_destinations, seed=seed
        )
    else:
        raise ConfigurationError(f"unknown multi-destination workload kind {kind!r}")
    return Workload(
        name=f"multi-dest/{kind}",
        topology=topology,
        pattern=pattern,
        rho=rho,
        sigma=sigma,
        params={
            "n": num_nodes,
            "d": num_destinations,
            "rounds": num_rounds,
            "kind": kind,
        },
    )


def hierarchical_workload(
    branching: int,
    levels: int,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    kind: str = "hierarchy",
    seed: Optional[int] = None,
) -> Workload:
    """The HPTS setting: a line of ``m**ell`` nodes with level-spanning traffic."""
    num_nodes = branching**levels
    topology = LineTopology(num_nodes)
    if kind == "hierarchy":
        pattern = hierarchy_stress(topology, rho, sigma, num_rounds, branching, levels)
    elif kind == "random":
        num_destinations = hierarchy_random_destinations(num_nodes, branching, levels)
        pattern = random_line_adversary(
            topology, rho, sigma, num_rounds, num_destinations, seed=seed
        )
    else:
        raise ConfigurationError(f"unknown hierarchical workload kind {kind!r}")
    return Workload(
        name=f"hierarchy/{kind}",
        topology=topology,
        pattern=pattern,
        rho=rho,
        sigma=sigma,
        params={
            "n": num_nodes,
            "m": branching,
            "ell": levels,
            "rounds": num_rounds,
            "kind": kind,
        },
    )


def tree_workload(
    tree: Optional[TreeTopology],
    rho: float,
    sigma: float,
    num_rounds: int,
    destinations: Optional[Sequence[int]] = None,
    *,
    kind: str = "convergecast",
    seed: Optional[int] = None,
) -> Workload:
    """The tree setting (Proposition 3.5): traffic toward ancestors on an in-tree."""
    if tree is None:
        tree = caterpillar_tree(spine_length=8, legs_per_node=2)
    if destinations is None:
        destinations = [tree.root]
    if kind == "convergecast":
        pattern = tree_convergecast_stress(tree, rho, sigma, num_rounds, destinations)
    elif kind == "random":
        pattern = random_tree_adversary(
            tree, rho, sigma, num_rounds, destinations, seed=seed
        )
    else:
        raise ConfigurationError(f"unknown tree workload kind {kind!r}")
    return Workload(
        name=f"tree/{kind}",
        topology=tree,
        pattern=pattern,
        rho=rho,
        sigma=sigma,
        params={
            "n": len(tree.nodes),
            "destinations": list(destinations),
            "d_prime": tree.destination_depth(destinations),
            "rounds": num_rounds,
            "kind": kind,
        },
    )


def lower_bound_workload(
    branching: int,
    levels: int,
    rho: float,
    *,
    num_phases: Optional[int] = None,
) -> Workload:
    """The Theorem 5.1 adversary, packaged as a workload.

    The declared sigma is the construction's effective burst (close to 1 by
    design; the tests measure it exactly).
    """
    construction = LowerBoundConstruction(branching, levels, rho)
    pattern = construction.build_pattern(num_phases)
    return Workload(
        name="lower-bound",
        topology=construction.topology(),
        pattern=pattern,
        rho=rho,
        sigma=2.0,
        params={
            "n": construction.num_nodes,
            "m": branching,
            "ell": levels,
            "phases": num_phases or construction.num_phases,
            "theoretical_bound": construction.theoretical_bound(),
        },
    )
