"""The experiment harness — now a thin compatibility layer over the API.

Historically each benchmark hand-wired ``Simulator(...)`` through this
module; today every execution path funnels into
:class:`repro.api.session.Session`.  :func:`run_workload` wraps one
``(workload, algorithm factory)`` pair as a :class:`repro.api.PreparedRun`
and :func:`sweep` batches the cartesian product through
:meth:`Session.run_many` (pass ``max_workers`` to fan the sweep out over a
thread pool).  The row type (:class:`ExperimentRow`) and table helpers are
unchanged, so existing callers keep working verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..analysis.tables import format_table
from ..api.session import PreparedRun, RunReport, Session
from ..api.specs import RunPolicy
from ..core.scheduler import ForwardingAlgorithm
from ..network.events import SimulationResult
from .workloads import Workload

__all__ = ["ExperimentRow", "run_workload", "sweep", "rows_to_table"]

#: A factory building a forwarding algorithm for a given workload.
AlgorithmFactory = Callable[[Workload], ForwardingAlgorithm]


@dataclass
class ExperimentRow:
    """One (workload, algorithm) measurement."""

    workload: str
    algorithm: str
    max_occupancy: int
    bound: Optional[float]
    within_bound: bool
    packets: int
    delivered: int
    max_latency: Optional[int]
    params: Dict[str, object] = field(default_factory=dict)
    result: Optional[SimulationResult] = None

    def as_dict(self) -> Dict[str, object]:
        """Flatten to a dict row for the table formatter."""
        row: Dict[str, object] = {
            "workload": self.workload,
            "algorithm": self.algorithm,
        }
        row.update(self.params)
        row.update(
            {
                "max_occupancy": self.max_occupancy,
                "bound": None if self.bound is None else round(self.bound, 2),
                "within_bound": self.within_bound,
                "packets": self.packets,
                "delivered": self.delivered,
                "max_latency": self.max_latency,
            }
        )
        return row


def _prepare(
    workload: Workload,
    algorithm_factory: AlgorithmFactory,
    *,
    record_history: bool,
    drain: bool,
) -> PreparedRun:
    return PreparedRun(
        topology=workload.topology,  # type: ignore[arg-type]
        algorithm=algorithm_factory(workload),
        adversary=workload.pattern,
        policy=RunPolicy(drain=drain, record_history=record_history),
        name=workload.name,
        params=dict(workload.params),
        sigma=workload.sigma,
    )


def _report_to_row(report: RunReport, *, keep_result: bool) -> ExperimentRow:
    return ExperimentRow(
        workload=report.name,
        algorithm=report.algorithm,
        max_occupancy=report.result.max_occupancy,
        bound=report.bound,
        within_bound=report.within_bound,
        packets=report.result.packets_injected,
        delivered=report.result.packets_delivered,
        max_latency=report.result.max_latency,
        params=dict(report.params),
        result=report.result if keep_result else None,
    )


def run_workload(
    workload: Workload,
    algorithm_factory: AlgorithmFactory,
    *,
    record_history: bool = False,
    drain: bool = True,
    keep_result: bool = False,
    session: Optional[Session] = None,
) -> ExperimentRow:
    """Run one workload against one algorithm and summarise the outcome."""
    prepared = _prepare(
        workload, algorithm_factory, record_history=record_history, drain=drain
    )
    report = (session or Session()).run(prepared)
    return _report_to_row(report, keep_result=keep_result)


def sweep(
    workloads: Iterable[Workload],
    algorithm_factories: Dict[str, AlgorithmFactory],
    *,
    record_history: bool = False,
    drain: bool = True,
    max_workers: Optional[int] = 0,
) -> List[ExperimentRow]:
    """Cartesian product of workloads and algorithms, one row per pair.

    ``max_workers=0`` (default) runs sequentially, exactly as before; any
    other value fans the batch out over :meth:`Session.run_many`'s thread
    pool.
    """
    prepared = [
        _prepare(workload, factory, record_history=record_history, drain=drain)
        for workload in workloads
        for _, factory in algorithm_factories.items()
    ]
    reports = Session().run_many(prepared, max_workers=max_workers)
    return [_report_to_row(report, keep_result=False) for report in reports]


def rows_to_table(
    rows: Iterable[ExperimentRow],
    columns: Optional[List[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Render experiment rows with the shared ASCII table formatter."""
    return format_table([row.as_dict() for row in rows], columns, title=title)
