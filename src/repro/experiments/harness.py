"""The experiment harness: run a workload against one or more algorithms.

The harness is the glue between workloads, algorithms and result tables.  Each
benchmark builds a list of :class:`ExperimentRow` objects via
:func:`run_workload` / :func:`sweep` and prints them with the table formatter,
mirroring the "rows/series the paper reports" requirement in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from ..analysis.metrics import check_against_bound
from ..analysis.tables import format_table
from ..core.scheduler import ForwardingAlgorithm
from ..network.events import SimulationResult
from ..network.simulator import Simulator
from .workloads import Workload

__all__ = ["ExperimentRow", "run_workload", "sweep", "rows_to_table"]

#: A factory building a forwarding algorithm for a given workload.
AlgorithmFactory = Callable[[Workload], ForwardingAlgorithm]


@dataclass
class ExperimentRow:
    """One (workload, algorithm) measurement."""

    workload: str
    algorithm: str
    max_occupancy: int
    bound: Optional[float]
    within_bound: bool
    packets: int
    delivered: int
    max_latency: Optional[int]
    params: Dict[str, object] = field(default_factory=dict)
    result: Optional[SimulationResult] = None

    def as_dict(self) -> Dict[str, object]:
        """Flatten to a dict row for the table formatter."""
        row: Dict[str, object] = {
            "workload": self.workload,
            "algorithm": self.algorithm,
        }
        row.update(self.params)
        row.update(
            {
                "max_occupancy": self.max_occupancy,
                "bound": None if self.bound is None else round(self.bound, 2),
                "within_bound": self.within_bound,
                "packets": self.packets,
                "delivered": self.delivered,
                "max_latency": self.max_latency,
            }
        )
        return row


def run_workload(
    workload: Workload,
    algorithm_factory: AlgorithmFactory,
    *,
    record_history: bool = False,
    drain: bool = True,
    keep_result: bool = False,
) -> ExperimentRow:
    """Run one workload against one algorithm and summarise the outcome."""
    algorithm = algorithm_factory(workload)
    simulator = Simulator(
        workload.topology,  # type: ignore[arg-type]
        algorithm,
        workload.pattern,
        record_history=record_history,
    )
    result = simulator.run(drain=drain)
    bound = algorithm.theoretical_bound(workload.sigma)
    check = check_against_bound(result, bound)
    return ExperimentRow(
        workload=workload.name,
        algorithm=algorithm.name,
        max_occupancy=result.max_occupancy,
        bound=bound,
        within_bound=check.satisfied,
        packets=result.packets_injected,
        delivered=result.packets_delivered,
        max_latency=result.max_latency,
        params=dict(workload.params),
        result=result if keep_result else None,
    )


def sweep(
    workloads: Iterable[Workload],
    algorithm_factories: Dict[str, AlgorithmFactory],
    *,
    record_history: bool = False,
    drain: bool = True,
) -> List[ExperimentRow]:
    """Cartesian product of workloads and algorithms, one row per pair."""
    rows: List[ExperimentRow] = []
    for workload in workloads:
        for _, factory in algorithm_factories.items():
            rows.append(
                run_workload(
                    workload,
                    factory,
                    record_history=record_history,
                    drain=drain,
                )
            )
    return rows


def rows_to_table(
    rows: Iterable[ExperimentRow],
    columns: Optional[List[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Render experiment rows with the shared ASCII table formatter."""
    return format_table([row.as_dict() for row in rows], columns, title=title)
