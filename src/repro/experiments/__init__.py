"""Experiment harness, workload builders, figure data and the E1-E9 registry."""

from .figures import figure1_data, render_figure1, trajectory_table
from .harness import ExperimentRow, rows_to_table, run_workload, sweep
from .registry import EXPERIMENTS, Experiment, get_experiment, list_experiments
from .workloads import (
    Workload,
    hierarchical_workload,
    lower_bound_workload,
    multi_destination_workload,
    single_destination_workload,
    tree_workload,
)

__all__ = [
    "figure1_data",
    "render_figure1",
    "trajectory_table",
    "ExperimentRow",
    "rows_to_table",
    "run_workload",
    "sweep",
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "list_experiments",
    "Workload",
    "hierarchical_workload",
    "lower_bound_workload",
    "multi_destination_workload",
    "single_destination_workload",
    "tree_workload",
]
