"""repro — Space-bandwidth tradeoffs for routing in the AQT model.

A from-scratch reproduction of *"With Great Speed Come Small Buffers:
Space-Bandwidth Tradeoffs for Routing"* (Miller, Patt-Shamir, Rosenbaum,
PODC 2019 / arXiv:1902.08069): an executable Adversarial Queuing Theory
simulator, the paper's PTS / PPTS / HPTS forwarding algorithms and their tree
variants, the Section 5 lower-bound adversary, greedy baselines, and an
experiment harness that regenerates every bound as a measured-vs-theory table.

Quickstart
----------

Every run is one declarative scenario — *topology x adversary x algorithm x
run policy* — built with the fluent front door (:mod:`repro.api`):

>>> from repro import Scenario
>>> report = (Scenario.line(64)
...           .algorithm("ppts")
...           .adversary("round-robin", rho=1.0, sigma=2, rounds=200,
...                      num_destinations=8)
...           .run())
>>> report.result.max_occupancy <= 1 + 8 + 2   # Proposition 3.2
True

The lower-level pieces (topologies, algorithms, adversaries, the simulator)
remain importable directly and are what the registered names resolve to.
"""

from .api import (
    ADVERSARIES,
    ALGORITHMS,
    TOPOLOGIES,
    AdversarySpec,
    AlgorithmSpec,
    RunPolicy,
    RunReport,
    Scenario,
    ScenarioSpec,
    Session,
    TopologySpec,
    register_adversary,
    register_algorithm,
    register_topology,
    reports_to_table,
)
from .adversary import (
    HotspotAdversary,
    InjectionPattern,
    LowerBoundConstruction,
    check_bounded,
    ell_reduction,
    load_pattern,
    random_line_adversary,
    save_pattern,
    tightest_sigma,
)
from .analysis import (
    build_report,
    check_against_bound,
    check_invariants,
    format_table,
    latency_breakdown,
)
from .baselines import ALL_POLICIES, GreedyForwarding
from .checkpoint import (
    Checkpoint,
    load_checkpoint,
    restore_simulator,
    save_checkpoint,
)
from .core import (
    DownhillForwarding,
    HierarchicalPartition,
    HierarchicalPeakToSink,
    Injection,
    LocalThresholdForwarding,
    Packet,
    ParallelPeakToSink,
    PeakToSink,
    TreeParallelPeakToSink,
    TreePeakToSink,
    bounds,
    make_injection,
)
from .experiments import (
    EXPERIMENTS,
    get_experiment,
    hierarchical_workload,
    lower_bound_workload,
    multi_destination_workload,
    run_workload,
    single_destination_workload,
    tree_workload,
)
from .network import (
    ForestTopology,
    LineTopology,
    SimulationResult,
    Simulator,
    TreeTopology,
    binary_tree,
    caterpillar_tree,
    forest_of,
    random_tree,
    run_simulation,
    star_tree,
)

__version__ = "1.0.0"

__all__ = [
    "ADVERSARIES",
    "ALGORITHMS",
    "TOPOLOGIES",
    "AdversarySpec",
    "AlgorithmSpec",
    "RunPolicy",
    "RunReport",
    "Scenario",
    "ScenarioSpec",
    "Session",
    "TopologySpec",
    "register_adversary",
    "register_algorithm",
    "register_topology",
    "reports_to_table",
    "HotspotAdversary",
    "InjectionPattern",
    "LowerBoundConstruction",
    "check_bounded",
    "ell_reduction",
    "load_pattern",
    "random_line_adversary",
    "save_pattern",
    "tightest_sigma",
    "build_report",
    "check_against_bound",
    "check_invariants",
    "format_table",
    "latency_breakdown",
    "ALL_POLICIES",
    "GreedyForwarding",
    "Checkpoint",
    "load_checkpoint",
    "restore_simulator",
    "save_checkpoint",
    "DownhillForwarding",
    "HierarchicalPartition",
    "HierarchicalPeakToSink",
    "Injection",
    "LocalThresholdForwarding",
    "Packet",
    "ParallelPeakToSink",
    "PeakToSink",
    "TreeParallelPeakToSink",
    "TreePeakToSink",
    "bounds",
    "make_injection",
    "EXPERIMENTS",
    "get_experiment",
    "hierarchical_workload",
    "lower_bound_workload",
    "multi_destination_workload",
    "run_workload",
    "single_destination_workload",
    "tree_workload",
    "ForestTopology",
    "LineTopology",
    "SimulationResult",
    "Simulator",
    "TreeTopology",
    "binary_tree",
    "caterpillar_tree",
    "forest_of",
    "random_tree",
    "run_simulation",
    "star_tree",
    "__version__",
]
