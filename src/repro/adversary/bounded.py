"""(rho, sigma)-boundedness checking and token-bucket admission (Definition 2.1).

An adversary ``A`` is ``(rho, sigma)``-bounded if for every buffer ``v`` and
every interval of rounds ``T``, the number of injected packets whose paths
contain ``v`` satisfies ``N_T(v) <= rho |T| + sigma``.

Two equivalent views are implemented:

* :func:`check_bounded` / :func:`tightest_bound` verify or measure the bound
  for an explicit pattern, using the leaky-bucket recurrence (the maximum of
  ``N_{[s,t]}(v) - rho (t - s + 1)`` over ``s`` equals the excess of Def. 2.2,
  maintained incrementally in O(T n) instead of the naive O(T^2 n)).
* :class:`TokenBucket` is the constructive counterpart used by the random
  adversary generators: a per-buffer bucket that tells the generator how many
  more crossings it may emit in the current round without breaking the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.packet import Injection
from ..network.errors import BoundednessViolationError
from ..network.topology import Topology
from .base import InjectionPattern

__all__ = [
    "BoundednessReport",
    "check_bounded",
    "assert_bounded",
    "tightest_bound",
    "tightest_sigma",
    "TokenBucket",
]


@dataclass(frozen=True)
class BoundednessReport:
    """Outcome of a boundedness check.

    Attributes
    ----------
    bounded:
        Whether the pattern satisfies the declared ``(rho, sigma)`` bound.
    max_excess:
        The largest value of ``N_T(v) - rho |T|`` seen over any buffer and
        interval — i.e. the smallest ``sigma`` for which the pattern is
        ``(rho, sigma)``-bounded.
    worst_buffer:
        A buffer achieving ``max_excess`` (``None`` for an empty pattern).
    worst_round:
        The right endpoint of an interval achieving ``max_excess``.
    """

    bounded: bool
    max_excess: float
    worst_buffer: Optional[int]
    worst_round: Optional[int]


def _excess_trajectory(
    pattern: InjectionPattern,
    topology: Topology,
    rho: float,
) -> Tuple[float, Optional[int], Optional[int]]:
    """Maximum excess over all buffers and rounds, with its witness."""
    crossings = pattern.crossings_per_round(topology)
    excess: Dict[int, float] = {}
    max_excess = 0.0
    worst_buffer: Optional[int] = None
    worst_round: Optional[int] = None
    for t, round_crossings in enumerate(crossings):
        touched = set(round_crossings) | set(excess)
        for v in touched:
            injected = round_crossings.get(v, 0)
            previous = excess.get(v, 0.0)
            current = max(previous + injected - rho, 0.0)
            # Avoid dict churn for buffers that have drained back to zero.
            if current > 0:
                excess[v] = current
            elif v in excess:
                del excess[v]
            if current > max_excess:
                max_excess = current
                worst_buffer = v
                worst_round = t
    return max_excess, worst_buffer, worst_round


def check_bounded(
    pattern: InjectionPattern,
    topology: Topology,
    rho: float,
    sigma: float,
    *,
    tolerance: float = 1e-9,
) -> BoundednessReport:
    """Check Definition 2.1 for an explicit pattern.

    Returns a :class:`BoundednessReport`; never raises.  ``tolerance`` absorbs
    floating-point noise when ``rho`` is not exactly representable.
    """
    max_excess, worst_buffer, worst_round = _excess_trajectory(
        pattern, topology, rho
    )
    return BoundednessReport(
        bounded=max_excess <= sigma + tolerance,
        max_excess=max_excess,
        worst_buffer=worst_buffer,
        worst_round=worst_round,
    )


def assert_bounded(
    pattern: InjectionPattern,
    topology: Topology,
    rho: float,
    sigma: float,
) -> None:
    """Like :func:`check_bounded`, but raise on violation.

    Raises
    ------
    BoundednessViolationError
        If some buffer/interval exceeds ``rho |T| + sigma``.
    """
    report = check_bounded(pattern, topology, rho, sigma)
    if not report.bounded:
        raise BoundednessViolationError(
            buffer=report.worst_buffer if report.worst_buffer is not None else -1,
            interval=(0, report.worst_round),
            observed=report.max_excess,
            allowed=float(sigma),
        )


def tightest_bound(
    pattern: InjectionPattern,
    topology: Topology,
    rho: float,
) -> float:
    """The smallest ``sigma`` such that the pattern is ``(rho, sigma)``-bounded."""
    max_excess, _, _ = _excess_trajectory(pattern, topology, rho)
    return max_excess


def tightest_sigma(
    pattern: InjectionPattern,
    topology: Topology,
    rho: float,
) -> float:
    """Alias of :func:`tightest_bound` (kept for readability at call sites)."""
    return tightest_bound(pattern, topology, rho)


class TokenBucket:
    """Per-buffer leaky buckets for *constructing* bounded patterns.

    The generators in :mod:`repro.adversary.generators` use this to decide,
    round by round, whether injecting a candidate packet would keep the
    pattern ``(rho, sigma)``-bounded: a packet crossing buffers ``S`` is
    admissible iff every bucket in ``S`` has at least one token.

    Each bucket starts with ``sigma`` tokens (the burst budget), gains ``rho``
    tokens per round, and is capped at ``sigma``... almost: the classical
    token-bucket cap is ``sigma + rho`` *immediately after refill* so that a
    steady stream at exactly rate ``rho`` is admissible.  This matches the
    excess recurrence ``xi_t = max(xi_{t-1} + N_t - rho, 0) <= sigma``.
    """

    def __init__(self, num_nodes: int, rho: float, sigma: float) -> None:
        if rho < 0:
            raise ValueError("rho must be non-negative")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.num_nodes = num_nodes
        self.rho = float(rho)
        self.sigma = float(sigma)
        # tokens[v] = sigma - xi(v): remaining crossings admissible at v.
        self._tokens: List[float] = [float(sigma)] * num_nodes
        self._refilled_this_round = False

    def start_round(self) -> None:
        """Refill every bucket by ``rho`` (capped at ``sigma + rho``).

        The cap is ``sigma + rho`` rather than ``sigma`` because the excess
        constraint allows ``N_t(v) <= sigma - xi_{t-1}(v) + rho`` crossings in
        round ``t`` (Lemma 2.3, part 2).
        """
        cap = self.sigma + self.rho
        self._tokens = [min(tokens + self.rho, cap) for tokens in self._tokens]
        self._refilled_this_round = True

    def can_inject(self, buffers_crossed: List[int]) -> bool:
        """Whether one more packet crossing the given buffers is admissible."""
        return all(self._tokens[v] >= 1.0 for v in buffers_crossed)

    def inject(self, buffers_crossed: List[int]) -> None:
        """Consume one token on every crossed buffer (caller checked admissibility)."""
        for v in buffers_crossed:
            self._tokens[v] -= 1.0

    def available(self, buffer: int) -> float:
        """Remaining tokens at ``buffer`` this round."""
        return self._tokens[buffer]

    def headroom(self, buffers_crossed: List[int]) -> int:
        """How many more packets with this route are admissible right now."""
        if not buffers_crossed:
            return 0
        return int(min(self._tokens[v] for v in buffers_crossed))

    # -- checkpoint support -------------------------------------------------------

    def state(self) -> dict:
        """JSON-serialisable snapshot of the per-buffer token levels.

        Floats round-trip exactly through :mod:`json` (``repr`` of a double),
        so restoring the state reproduces admission decisions bit for bit.
        """
        return {
            "tokens": list(self._tokens),
            "refilled": self._refilled_this_round,
        }

    def set_state(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state`."""
        tokens = [float(value) for value in state["tokens"]]
        if len(tokens) != self.num_nodes:
            raise ValueError(
                f"token-bucket state has {len(tokens)} buffers, "
                f"expected {self.num_nodes}"
            )
        self._tokens = tokens
        self._refilled_this_round = bool(state.get("refilled", False))


def injections_crossings(
    injections: List[Injection], topology: Topology
) -> Dict[int, int]:
    """``N(v)`` for a single round's worth of injections (helper for tests)."""
    counts: Dict[int, int] = {}
    for injection in injections:
        for v in topology.path(injection.source, injection.destination)[:-1]:
            counts[v] = counts.get(v, 0) + 1
    return counts
