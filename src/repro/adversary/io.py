"""Serialization of injection patterns and simulation results.

Long adversarial traces are expensive to regenerate and useful to share
(e.g. a counterexample trace attached to a bug report, or a fixed workload
pinned for regression benchmarking).  This module writes and reads them as
plain JSON with a small versioned envelope, so traces survive library
upgrades and can be inspected with standard tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.packet import Injection
from ..network.errors import ConfigurationError
from ..network.events import SimulationResult
from .base import InjectionPattern

__all__ = [
    "pattern_to_dict",
    "pattern_from_dict",
    "save_pattern",
    "load_pattern",
    "result_to_dict",
    "save_result",
]

#: Format version written into every file; bump on breaking changes.
FORMAT_VERSION = 1


def pattern_to_dict(pattern: InjectionPattern) -> Dict[str, object]:
    """Convert a pattern to a JSON-serialisable dict (the trace format)."""
    return {
        "format": "repro.injection_pattern",
        "version": FORMAT_VERSION,
        "rho": pattern.rho,
        "sigma": pattern.sigma,
        "packets": [
            {
                "round": injection.round,
                "source": injection.source,
                "destination": injection.destination,
                "id": injection.packet_id,
            }
            for injection in pattern.all_injections()
        ],
    }


def pattern_from_dict(data: Dict[str, object]) -> InjectionPattern:
    """Rebuild a pattern from :func:`pattern_to_dict` output."""
    if data.get("format") != "repro.injection_pattern":
        raise ConfigurationError(
            f"not an injection-pattern document (format={data.get('format')!r})"
        )
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported trace version {version!r} (this build reads {FORMAT_VERSION})"
        )
    packets: List[Injection] = []
    for entry in data.get("packets", []):  # type: ignore[union-attr]
        packets.append(
            Injection(
                round=int(entry["round"]),
                source=int(entry["source"]),
                destination=int(entry["destination"]),
                packet_id=int(entry.get("id", -1)),
            )
        )
    rho = data.get("rho")
    sigma = data.get("sigma")
    return InjectionPattern(
        packets,
        rho=None if rho is None else float(rho),  # type: ignore[arg-type]
        sigma=None if sigma is None else float(sigma),  # type: ignore[arg-type]
    )


def save_pattern(pattern: InjectionPattern, path: Union[str, Path]) -> Path:
    """Write a pattern to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(pattern_to_dict(pattern), indent=2) + "\n")
    return path


def load_pattern(path: Union[str, Path]) -> InjectionPattern:
    """Read a pattern previously written by :func:`save_pattern`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"{path} is not valid JSON: {error}") from error
    return pattern_from_dict(data)


def result_to_dict(result: SimulationResult) -> Dict[str, object]:
    """Convert a simulation result summary (not per-round history) to a dict."""
    return {
        "format": "repro.simulation_result",
        "version": FORMAT_VERSION,
        "algorithm": result.algorithm,
        "num_nodes": result.num_nodes,
        "rounds_executed": result.rounds_executed,
        "max_occupancy": result.max_occupancy,
        "max_occupancy_per_node": {
            str(node): load for node, load in sorted(result.max_occupancy_per_node.items())
        },
        "max_staged": result.max_staged,
        "packets_injected": result.packets_injected,
        "packets_delivered": result.packets_delivered,
        "packets_undelivered": result.packets_undelivered,
        "max_latency": result.max_latency,
        "mean_latency": result.mean_latency,
        "drained": result.drained,
    }


def save_result(
    result: SimulationResult, path: Union[str, Path], *, extra: Optional[Dict[str, object]] = None
) -> Path:
    """Write a result summary to a JSON file (optionally with extra metadata)."""
    payload = result_to_dict(result)
    if extra:
        payload["extra"] = extra
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
