"""The ell-reduction of an adversary (Definition 2.4, Lemma 2.5).

Given an adversary ``A`` and a positive integer ``ell``, the ``ell``-reduction
``A_ell`` re-times every packet injected during rounds
``(k-1) ell + 1, ..., k ell`` to round ``k``.  If ``A`` is ``(rho, sigma)``-
bounded then ``A_ell`` is ``(ell rho, sigma)``-bounded (Lemma 2.5).

HPTS uses the reduction implicitly — it accepts a phase's injections only at
the start of the next phase — but having the reduction as a standalone
transformation lets the tests verify Lemma 2.5 directly and lets benchmarks
compare "reduced" and "unreduced" executions.

Round-numbering convention.  The paper numbers rounds from 1 inside the
definition (``floor((t-1)/ell) + 1``); the library numbers rounds from 0, so
the reduction maps a round ``t`` (0-based) to phase index ``floor(t / ell)``
and re-times the packet to the *first round of the following phase*,
``(floor(t / ell) + 1) * ell``, matching the HPTS acceptance rule in
Algorithm 3 (Lines 3-5).  A second, "compressed" mapping to round
``floor(t / ell)`` is also provided for analyses that want the literal
Definition 2.4 object on a compressed time axis.
"""

from __future__ import annotations

from typing import List

from ..core.packet import Injection
from ..network.errors import ConfigurationError
from .base import InjectionPattern

__all__ = ["ell_reduction", "compressed_reduction", "phase_of_round", "phase_start"]


def phase_of_round(round_number: int, ell: int) -> int:
    """Which phase (0-based) the given round belongs to."""
    if ell < 1:
        raise ConfigurationError(f"ell must be >= 1, got {ell}")
    if round_number < 0:
        raise ConfigurationError(f"round must be >= 0, got {round_number}")
    return round_number // ell


def phase_start(phase: int, ell: int) -> int:
    """First round of the given phase."""
    if ell < 1:
        raise ConfigurationError(f"ell must be >= 1, got {ell}")
    return phase * ell


def ell_reduction(pattern: InjectionPattern, ell: int) -> InjectionPattern:
    """Re-time each packet to the first round of the phase after its injection.

    This is the acceptance schedule HPTS actually uses: packets injected in
    phase ``phi`` become visible to the algorithm at round
    ``(phi + 1) * ell``.  On the original time axis the resulting pattern is
    ``(ell rho, sigma)``-bounded *per phase-start round* (all of a phase's
    packets land on one round), which is the form Lemma 2.5 is used in during
    the proof of Theorem 4.1.
    """
    if ell < 1:
        raise ConfigurationError(f"ell must be >= 1, got {ell}")
    retimed: List[Injection] = []
    for injection in pattern.all_injections():
        phase = phase_of_round(injection.round, ell)
        new_round = phase_start(phase + 1, ell)
        retimed.append(
            Injection(new_round, injection.source, injection.destination, injection.packet_id)
        )
    new_rho = None if pattern.rho is None else pattern.rho * ell
    return InjectionPattern(retimed, rho=new_rho, sigma=pattern.sigma)


def compressed_reduction(pattern: InjectionPattern, ell: int) -> InjectionPattern:
    """The literal Definition 2.4 object: round ``t`` maps to ``floor(t / ell)``.

    The compressed pattern lives on a time axis where one "round" represents a
    whole phase; Lemma 2.5 states it is ``(ell rho, sigma)``-bounded, which
    :func:`repro.adversary.bounded.check_bounded` verifies in the tests.
    """
    if ell < 1:
        raise ConfigurationError(f"ell must be >= 1, got {ell}")
    retimed: List[Injection] = []
    for injection in pattern.all_injections():
        phase = phase_of_round(injection.round, ell)
        retimed.append(
            Injection(phase, injection.source, injection.destination, injection.packet_id)
        )
    new_rho = None if pattern.rho is None else pattern.rho * ell
    return InjectionPattern(retimed, rho=new_rho, sigma=pattern.sigma)
