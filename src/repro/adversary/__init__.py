"""Adversaries: injection patterns, boundedness checking and generators."""

from .adaptive import AdaptiveAdversary, BlockingAdversary, HotspotAdversary
from .base import Adversary, InjectionPattern, StreamingAdversary
from .bounded import (
    BoundednessReport,
    TokenBucket,
    assert_bounded,
    check_bounded,
    tightest_bound,
    tightest_sigma,
)
from .generators import (
    bursty_adversary,
    random_line_adversary,
    random_tree_adversary,
    saturating_line_adversary,
    single_destination_adversary,
)
from .io import (
    load_pattern,
    pattern_from_dict,
    pattern_to_dict,
    result_to_dict,
    save_pattern,
    save_result,
)
from .lower_bound import (
    LowerBoundConstruction,
    front_position,
    injection_site,
    lower_bound_network_size,
)
from .reduction import compressed_reduction, ell_reduction, phase_of_round, phase_start
from .segmented import SegmentFilteredAdversary
from .stress import (
    evenly_spaced_destinations,
    hierarchy_stress,
    nested_route_stress,
    pts_burst_stress,
    round_robin_destination_stress,
    tree_convergecast_stress,
)

__all__ = [
    "AdaptiveAdversary",
    "BlockingAdversary",
    "HotspotAdversary",
    "Adversary",
    "InjectionPattern",
    "StreamingAdversary",
    "BoundednessReport",
    "TokenBucket",
    "assert_bounded",
    "check_bounded",
    "tightest_bound",
    "tightest_sigma",
    "bursty_adversary",
    "random_line_adversary",
    "random_tree_adversary",
    "saturating_line_adversary",
    "single_destination_adversary",
    "load_pattern",
    "pattern_from_dict",
    "pattern_to_dict",
    "result_to_dict",
    "save_pattern",
    "save_result",
    "LowerBoundConstruction",
    "front_position",
    "injection_site",
    "lower_bound_network_size",
    "SegmentFilteredAdversary",
    "compressed_reduction",
    "ell_reduction",
    "phase_of_round",
    "phase_start",
    "evenly_spaced_destinations",
    "hierarchy_stress",
    "nested_route_stress",
    "pts_burst_stress",
    "round_robin_destination_stress",
    "tree_convergecast_stress",
]
