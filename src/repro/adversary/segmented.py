"""Segment-filtered adversary views for the sharded execution engine.

The sharded engine (:mod:`repro.network.sharded`) gives every worker process
its own copy of the scenario's adversary and lets each worker keep only the
injections whose source lies inside its segment.  Filtering — rather than
splitting — is what keeps packet ids bit-identical with the single-process
run: every worker drives the *full* row stream through its own packet-id
allocator, so the id sequence is the global one, and the filter merely drops
the materialised records that belong to other segments.  Relative injection
order within a round is preserved per node (filtering is order-stable), which
is what the per-buffer push order depends on.

The wrapper is deliberately thin:

* ``injections_for_round`` delegates and filters;
* everything else (``cursor``/``resume``/``rho``/``sigma``/...) is forwarded
  to the wrapped adversary via ``__getattr__``, so a streaming adversary's
  ``(round, cursor)`` resume API keeps working — a worker restored from a
  segment checkpoint repositions its full row stream exactly like the
  single-process engine does;
* ``checkpoint_kind`` reports the *wrapped* type, so segment snapshots
  stitch into files that a plain single-process resume accepts.

Adaptive adversaries are refused: their injections observe the global
configuration, which no single segment can reproduce.
"""

from __future__ import annotations

from typing import List

from ..core.packet import Injection
from ..network.errors import UnshardableScenarioError
from .base import Adversary

__all__ = ["SegmentFilteredAdversary"]


class SegmentFilteredAdversary(Adversary):
    """An adversary restricted to injections with source in ``[lo, hi]``.

    Parameters
    ----------
    base:
        The full-line adversary (eager or streaming).  It is consumed through
        this wrapper and must not be driven directly afterwards.
    lo, hi:
        The segment's inclusive node bounds.
    """

    def __init__(self, base: Adversary, lo: int, hi: int) -> None:
        if getattr(base, "adaptive", False):
            raise UnshardableScenarioError(
                f"{type(base).__name__} is adaptive: its injections observe "
                f"the global configuration, which a segment cannot see; run "
                f"with shards=1"
            )
        if lo > hi:
            raise UnshardableScenarioError(f"empty segment [{lo}, {hi}]")
        self.base = base
        self.lo = lo
        self.hi = hi

    # -- Adversary interface -----------------------------------------------------

    def injections_for_round(self, round_number: int) -> List[Injection]:
        lo, hi = self.lo, self.hi
        return [
            injection
            for injection in self.base.injections_for_round(round_number)
            if lo <= injection.source <= hi
        ]

    @property
    def horizon(self) -> int:
        return self.base.horizon

    # rho/sigma are *class* attributes on Adversary, so they must be forwarded
    # explicitly (``__getattr__`` only fires when normal lookup fails).
    @property
    def rho(self):
        return self.base.rho

    @property
    def sigma(self):
        return self.base.sigma

    @property
    def checkpoint_kind(self) -> str:
        """Masquerade as the wrapped adversary in checkpoint headers."""
        return getattr(
            self.base, "checkpoint_kind", type(self.base).__name__
        )

    def __getattr__(self, name: str):
        # Forward cursor()/resume()/... so hasattr-based protocol probes
        # (checkpointing) see exactly what the wrapped adversary offers.
        if name == "base":  # guard: unpickling probes before __init__ runs
            raise AttributeError(name)
        return getattr(self.base, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentFilteredAdversary([{self.lo}, {self.hi}], {self.base!r})"
        )
