"""Randomised (rho, sigma)-bounded adversary generators.

The paper's upper bounds are quantified over *all* ``(rho, sigma)``-bounded
adversaries, so the test-suite and benchmarks exercise the algorithms on a
family of randomly generated bounded patterns in addition to the deterministic
stress constructions of :mod:`repro.adversary.stress`.

Every generator here guarantees boundedness *by construction*: injections are
admitted through a per-buffer :class:`~repro.adversary.bounded.TokenBucket`,
so the returned :class:`~repro.adversary.base.InjectionPattern` always passes
:func:`~repro.adversary.bounded.check_bounded` for the declared parameters.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..api.registry import register_adversary
from ..core.packet import Injection, make_injection
from ..network.errors import ConfigurationError
from ..network.topology import LineTopology, Topology, TreeTopology
from .base import InjectionPattern
from .bounded import TokenBucket

__all__ = [
    "random_line_adversary",
    "saturating_line_adversary",
    "single_destination_adversary",
    "random_tree_adversary",
    "bursty_adversary",
    "hierarchy_random_destinations",
]


def _pick_destinations(
    topology: LineTopology,
    num_destinations: int,
    rng: random.Random,
) -> List[int]:
    """Pick ``d`` distinct destination nodes (always including the last node)."""
    n = topology.num_nodes
    if num_destinations < 1:
        raise ConfigurationError("num_destinations must be >= 1")
    if num_destinations > n - 1:
        raise ConfigurationError(
            f"cannot place {num_destinations} destinations on a line with {n} nodes"
        )
    candidates = list(range(1, n))
    rng.shuffle(candidates)
    chosen = set(candidates[: num_destinations - 1])
    chosen.add(n - 1)
    while len(chosen) < num_destinations:
        chosen.add(candidates[len(chosen)])
    return sorted(chosen)


def random_line_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int = 1,
    *,
    seed: Optional[int] = None,
    intensity: float = 1.0,
) -> InjectionPattern:
    """A random bounded adversary on a line.

    Each round the generator proposes random ``(source, destination)`` pairs
    (destinations drawn from a fixed set of ``num_destinations`` nodes) and
    admits each proposal only if the token bucket allows it.  ``intensity``
    in ``(0, 1]`` scales how aggressively the generator tries to exhaust its
    budget: 1.0 keeps proposing until the bucket is empty, smaller values
    leave slack.

    Returns an :class:`InjectionPattern` that is ``(rho, sigma)``-bounded by
    construction.
    """
    if not (0 < rho <= 1):
        raise ConfigurationError(f"rho must be in (0, 1], got {rho}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    if not (0 < intensity <= 1):
        raise ConfigurationError(f"intensity must be in (0, 1], got {intensity}")
    rng = random.Random(seed)
    destinations = _pick_destinations(topology, num_destinations, rng)
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    # Proposal budget per round: generous enough to use up the bucket when
    # intensity is 1 but bounded so generation stays linear in num_rounds.
    proposals_per_round = max(4, int(2 * (rho + sigma) * len(destinations)) + 4)
    for t in range(num_rounds):
        bucket.start_round()
        for _ in range(proposals_per_round):
            if rng.random() > intensity:
                continue
            destination = rng.choice(destinations)
            source = rng.randrange(0, destination)
            crossed = list(range(source, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, source, destination))
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def saturating_line_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int = 1,
    *,
    seed: Optional[int] = None,
) -> InjectionPattern:
    """A bounded adversary that front-loads its burst budget.

    In every round the generator injects as many packets as the token bucket
    allows, always routing them over long paths (source 0 or as far left as
    admissible) so that every buffer's budget is consumed.  This produces the
    harshest *feasible* load within the declared bound and is the default
    workload for validating the upper-bound propositions.
    """
    rng = random.Random(seed)
    destinations = _pick_destinations(topology, num_destinations, rng)
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    for t in range(num_rounds):
        bucket.start_round()
        progress = True
        while progress:
            progress = False
            for destination in destinations:
                # Longest admissible route into this destination.
                crossed_full = list(range(0, destination))
                if bucket.can_inject(crossed_full):
                    bucket.inject(crossed_full)
                    injections.append(make_injection(t, 0, destination))
                    progress = True
                    continue
                # Otherwise try a shorter route starting after the first
                # exhausted buffer.
                exhausted = [v for v in crossed_full if bucket.available(v) < 1.0]
                if not exhausted:
                    continue
                start = max(exhausted) + 1
                if start >= destination:
                    continue
                crossed = list(range(start, destination))
                if crossed and bucket.can_inject(crossed):
                    bucket.inject(crossed)
                    injections.append(make_injection(t, start, destination))
                    progress = True
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def single_destination_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    destination: Optional[int] = None,
    seed: Optional[int] = None,
) -> InjectionPattern:
    """A random bounded adversary whose packets all share one destination.

    This is the PTS setting (Proposition 3.1).  The destination defaults to
    the right end of the line.
    """
    destination = destination if destination is not None else topology.num_nodes - 1
    rng = random.Random(seed)
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    for t in range(num_rounds):
        bucket.start_round()
        attempts = max(4, int(rho + sigma) + 4)
        for _ in range(attempts):
            source = rng.randrange(0, destination)
            crossed = list(range(source, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, source, destination))
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def bursty_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int = 1,
    *,
    burst_period: int = 16,
    seed: Optional[int] = None,
) -> InjectionPattern:
    """A bounded adversary that alternates silence with maximal bursts.

    For ``burst_period - 1`` rounds nothing is injected (the token buckets
    refill toward ``sigma``), then one round injects as much as the budget
    allows.  This exercises the ``+ sigma`` term of every bound.
    """
    if burst_period < 1:
        raise ConfigurationError(f"burst_period must be >= 1, got {burst_period}")
    rng = random.Random(seed)
    destinations = _pick_destinations(topology, num_destinations, rng)
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    for t in range(num_rounds):
        bucket.start_round()
        if t % burst_period != burst_period - 1:
            continue
        progress = True
        while progress:
            progress = False
            for destination in destinations:
                source = rng.randrange(0, destination)
                crossed = list(range(source, destination))
                if bucket.can_inject(crossed):
                    bucket.inject(crossed)
                    injections.append(make_injection(t, source, destination))
                    progress = True
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def random_tree_adversary(
    tree: TreeTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    destinations: Optional[Sequence[int]] = None,
    *,
    seed: Optional[int] = None,
) -> InjectionPattern:
    """A random bounded adversary on a directed in-tree.

    Sources are drawn uniformly from the strict descendants of a uniformly
    chosen destination (defaulting to the destination set ``{root}``), and
    admissions go through a token bucket keyed by node (each packet crossing
    node ``v`` consumes a token at ``v``).
    """
    if destinations is None:
        destinations = [tree.root]
    destinations = list(destinations)
    for w in destinations:
        if w not in set(tree.nodes):
            raise ConfigurationError(f"destination {w} not in the tree")
    rng = random.Random(seed)
    node_index = {v: idx for idx, v in enumerate(tree.nodes)}
    bucket = TokenBucket(len(tree.nodes), rho, sigma)
    injections: List[Injection] = []
    # Precompute, for every destination, the nodes that can send to it.
    eligible_sources = {
        w: [u for u in tree.nodes if u != w and tree.is_upstream(u, w)]
        for w in destinations
    }
    usable_destinations = [w for w in destinations if eligible_sources[w]]
    if not usable_destinations:
        return InjectionPattern([], rho=rho, sigma=sigma)
    attempts = max(4, int(rho + sigma) * len(usable_destinations) + 4)
    for t in range(num_rounds):
        bucket.start_round()
        for _ in range(attempts):
            destination = rng.choice(usable_destinations)
            source = rng.choice(eligible_sources[destination])
            crossed = [node_index[v] for v in tree.path(source, destination)[:-1]]
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, source, destination))
    return InjectionPattern(injections, rho=rho, sigma=sigma)


# ---------------------------------------------------------------------------
# Registry entry points (repro.api).  Each builder follows the uniform
# adversary convention: (topology, *, rho, sigma, rounds, **params).
# ---------------------------------------------------------------------------


def hierarchy_random_destinations(num_nodes: int, branching: int, levels: int) -> int:
    """Destination count for the "random" variant of the Theorem 4.1 workloads.

    One site per (level, branch) up to the obvious ``n - 1`` cap — the single
    source of truth shared by the CLI, the E4/E9 benchmarks and the
    hierarchical workload builder.
    """
    return min(num_nodes - 1, branching * levels)


@register_adversary("bounded", aliases=("random",))
def build_bounded_adversary(
    topology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    seed: Optional[int] = None,
    num_destinations: int = 1,
    destinations: Optional[Sequence[int]] = None,
    intensity: float = 1.0,
) -> InjectionPattern:
    """A random ``(rho, sigma)``-bounded adversary on any supported topology.

    Lines use :func:`random_line_adversary` (``num_destinations`` random
    sites); trees and forests use :func:`random_tree_adversary` with the
    given ``destinations`` (default: the root).
    """
    if isinstance(topology, LineTopology):
        return random_line_adversary(
            topology, rho, sigma, rounds, num_destinations,
            seed=seed, intensity=intensity,
        )
    return random_tree_adversary(
        topology, rho, sigma, rounds, destinations, seed=seed
    )


@register_adversary("single", aliases=("single-destination",))
def build_single_destination_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destination: Optional[int] = None,
    seed: Optional[int] = None,
) -> InjectionPattern:
    return single_destination_adversary(
        topology, rho, sigma, rounds, destination=destination, seed=seed
    )


@register_adversary("saturating")
def build_saturating_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    num_destinations: int = 1,
    seed: Optional[int] = None,
) -> InjectionPattern:
    return saturating_line_adversary(
        topology, rho, sigma, rounds, num_destinations, seed=seed
    )


@register_adversary("bursty")
def build_bursty_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    num_destinations: int = 1,
    burst_period: int = 16,
    seed: Optional[int] = None,
) -> InjectionPattern:
    return bursty_adversary(
        topology, rho, sigma, rounds, num_destinations,
        burst_period=burst_period, seed=seed,
    )
