"""Randomised (rho, sigma)-bounded adversary generators.

The paper's upper bounds are quantified over *all* ``(rho, sigma)``-bounded
adversaries, so the test-suite and benchmarks exercise the algorithms on a
family of randomly generated bounded patterns in addition to the deterministic
stress constructions of :mod:`repro.adversary.stress`.

Every generator here guarantees boundedness *by construction*: injections are
admitted through a per-buffer :class:`~repro.adversary.bounded.TokenBucket`
(or, for :func:`trickle_adversary`, a bucketless credit counter), so the
returned adversary always passes
:func:`~repro.adversary.bounded.check_bounded` for the declared parameters.

Each generator is written as a *row source* — a
:class:`~repro.adversary.base.ResumableRows` iterator producing one round's
``(source, destination)`` routes at a time — consumed by two interchangeable
front ends:

* the **eager** path materialises every round into an
  :class:`~repro.adversary.base.InjectionPattern` (what analyses and most
  tests want), exactly as the seed library did;
* the **lazy** path (``stream=True``) wraps the same iterator in a
  :class:`~repro.adversary.base.StreamingAdversary`, so a ``T``-round
  schedule is produced round by round and a horizon-scale run never holds
  the whole schedule in memory.

Because both paths consume the identical row stream (and allocate packet ids
in the identical order), a seeded scenario produces *bit-identical* packets
either way.  Unlike the forward-only generators of PR 3, every row source
exposes an explicit ``(round, cursor)`` resume API — ``cursor()`` captures
the RNG / token-bucket / credit state at a round boundary, and ``restore()``
repositions a fresh iterator there without replaying earlier rounds — which
is what lets :mod:`repro.checkpoint` snapshot a mid-flight streaming run.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from ..api.registry import register_adversary
from ..core.packet import Injection, make_injection
from ..network.errors import ConfigurationError
from ..network.topology import LineTopology, TreeTopology
from .base import (
    InjectionPattern,
    ResumableRows,
    RouteRow,
    StreamingAdversary,
    decode_rng_state,
    encode_rng_state,
)
from .bounded import TokenBucket

__all__ = [
    "random_line_adversary",
    "saturating_line_adversary",
    "single_destination_adversary",
    "random_tree_adversary",
    "bursty_adversary",
    "trickle_adversary",
    "hierarchy_random_destinations",
]

#: What the generator functions return: the eager pattern or the lazy stream.
BoundedAdversary = Union[InjectionPattern, StreamingAdversary]


def _pick_destinations(
    topology: LineTopology,
    num_destinations: int,
    rng: random.Random,
) -> List[int]:
    """Pick ``d`` distinct destination nodes (always including the last node)."""
    n = topology.num_nodes
    if num_destinations < 1:
        raise ConfigurationError("num_destinations must be >= 1")
    if num_destinations > n - 1:
        raise ConfigurationError(
            f"cannot place {num_destinations} destinations on a line with {n} nodes"
        )
    candidates = list(range(1, n))
    rng.shuffle(candidates)
    chosen = set(candidates[: num_destinations - 1])
    chosen.add(n - 1)
    while len(chosen) < num_destinations:
        chosen.add(candidates[len(chosen)])
    return sorted(chosen)


def _materialize(
    rows: Iterator[RouteRow], *, rho: float, sigma: float
) -> InjectionPattern:
    """Drain a row generator into an eager :class:`InjectionPattern`."""
    injections: List[Injection] = []
    for t, row in enumerate(rows):
        injections.extend(
            make_injection(t, source, destination) for source, destination in row
        )
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def _front_end(
    factory: Callable[[], Iterator[RouteRow]],
    num_rounds: int,
    *,
    rho: float,
    sigma: float,
    stream: bool,
) -> BoundedAdversary:
    """The shared eager/lazy fork every generator goes through."""
    if stream:
        return StreamingAdversary(factory, num_rounds, rho=rho, sigma=sigma)
    return _materialize(factory(), rho=rho, sigma=sigma)


def _validate_envelope(rho: float, sigma: float) -> None:
    if not (0 < rho <= 1):
        raise ConfigurationError(f"rho must be in (0, 1], got {rho}")
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")


# ---------------------------------------------------------------------------
# Line generators
# ---------------------------------------------------------------------------


class _BucketRows(ResumableRows):
    """Shared cursor plumbing for RNG + token-bucket row sources.

    All randomised generators carry exactly this mutable state between round
    boundaries: the Mersenne-Twister state and the per-buffer token levels.
    Deterministic derived quantities (destination sets, proposal budgets) are
    recomputed by ``__init__`` from the construction arguments, so a restored
    iterator is indistinguishable from one that generated every round itself.
    """

    def __init__(self, num_rounds: int, rng: random.Random, bucket: TokenBucket) -> None:
        super().__init__(num_rounds)
        self.rng = rng
        self.bucket = bucket

    def state(self) -> Dict[str, Any]:
        return {
            "rng": encode_rng_state(self.rng.getstate()),
            "bucket": self.bucket.state(),
        }

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(decode_rng_state(state["rng"]))
        self.bucket.set_state(state["bucket"])


class _RandomLineRows(_BucketRows):
    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        num_destinations: int,
        seed: Optional[int],
        intensity: float,
    ) -> None:
        rng = random.Random(seed)
        self.destinations = _pick_destinations(topology, num_destinations, rng)
        super().__init__(num_rounds, rng, TokenBucket(topology.num_nodes, rho, sigma))
        self.intensity = intensity
        # Proposal budget per round: generous enough to use up the bucket when
        # intensity is 1 but bounded so generation stays linear in num_rounds.
        self.proposals_per_round = max(
            4, int(2 * (rho + sigma) * len(self.destinations)) + 4
        )

    def row(self, round_number: int) -> RouteRow:
        rng, bucket = self.rng, self.bucket
        bucket.start_round()
        row: RouteRow = []
        for _ in range(self.proposals_per_round):
            if rng.random() > self.intensity:
                continue
            destination = rng.choice(self.destinations)
            source = rng.randrange(0, destination)
            crossed = list(range(source, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                row.append((source, destination))
        return row


def random_line_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int = 1,
    *,
    seed: Optional[int] = None,
    intensity: float = 1.0,
    stream: bool = False,
) -> BoundedAdversary:
    """A random bounded adversary on a line.

    Each round the generator proposes random ``(source, destination)`` pairs
    (destinations drawn from a fixed set of ``num_destinations`` nodes) and
    admits each proposal only if the token bucket allows it.  ``intensity``
    in ``(0, 1]`` scales how aggressively the generator tries to exhaust its
    budget: 1.0 keeps proposing until the bucket is empty, smaller values
    leave slack.

    Returns an adversary that is ``(rho, sigma)``-bounded by construction:
    an :class:`InjectionPattern` by default, or (``stream=True``) a
    :class:`StreamingAdversary` producing the identical schedule lazily.
    """
    _validate_envelope(rho, sigma)
    if not (0 < intensity <= 1):
        raise ConfigurationError(f"intensity must be in (0, 1], got {intensity}")
    _pick_destinations(topology, num_destinations, random.Random(seed))  # fail fast
    return _front_end(
        lambda: _RandomLineRows(
            topology, rho, sigma, num_rounds, num_destinations, seed, intensity
        ),
        num_rounds, rho=rho, sigma=sigma, stream=stream,
    )


class _SaturatingLineRows(_BucketRows):
    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        num_destinations: int,
        seed: Optional[int],
    ) -> None:
        rng = random.Random(seed)
        self.destinations = _pick_destinations(topology, num_destinations, rng)
        super().__init__(num_rounds, rng, TokenBucket(topology.num_nodes, rho, sigma))

    def row(self, round_number: int) -> RouteRow:
        bucket = self.bucket
        bucket.start_round()
        row: RouteRow = []
        progress = True
        while progress:
            progress = False
            for destination in self.destinations:
                # Longest admissible route into this destination.
                crossed_full = list(range(0, destination))
                if bucket.can_inject(crossed_full):
                    bucket.inject(crossed_full)
                    row.append((0, destination))
                    progress = True
                    continue
                # Otherwise try a shorter route starting after the first
                # exhausted buffer.
                exhausted = [v for v in crossed_full if bucket.available(v) < 1.0]
                if not exhausted:
                    continue
                start = max(exhausted) + 1
                if start >= destination:
                    continue
                crossed = list(range(start, destination))
                if crossed and bucket.can_inject(crossed):
                    bucket.inject(crossed)
                    row.append((start, destination))
                    progress = True
        return row


def saturating_line_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int = 1,
    *,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    """A bounded adversary that front-loads its burst budget.

    In every round the generator injects as many packets as the token bucket
    allows, always routing them over long paths (source 0 or as far left as
    admissible) so that every buffer's budget is consumed.  This produces the
    harshest *feasible* load within the declared bound and is the default
    workload for validating the upper-bound propositions.
    """
    _pick_destinations(topology, num_destinations, random.Random(seed))  # fail fast
    return _front_end(
        lambda: _SaturatingLineRows(
            topology, rho, sigma, num_rounds, num_destinations, seed
        ),
        num_rounds, rho=rho, sigma=sigma, stream=stream,
    )


class _SingleDestinationRows(_BucketRows):
    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        destination: int,
        seed: Optional[int],
    ) -> None:
        super().__init__(
            num_rounds, random.Random(seed), TokenBucket(topology.num_nodes, rho, sigma)
        )
        self.destination = destination
        self.attempts = max(4, int(rho + sigma) + 4)

    def row(self, round_number: int) -> RouteRow:
        rng, bucket, destination = self.rng, self.bucket, self.destination
        bucket.start_round()
        row: RouteRow = []
        for _ in range(self.attempts):
            source = rng.randrange(0, destination)
            crossed = list(range(source, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                row.append((source, destination))
        return row


def single_destination_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    destination: Optional[int] = None,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    """A random bounded adversary whose packets all share one destination.

    This is the PTS setting (Proposition 3.1).  The destination defaults to
    the right end of the line.
    """
    destination = destination if destination is not None else topology.num_nodes - 1
    return _front_end(
        lambda: _SingleDestinationRows(
            topology, rho, sigma, num_rounds, destination, seed
        ),
        num_rounds, rho=rho, sigma=sigma, stream=stream,
    )


class _BurstyRows(_BucketRows):
    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        num_destinations: int,
        burst_period: int,
        seed: Optional[int],
    ) -> None:
        rng = random.Random(seed)
        self.destinations = _pick_destinations(topology, num_destinations, rng)
        super().__init__(num_rounds, rng, TokenBucket(topology.num_nodes, rho, sigma))
        self.burst_period = burst_period

    def row(self, round_number: int) -> RouteRow:
        rng, bucket = self.rng, self.bucket
        bucket.start_round()
        row: RouteRow = []
        if round_number % self.burst_period == self.burst_period - 1:
            progress = True
            while progress:
                progress = False
                for destination in self.destinations:
                    source = rng.randrange(0, destination)
                    crossed = list(range(source, destination))
                    if bucket.can_inject(crossed):
                        bucket.inject(crossed)
                        row.append((source, destination))
                        progress = True
        return row


def bursty_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int = 1,
    *,
    burst_period: int = 16,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    """A bounded adversary that alternates silence with maximal bursts.

    For ``burst_period - 1`` rounds nothing is injected (the token buckets
    refill toward ``sigma``), then one round injects as much as the budget
    allows.  This exercises the ``+ sigma`` term of every bound.
    """
    if burst_period < 1:
        raise ConfigurationError(f"burst_period must be >= 1, got {burst_period}")
    _pick_destinations(topology, num_destinations, random.Random(seed))  # fail fast
    return _front_end(
        lambda: _BurstyRows(
            topology, rho, sigma, num_rounds, num_destinations, burst_period, seed
        ),
        num_rounds, rho=rho, sigma=sigma, stream=stream,
    )


class _TrickleRows(ResumableRows):
    def __init__(
        self,
        rho: float,
        num_rounds: int,
        destinations: Sequence[int],
        seed: Optional[int],
    ) -> None:
        super().__init__(num_rounds)
        self.rho = rho
        self.destinations = list(destinations)
        self.rng = random.Random(seed)
        self.credit = 0.0

    def row(self, round_number: int) -> RouteRow:
        rng, destinations = self.rng, self.destinations
        multi = len(destinations) > 1
        self.credit += self.rho
        row: RouteRow = []
        while self.credit >= 1.0:
            self.credit -= 1.0
            destination = (
                destinations[rng.randrange(len(destinations))]
                if multi else destinations[0]
            )
            row.append((rng.randrange(0, destination), destination))
        return row

    def state(self) -> Dict[str, Any]:
        return {
            "rng": encode_rng_state(self.rng.getstate()),
            "credit": self.credit,
        }

    def set_state(self, state: Mapping[str, Any]) -> None:
        self.rng.setstate(decode_rng_state(state["rng"]))
        self.credit = float(state["credit"])


def trickle_adversary(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    destination: Optional[int] = None,
    destinations: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    """A bucketless bounded adversary whose generation cost is O(1) per round.

    Every round accrues ``rho`` units of credit and injects one packet (at a
    uniformly random source, toward a uniformly random destination from the
    set) per whole unit.  Any window of ``T`` rounds therefore carries at
    most ``rho * T + 1`` packets in total, and each packet crosses a given
    buffer at most once, so the pattern is ``(rho, 1)``-bounded *without* a
    per-buffer token bucket — unlike the other generators, whose admission
    check walks the packet's whole path, this one never touches a
    per-node structure and scales to million-node lines.  The declared sigma
    is ``max(sigma, 1)``.

    The intended use is horizon-scale streaming runs (``stream=True``); the
    eager path exists so small instances can be audited with
    :func:`~repro.adversary.bounded.check_bounded`.
    """
    _validate_envelope(rho, sigma)
    if destinations is not None and destination is not None:
        raise ConfigurationError("pass destination or destinations, not both")
    if destinations is None:
        destinations = [
            destination if destination is not None else topology.num_nodes - 1
        ]
    destinations = list(destinations)
    if not destinations:
        raise ConfigurationError("trickle adversary needs at least one destination")
    max_destination = (
        topology.num_nodes if topology.allow_virtual_sink else topology.num_nodes - 1
    )
    for w in destinations:
        if not (1 <= w <= max_destination):
            raise ConfigurationError(f"destination {w} outside [1, {max_destination}]")
    return _front_end(
        lambda: _TrickleRows(rho, num_rounds, destinations, seed),
        num_rounds, rho=rho, sigma=max(float(sigma), 1.0), stream=stream,
    )


# ---------------------------------------------------------------------------
# Tree generators
# ---------------------------------------------------------------------------


class _EmptyRows(ResumableRows):
    """A silent row source (degenerate destination sets)."""

    def row(self, round_number: int) -> RouteRow:
        return []


class _RandomTreeRows(_BucketRows):
    def __init__(
        self,
        tree: TreeTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        usable_destinations: List[int],
        eligible_sources: dict,
        node_index: dict,
        seed: Optional[int],
    ) -> None:
        super().__init__(
            num_rounds, random.Random(seed), TokenBucket(len(tree.nodes), rho, sigma)
        )
        self.tree = tree
        self.usable_destinations = usable_destinations
        self.eligible_sources = eligible_sources
        self.node_index = node_index
        self.attempts = max(4, int(rho + sigma) * len(usable_destinations) + 4)

    def row(self, round_number: int) -> RouteRow:
        rng, bucket = self.rng, self.bucket
        bucket.start_round()
        row: RouteRow = []
        for _ in range(self.attempts):
            destination = rng.choice(self.usable_destinations)
            source = rng.choice(self.eligible_sources[destination])
            crossed = [
                self.node_index[v] for v in self.tree.path(source, destination)[:-1]
            ]
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                row.append((source, destination))
        return row


def random_tree_adversary(
    tree: TreeTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    destinations: Optional[Sequence[int]] = None,
    *,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    """A random bounded adversary on a directed in-tree.

    Sources are drawn uniformly from the strict descendants of a uniformly
    chosen destination (defaulting to the destination set ``{root}``), and
    admissions go through a token bucket keyed by node (each packet crossing
    node ``v`` consumes a token at ``v``).
    """
    if destinations is None:
        destinations = [tree.root]
    destinations = list(destinations)
    for w in destinations:
        if w not in set(tree.nodes):
            raise ConfigurationError(f"destination {w} not in the tree")
    node_index = {v: idx for idx, v in enumerate(tree.nodes)}
    # Precompute, for every destination, the nodes that can send to it.
    eligible_sources = {
        w: [u for u in tree.nodes if u != w and tree.is_upstream(u, w)]
        for w in destinations
    }
    usable_destinations = [w for w in destinations if eligible_sources[w]]
    if not usable_destinations:
        if stream:
            # An empty-but-resumable stream, so the degenerate case stays
            # checkpointable like every other generator.
            return StreamingAdversary(
                lambda: _EmptyRows(num_rounds), num_rounds, rho=rho, sigma=sigma
            )
        return InjectionPattern([], rho=rho, sigma=sigma)
    return _front_end(
        lambda: _RandomTreeRows(
            tree, rho, sigma, num_rounds, usable_destinations, eligible_sources,
            node_index, seed,
        ),
        num_rounds, rho=rho, sigma=sigma, stream=stream,
    )


# ---------------------------------------------------------------------------
# Registry entry points (repro.api).  Each builder follows the uniform
# adversary convention: (topology, *, rho, sigma, rounds, **params).
# ---------------------------------------------------------------------------


def hierarchy_random_destinations(num_nodes: int, branching: int, levels: int) -> int:
    """Destination count for the "random" variant of the Theorem 4.1 workloads.

    One site per (level, branch) up to the obvious ``n - 1`` cap — the single
    source of truth shared by the CLI, the E4/E9 benchmarks and the
    hierarchical workload builder.
    """
    return min(num_nodes - 1, branching * levels)


@register_adversary("explicit")
def build_explicit_adversary(
    topology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    routes: Sequence[Sequence[int]] = (),
) -> InjectionPattern:
    """A literal injection schedule: ``routes`` is ``(round, source,
    destination)`` triples, materialised in the given order.

    Makes hand-crafted deterministic patterns addressable from specs (tests,
    regression pinning, sharded boundary cases) without registering a new
    builder.  ``rho``/``sigma`` are taken as declared; use
    :func:`~repro.adversary.bounded.check_bounded` to audit the claim.
    """
    injections = []
    for route in routes:
        round_number, source, destination = route
        if int(round_number) >= rounds:
            raise ConfigurationError(
                f"explicit route {route!r} is injected at round "
                f"{round_number}, past the declared horizon {rounds}"
            )
        injections.append(
            make_injection(int(round_number), int(source), int(destination))
        )
    return InjectionPattern(injections, rho=rho, sigma=sigma)


@register_adversary("bounded", aliases=("random",))
def build_bounded_adversary(
    topology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    seed: Optional[int] = None,
    num_destinations: int = 1,
    destinations: Optional[Sequence[int]] = None,
    intensity: float = 1.0,
    stream: bool = False,
) -> BoundedAdversary:
    """A random ``(rho, sigma)``-bounded adversary on any supported topology.

    Lines use :func:`random_line_adversary` (``num_destinations`` random
    sites); trees and forests use :func:`random_tree_adversary` with the
    given ``destinations`` (default: the root).  ``stream=True`` returns the
    lazy :class:`StreamingAdversary` front end instead of materialising the
    schedule.
    """
    if isinstance(topology, LineTopology):
        return random_line_adversary(
            topology, rho, sigma, rounds, num_destinations,
            seed=seed, intensity=intensity, stream=stream,
        )
    return random_tree_adversary(
        topology, rho, sigma, rounds, destinations, seed=seed, stream=stream
    )


@register_adversary("single", aliases=("single-destination",))
def build_single_destination_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destination: Optional[int] = None,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    return single_destination_adversary(
        topology, rho, sigma, rounds, destination=destination, seed=seed,
        stream=stream,
    )


@register_adversary("saturating")
def build_saturating_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    num_destinations: int = 1,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    return saturating_line_adversary(
        topology, rho, sigma, rounds, num_destinations, seed=seed, stream=stream
    )


@register_adversary("bursty")
def build_bursty_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    num_destinations: int = 1,
    burst_period: int = 16,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    return bursty_adversary(
        topology, rho, sigma, rounds, num_destinations,
        burst_period=burst_period, seed=seed, stream=stream,
    )


@register_adversary("trickle", aliases=("steady",))
def build_trickle_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destination: Optional[int] = None,
    destinations: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
    stream: bool = False,
) -> BoundedAdversary:
    return trickle_adversary(
        topology, rho, sigma, rounds, destination=destination,
        destinations=destinations, seed=seed, stream=stream,
    )
