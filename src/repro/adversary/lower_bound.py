"""The Section 5 lower-bound adversary (Theorem 5.1).

The construction works on a line of ``n = (ell + 1) * m**ell`` buffers and
runs for ``m**ell`` phases of ``m`` rounds each.  Writing a round number in
base ``m`` as ``t_ell t_{ell-1} ... t_0``, the *phase* containing ``t`` is
identified by the digits ``t_ell ... t_1`` and during that phase the adversary
injects ``rho * m`` packets of each of ``ell + 1`` types along edge-disjoint
routes:

* type-1 packets at buffer ``v_1`` with destination ``n`` (a virtual sink
  past the end of the line),
* type-``k`` packets (``2 <= k <= ell``) at buffer ``v_k`` with destination
  ``v_{k-1}``,
* type-``(ell+1)`` packets at buffer 0 with destination ``v_ell``,

where ``v_i(t_ell ... t_1) = sum_{k=i}^{ell} ((k+1) m^k - (t_k+1) k m^{k-1})``.
The front ``F(t) = v_1`` sweeps left over time; the potential argument shows
that for *any* forwarding protocol either many packets pile up in a short
suffix interval or many "fresh" packets accumulate behind the front, giving
the ``Omega(((ell+1) rho - 1) / (2 ell) * n^{1/ell})`` bound.

The injections are spread inside each phase at token rate ``rho`` (burst 1),
so the produced pattern is ``(rho, sigma)``-bounded for a small constant
``sigma`` — the tests measure the tightest sigma and pin it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..api.registry import register_adversary
from ..core.packet import Injection, make_injection
from ..network.errors import ConfigurationError
from ..network.topology import LineTopology
from .base import InjectionPattern

__all__ = [
    "LowerBoundConstruction",
    "lower_bound_network_size",
    "injection_site",
    "front_position",
]


def lower_bound_network_size(branching: int, levels: int) -> int:
    """``n = (ell + 1) * m**ell`` — the line length the construction needs."""
    if branching < 2:
        raise ConfigurationError(f"branching m must be >= 2, got {branching}")
    if levels < 1:
        raise ConfigurationError(f"levels ell must be >= 1, got {levels}")
    return (levels + 1) * branching**levels


def _phase_digits(phase_index: int, branching: int, levels: int) -> List[int]:
    """Digits ``t_1 .. t_ell`` (least significant first) of a phase index.

    A phase index ``p`` corresponds to round numbers whose base-``m`` digits
    ``t_ell ... t_1`` spell ``p``; i.e. ``p = sum_k t_k m^{k-1}``.
    """
    digits = []
    value = phase_index
    for _ in range(levels):
        digits.append(value % branching)
        value //= branching
    if value != 0:
        raise ConfigurationError(
            f"phase index {phase_index} does not fit in {levels} base-{branching} digits"
        )
    return digits  # digits[k-1] is t_k


def injection_site(
    site_index: int,
    phase_digits: List[int],
    branching: int,
    levels: int,
) -> int:
    """``v_i(t_ell ... t_1)`` for ``i = site_index`` (1-based, as in the paper)."""
    if not (1 <= site_index <= levels):
        raise ConfigurationError(
            f"site index must be in [1, {levels}], got {site_index}"
        )
    m = branching
    total = 0
    for k in range(site_index, levels + 1):
        t_k = phase_digits[k - 1]
        total += (k + 1) * m**k - (t_k + 1) * k * m ** (k - 1)
    return total


def front_position(round_number: int, branching: int, levels: int) -> int:
    """``F(t) = v_1(t_ell ... t_1)`` — the front during the phase containing ``t``."""
    phase_index = round_number // branching
    digits = _phase_digits(phase_index, branching, levels)
    return injection_site(1, digits, branching, levels)


@dataclass(frozen=True)
class PhasePlan:
    """The injection plan for one phase of the lower-bound construction."""

    phase_index: int
    first_round: int
    digits: List[int]
    #: ``v_1 .. v_ell`` (index 0 is ``v_1``).
    sites: List[int]
    #: ``(source, destination)`` for each of the ``ell + 1`` packet types,
    #: type-1 first.
    routes: List[tuple]


class LowerBoundConstruction:
    """Builds and describes the Theorem 5.1 adversary.

    Parameters
    ----------
    branching:
        The parameter ``m``.
    levels:
        The parameter ``ell`` (the theorem needs ``ell >= 2``; ``ell = 1`` is
        accepted for completeness and reduces to a single-level front sweep).
    rho:
        The injection rate; the theorem requires ``rho > 1 / (ell + 1)`` for
        the bound to be non-trivial, but the construction itself is valid for
        any ``0 < rho <= 1``.
    """

    def __init__(self, branching: int, levels: int, rho: float) -> None:
        if branching < 2:
            raise ConfigurationError(f"branching m must be >= 2, got {branching}")
        if levels < 1:
            raise ConfigurationError(f"levels ell must be >= 1, got {levels}")
        if not (0 < rho <= 1):
            raise ConfigurationError(f"rho must be in (0, 1], got {rho}")
        self.branching = branching
        self.levels = levels
        self.rho = float(rho)
        self.num_nodes = lower_bound_network_size(branching, levels)
        self.num_phases = branching**levels
        self.phase_length = branching
        self.num_rounds = self.num_phases * self.phase_length
        #: Packets of each type injected per phase (the paper's ``rho m``).
        self.packets_per_type = int(self.rho * self.phase_length)

    # -- structural queries -----------------------------------------------------

    def topology(self) -> LineTopology:
        """The line this construction runs on (virtual sink enabled)."""
        return LineTopology(self.num_nodes, allow_virtual_sink=True)

    def phase_plan(self, phase_index: int) -> PhasePlan:
        """Sites and routes used during the given phase."""
        if not (0 <= phase_index < self.num_phases):
            raise ConfigurationError(
                f"phase index {phase_index} outside [0, {self.num_phases - 1}]"
            )
        digits = _phase_digits(phase_index, self.branching, self.levels)
        sites = [
            injection_site(i, digits, self.branching, self.levels)
            for i in range(1, self.levels + 1)
        ]
        routes: List[tuple] = []
        # type-1: v_1 -> n (virtual sink)
        routes.append((sites[0], self.num_nodes))
        # type-k for k = 2 .. ell: v_k -> v_{k-1}
        for k in range(2, self.levels + 1):
            routes.append((sites[k - 1], sites[k - 2]))
        # type-(ell+1): 0 -> v_ell
        routes.append((0, sites[self.levels - 1]))
        return PhasePlan(
            phase_index=phase_index,
            first_round=phase_index * self.phase_length,
            digits=digits,
            sites=sites,
            routes=routes,
        )

    def front(self, round_number: int) -> int:
        """``F(t)`` for any round within the construction's horizon."""
        if not (0 <= round_number < self.num_rounds):
            raise ConfigurationError(
                f"round {round_number} outside [0, {self.num_rounds - 1}]"
            )
        return front_position(round_number, self.branching, self.levels)

    def theoretical_bound(self) -> float:
        """The Theorem 5.1 buffer-space lower bound for these parameters."""
        coefficient = (self.levels + 1) * self.rho - 1
        if coefficient <= 0:
            return 0.0
        return (
            coefficient
            / (2.0 * self.levels)
            * self.num_nodes ** (1.0 / self.levels)
        )

    # -- pattern construction -----------------------------------------------------

    def _injection_offsets(self) -> List[int]:
        """Offsets within a phase at which each type emits one packet.

        Spreads the ``rho * m`` packets of a type evenly over the phase's
        ``m`` rounds (one packet whenever the cumulative rate crosses an
        integer), so each route is fed at rate ``rho`` with burst 1.
        """
        offsets = []
        for s in range(self.phase_length):
            if int((s + 1) * self.rho) > int(s * self.rho):
                offsets.append(s)
        return offsets

    def build_pattern(self, num_phases: Optional[int] = None) -> InjectionPattern:
        """Materialise the injection pattern (optionally truncated to fewer phases)."""
        phases = self.num_phases if num_phases is None else min(num_phases, self.num_phases)
        offsets = self._injection_offsets()
        injections: List[Injection] = []
        for phase_index in range(phases):
            plan = self.phase_plan(phase_index)
            for source, destination in plan.routes:
                if destination <= source:
                    # Degenerate route (can occur for ell = 1 edge cases); skip.
                    continue
                for offset in offsets:
                    injections.append(
                        make_injection(plan.first_round + offset, source, destination)
                    )
        return InjectionPattern(injections, rho=self.rho, sigma=None)

    # -- fresh / stale analysis ---------------------------------------------------

    def classify_packets(
        self,
        locations: Mapping[int, Optional[int]],
        round_number: int,
    ) -> Dict[str, int]:
        """Count fresh and stale packets given current packet locations.

        Parameters
        ----------
        locations:
            Maps packet id to the buffer currently storing it, or ``None`` if
            the packet has been delivered (delivered packets are stale by
            Lemma 5.3, but they no longer occupy buffers so they are counted
            separately).
        round_number:
            The round at which the snapshot was taken.

        Returns
        -------
        dict
            ``{"fresh": ..., "stale": ..., "delivered": ...}``.
        """
        front = self.front(min(round_number, self.num_rounds - 1))
        fresh = stale = delivered = 0
        for location in locations.values():
            if location is None:
                delivered += 1
            elif location <= front:
                fresh += 1
            else:
                stale += 1
        return {"fresh": fresh, "stale": stale, "delivered": delivered}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LowerBoundConstruction(m={self.branching}, ell={self.levels}, "
            f"rho={self.rho}, n={self.num_nodes}, rounds={self.num_rounds})"
        )


@register_adversary("lower-bound", aliases=("lower_bound",))
def build_lower_bound_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    branching: int,
    levels: int,
    num_phases: Optional[int] = None,
) -> InjectionPattern:
    """Registry entry point for the Theorem 5.1 construction.

    ``sigma`` and ``rounds`` are ignored: the construction fixes its own
    horizon and its effective burst is close to 1 by design (the returned
    pattern declares ``sigma=None`` so no upper bound is claimed against it).
    The topology must be the construction's own line,
    ``LineTopology(lower_bound_network_size(branching, levels))``.
    """
    construction = LowerBoundConstruction(branching, levels, rho)
    if topology.num_nodes != construction.num_nodes:
        raise ConfigurationError(
            f"lower-bound adversary with m={branching}, ell={levels} needs a line "
            f"of {construction.num_nodes} nodes, got {topology.num_nodes}"
        )
    return construction.build_pattern(num_phases)
