"""Deterministic stress adversaries that push the algorithms toward their bounds.

The upper-bound propositions are worst-case statements, so a convincing
empirical validation needs workloads that actually approach the bound rather
than leaving the buffers nearly empty.  The constructions here are designed
around the structure of each bound:

* :func:`pts_burst_stress` — drives a single-destination instance toward the
  ``2 + sigma`` PTS bound by spending the whole burst budget at the leftmost
  buffer and then sustaining rate ``rho``.
* :func:`round_robin_destination_stress` — drives PPTS toward its ``d`` term:
  packets with ``d`` distinct destinations are dripped into one node, one
  destination at a time, so each of its ``d`` pseudo-buffers ends up occupied
  (a node with one packet per pseudo-buffer is never "bad", so PPTS rightly
  lets them sit there).
* :func:`nested_route_stress` — edge-disjoint nested routes (the shape used by
  the Omega(d) argument of [Patt-Shamir & Rosenbaum 2017]) that converge on a
  common suffix of the line.
* :func:`hierarchy_stress` — destinations chosen to exercise every level of
  the HPTS hierarchy (one destination per digit position).
* :func:`tree_convergecast_stress` — all leaves of a tree fire toward the
  root, saturating the fan-in.

All constructions are ``(rho, sigma)``-bounded by construction (token-bucket
admission), and the tests verify this with the independent checker.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..api.registry import register_adversary
from ..core.packet import Injection, make_injection
from ..network.errors import ConfigurationError
from ..network.topology import LineTopology, TreeTopology
from .base import InjectionPattern
from .bounded import TokenBucket

__all__ = [
    "pts_burst_stress",
    "round_robin_destination_stress",
    "nested_route_stress",
    "hierarchy_stress",
    "tree_convergecast_stress",
    "evenly_spaced_destinations",
]


def evenly_spaced_destinations(num_nodes: int, num_destinations: int) -> List[int]:
    """``d`` destinations spread evenly over ``[1, n-1]``, always ending at ``n-1``."""
    if num_destinations < 1:
        raise ConfigurationError("num_destinations must be >= 1")
    if num_destinations > num_nodes - 1:
        raise ConfigurationError(
            f"cannot place {num_destinations} destinations on {num_nodes} nodes"
        )
    if num_destinations == 1:
        return [num_nodes - 1]
    step = (num_nodes - 1) / num_destinations
    destinations = sorted({max(1, round((k + 1) * step)) for k in range(num_destinations)})
    destinations[-1] = num_nodes - 1
    # Rounding can merge adjacent destinations; fill from the left if needed.
    candidate = 1
    while len(destinations) < num_destinations:
        if candidate not in destinations:
            destinations.append(candidate)
            destinations.sort()
        candidate += 1
    return destinations


def _rate_schedule(num_rounds: int, rho: float) -> List[int]:
    """Rounds at which a rate-``rho`` stream emits a packet (burst 1).

    Emits a packet in round ``t`` whenever ``floor((t+1) rho) > floor(t rho)``,
    which yields ``floor(T rho)`` packets over ``T`` rounds and never exceeds
    rate ``rho`` by more than one packet over any interval.
    """
    schedule = []
    for t in range(num_rounds):
        if int((t + 1) * rho) > int(t * rho):
            schedule.append(t)
    return schedule


def pts_burst_stress(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    destination: Optional[int] = None,
) -> InjectionPattern:
    """Single-destination stress for Proposition 3.1.

    Round 0 spends the entire burst budget at buffer 0 (``sigma + 1`` packets,
    the most any single round may put across one buffer when ``rho <= 1``),
    then a sustained stream at rate ``rho`` keeps the pressure on.  Under PTS
    the leftmost buffer should hover near the ``2 + sigma`` bound.
    """
    destination = destination if destination is not None else topology.num_nodes - 1
    topology.validate_route(0, destination)
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    crossed = list(range(0, destination))
    for t in range(num_rounds):
        bucket.start_round()
        while bucket.can_inject(crossed):
            bucket.inject(crossed)
            injections.append(make_injection(t, 0, destination))
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def round_robin_destination_stress(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int,
    *,
    source: int = 0,
) -> InjectionPattern:
    """Multi-destination stress for Proposition 3.2.

    All packets are injected at one source and cycle through ``d``
    destinations.  Because consecutive packets go to *different* destinations,
    the source's pseudo-buffers fill up one by one without any of them
    becoming bad, so PPTS correctly leaves them in place and the source's
    occupancy climbs toward ``d`` (plus the burst term).  This is the workload
    that shows the ``+ d`` term of the bound is really paid.
    """
    destinations = evenly_spaced_destinations(topology.num_nodes, num_destinations)
    destinations = [w for w in destinations if w > source]
    if not destinations:
        raise ConfigurationError("no destination lies to the right of the source")
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    next_destination = 0
    for t in range(num_rounds):
        bucket.start_round()
        injected = True
        while injected:
            injected = False
            destination = destinations[next_destination % len(destinations)]
            crossed = list(range(source, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, source, destination))
                next_destination += 1
                injected = True
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def nested_route_stress(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    num_destinations: int,
) -> InjectionPattern:
    """Edge-disjoint nested routes converging on the right end of the line.

    In each "wave" the adversary injects one packet per destination, with the
    packet for destination ``w_k`` injected at ``w_{k-1}`` (the previous
    destination), so all routes in a wave are edge-disjoint — the wave costs
    only one unit of budget per buffer regardless of ``d``.  As the packets
    flow right they pile into shared buffers near the end of the line, which
    is the mechanism behind the Omega(d) lower bound for ``rho > 1/2`` cited
    in the introduction.
    """
    destinations = evenly_spaced_destinations(topology.num_nodes, num_destinations)
    sources = [0] + destinations[:-1]
    bucket = TokenBucket(topology.num_nodes, rho, sigma)
    injections: List[Injection] = []
    for t in range(num_rounds):
        bucket.start_round()
        progress = True
        while progress:
            progress = False
            # A whole wave is admitted or skipped atomically so the nested
            # structure is preserved.
            wave = list(zip(sources, destinations))
            if all(
                bucket.can_inject(list(range(src, dst))) for src, dst in wave
            ):
                for src, dst in wave:
                    crossed = list(range(src, dst))
                    bucket.inject(crossed)
                    injections.append(make_injection(t, src, dst))
                progress = True
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def hierarchy_stress(
    topology: LineTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    branching: int,
    levels: int,
) -> InjectionPattern:
    """Stress for HPTS: destinations that force segments at every level.

    From source 0 the adversary cycles through destinations of the form
    ``m**ell - m**j`` for ``j = 0 .. ell-1`` plus the right end of the line,
    so successive packets differ from the source in different digit positions
    and populate pseudo-buffers at every level of the hierarchy.
    """
    n = topology.num_nodes
    if branching**levels != n:
        raise ConfigurationError(
            f"hierarchy_stress needs n = branching**levels, got {n} != "
            f"{branching}**{levels}"
        )
    destinations = sorted(
        {n - branching**j for j in range(levels)} | {n - 1}
    )
    destinations = [w for w in destinations if w >= 1]
    bucket = TokenBucket(n, rho, sigma)
    injections: List[Injection] = []
    next_destination = 0
    for t in range(num_rounds):
        bucket.start_round()
        injected = True
        while injected:
            injected = False
            destination = destinations[next_destination % len(destinations)]
            crossed = list(range(0, destination))
            if bucket.can_inject(crossed):
                bucket.inject(crossed)
                injections.append(make_injection(t, 0, destination))
                next_destination += 1
                injected = True
    return InjectionPattern(injections, rho=rho, sigma=sigma)


def tree_convergecast_stress(
    tree: TreeTopology,
    rho: float,
    sigma: float,
    num_rounds: int,
    destinations: Optional[Sequence[int]] = None,
) -> InjectionPattern:
    """All leaves repeatedly fire packets toward the root (or a destination set).

    This is the "information gathering" workload of [Dobrev et al. 2017] /
    [Rosen & Scalosub 2011] cited by the paper: every leaf produces data that
    must reach the root, so buffers near the root see the highest pressure.
    Destinations other than the root are chosen round-robin per leaf among the
    given set, restricted to ancestors of that leaf.
    """
    if destinations is None:
        destinations = [tree.root]
    destinations = list(destinations)
    node_index = {v: idx for idx, v in enumerate(tree.nodes)}
    bucket = TokenBucket(len(tree.nodes), rho, sigma)
    injections: List[Injection] = []
    leaves = tree.leaves()
    per_leaf_destinations = {
        leaf: [w for w in destinations if w != leaf and tree.is_upstream(leaf, w)]
        for leaf in leaves
    }
    counters = {leaf: 0 for leaf in leaves}
    for t in range(num_rounds):
        bucket.start_round()
        progress = True
        while progress:
            progress = False
            for leaf in leaves:
                options = per_leaf_destinations[leaf]
                if not options:
                    continue
                destination = options[counters[leaf] % len(options)]
                crossed = [node_index[v] for v in tree.path(leaf, destination)[:-1]]
                if bucket.can_inject(crossed):
                    bucket.inject(crossed)
                    injections.append(make_injection(t, leaf, destination))
                    counters[leaf] += 1
                    progress = True
    return InjectionPattern(injections, rho=rho, sigma=sigma)


# ---------------------------------------------------------------------------
# Registry entry points (repro.api), uniform convention:
# (topology, *, rho, sigma, rounds, **params).
# ---------------------------------------------------------------------------


@register_adversary("burst", aliases=("stress",))
def build_burst_stress(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destination: Optional[int] = None,
) -> InjectionPattern:
    return pts_burst_stress(topology, rho, sigma, rounds, destination=destination)


@register_adversary("round-robin", aliases=("round_robin",))
def build_round_robin_stress(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    num_destinations: int = 8,
    source: int = 0,
) -> InjectionPattern:
    return round_robin_destination_stress(
        topology, rho, sigma, rounds, num_destinations, source=source
    )


@register_adversary("nested")
def build_nested_stress(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    num_destinations: int = 8,
) -> InjectionPattern:
    return nested_route_stress(topology, rho, sigma, rounds, num_destinations)


@register_adversary("hierarchy")
def build_hierarchy_stress(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    branching: int,
    levels: int,
) -> InjectionPattern:
    return hierarchy_stress(topology, rho, sigma, rounds, branching, levels)


@register_adversary("convergecast")
def build_convergecast_stress(
    topology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destinations: Optional[Sequence[int]] = None,
) -> InjectionPattern:
    return tree_convergecast_stress(topology, rho, sigma, rounds, destinations)
