"""Adaptive adversaries: injection processes that react to the configuration.

The upper-bound theorems quantify over *all* ``(rho, sigma)``-bounded
adversaries — including adaptive ones that watch the current buffer contents
and aim their injections at whatever is already congested.  The explicit
patterns in :mod:`repro.adversary.stress` are oblivious (fixed in advance);
the adversaries here close that gap: each round they observe the occupancy
vector the algorithm produced and choose routes that keep the pressure on,
subject to the same token-bucket admission that guarantees Definition 2.1.

The simulator detects adaptive adversaries by their ``adaptive`` attribute and
feeds them the current occupancy before asking for the round's injections.
After a run, :meth:`AdaptiveAdversary.realized_pattern` returns the concrete
:class:`~repro.adversary.base.InjectionPattern` that was actually injected, so
the independent boundedness checker can audit it like any oblivious pattern.
"""

from __future__ import annotations

import random
from abc import abstractmethod
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..api.registry import register_adversary
from ..core.packet import Injection, make_injection
from ..network.errors import CheckpointError, ConfigurationError
from ..network.topology import LineTopology
from .base import Adversary, InjectionPattern, decode_rng_state, encode_rng_state
from .bounded import TokenBucket

__all__ = ["AdaptiveAdversary", "HotspotAdversary", "BlockingAdversary"]


class AdaptiveAdversary(Adversary):
    """Base class for configuration-aware adversaries on a line.

    Subclasses implement :meth:`choose_routes`, which receives the occupancy
    vector observed at the start of the round and returns candidate
    ``(source, destination)`` routes in priority order; the base class admits
    them through a token bucket until the round's budget is exhausted.
    """

    #: Flag the simulator checks to decide whether to pass the occupancy.
    adaptive = True

    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
    ) -> None:
        if not (0 < rho <= 1):
            raise ConfigurationError(f"rho must be in (0, 1], got {rho}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if num_rounds < 0:
            raise ConfigurationError(f"num_rounds must be >= 0, got {num_rounds}")
        self.topology = topology
        self.rho = float(rho)
        self.sigma = float(sigma)
        self.num_rounds = num_rounds
        self._bucket = TokenBucket(topology.num_nodes, rho, sigma)
        self._realized: List[Injection] = []
        self._last_round_processed = -1

    # -- Adversary interface -----------------------------------------------------

    @property
    def horizon(self) -> int:
        return self.num_rounds

    def injections_for_round(self, round_number: int) -> List[Injection]:
        """Oblivious fallback: called when no occupancy information is available."""
        return self.adaptive_injections(round_number, {})

    def adaptive_injections(
        self, round_number: int, occupancy: Dict[int, int]
    ) -> List[Injection]:
        """The round's injections, chosen after observing ``occupancy``."""
        if round_number >= self.num_rounds:
            return []
        if round_number <= self._last_round_processed:
            # Re-querying a past round (e.g. by analysis code) must not double
            # spend the budget; replay what was injected then.
            return [p for p in self._realized if p.round == round_number]
        self._last_round_processed = round_number
        self._bucket.start_round()
        injections: List[Injection] = []
        for source, destination in self.choose_routes(round_number, occupancy):
            if destination <= source:
                continue
            crossed = list(range(source, destination))
            if self._bucket.can_inject(crossed):
                self._bucket.inject(crossed)
                injection = make_injection(round_number, source, destination)
                injections.append(injection)
                self._realized.append(injection)
        return injections

    # -- subclass hook -----------------------------------------------------------

    @abstractmethod
    def choose_routes(
        self, round_number: int, occupancy: Dict[int, int]
    ) -> Sequence[tuple]:
        """Candidate ``(source, destination)`` routes, most important first.

        The base class admits as many as the budget allows, in order.  Return
        more candidates than the budget can take to let the bucket decide.
        """

    # -- audit helpers ------------------------------------------------------------

    def realized_pattern(self) -> InjectionPattern:
        """The injections actually admitted so far, as an oblivious pattern."""
        return InjectionPattern(list(self._realized), rho=self.rho, sigma=self.sigma)

    # -- checkpoint support -------------------------------------------------------

    def cursor(self) -> Dict[str, Any]:
        """A resume token: bucket levels, realized history and subclass state.

        The realized injections are part of the cursor (with their packet
        ids) because :meth:`adaptive_injections` replays them verbatim when a
        past round is re-queried, and audits compare them against the bound.
        """
        return {
            "last_round": self._last_round_processed,
            "bucket": self._bucket.state(),
            "realized": [
                [p.round, p.source, p.destination, p.packet_id]
                for p in self._realized
            ],
            "extra": self.extra_cursor(),
        }

    def resume(self, cursor: Mapping[str, Any]) -> None:
        """Restore a :meth:`cursor` token into a freshly built adversary."""
        if self._realized or self._last_round_processed != -1:
            raise CheckpointError(
                f"{type(self).__name__} already injected packets; resume() "
                f"requires a freshly constructed adversary"
            )
        self._last_round_processed = int(cursor["last_round"])
        self._bucket.set_state(cursor["bucket"])
        self._realized = [
            Injection(row[0], row[1], row[2], row[3]) for row in cursor["realized"]
        ]
        self.restore_extra_cursor(cursor.get("extra", {}))

    def extra_cursor(self) -> Dict[str, Any]:
        """Subclass hook: additional JSON-serialisable cursor state."""
        return {}

    def restore_extra_cursor(self, extra: Mapping[str, Any]) -> None:
        """Subclass hook: restore :meth:`extra_cursor` output."""


class HotspotAdversary(AdaptiveAdversary):
    """Aims every admissible packet at the currently fullest buffer.

    Each round it locates the most loaded buffer ``v`` (ties to the left) and
    proposes routes that cross ``v``, cycling through a destination set to the
    right of ``v`` so PPTS cannot collapse everything into one pseudo-buffer.
    """

    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        destinations: Optional[Sequence[int]] = None,
        *,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology, rho, sigma, num_rounds)
        n = topology.num_nodes
        if destinations is None:
            destinations = [n - 1]
        cleaned = sorted({w for w in destinations if 1 <= w <= n})
        if not cleaned:
            raise ConfigurationError("need at least one destination in [1, n]")
        self.destinations = cleaned
        self._rng = random.Random(seed)
        self._cycle = 0

    def choose_routes(
        self, round_number: int, occupancy: Dict[int, int]
    ) -> Sequence[tuple]:
        if occupancy:
            hotspot = max(sorted(occupancy), key=lambda node: occupancy[node])
        else:
            hotspot = 0
        routes = []
        budget_guess = int(self.sigma + self.rho) + 2
        for _ in range(budget_guess * max(1, len(self.destinations))):
            destination = self.destinations[self._cycle % len(self.destinations)]
            self._cycle += 1
            if destination <= hotspot:
                # No destination right of the hotspot: fall back to injecting
                # at the hotspot's left neighbourhood toward the last node.
                destination = self.topology.num_nodes - 1
                if destination <= hotspot:
                    continue
            source = self._rng.randint(max(0, hotspot - 2), hotspot)
            routes.append((source, destination))
        return routes

    def extra_cursor(self) -> Dict[str, Any]:
        return {
            "rng": encode_rng_state(self._rng.getstate()),
            "cycle": self._cycle,
        }

    def restore_extra_cursor(self, extra: Mapping[str, Any]) -> None:
        self._rng.setstate(decode_rng_state(extra["rng"]))
        self._cycle = int(extra["cycle"])


class BlockingAdversary(AdaptiveAdversary):
    """Targets the buffer with the largest *backlog behind it*.

    Instead of the single fullest buffer, this adversary computes, for every
    buffer ``v``, the total occupancy of buffers ``<= v`` that still must
    cross ``v`` toward the right end, and injects short routes just behind the
    maximiser — the pattern that keeps a convoy from dissolving.
    """

    def __init__(
        self,
        topology: LineTopology,
        rho: float,
        sigma: float,
        num_rounds: int,
        *,
        destination: Optional[int] = None,
    ) -> None:
        super().__init__(topology, rho, sigma, num_rounds)
        self.destination = (
            destination if destination is not None else topology.num_nodes - 1
        )
        if not (1 <= self.destination <= topology.num_nodes):
            raise ConfigurationError(
                f"destination {self.destination} outside [1, {topology.num_nodes}]"
            )

    def choose_routes(
        self, round_number: int, occupancy: Dict[int, int]
    ) -> Sequence[tuple]:
        prefix = 0
        best_node, best_backlog = 0, -1
        for node in range(self.destination):
            prefix += occupancy.get(node, 0)
            if prefix > best_backlog:
                best_backlog = prefix
                best_node = node
        routes = []
        budget_guess = int(self.sigma + self.rho) + 2
        for offset in range(budget_guess):
            source = max(0, best_node - offset)
            routes.append((source, self.destination))
        return routes


# ---------------------------------------------------------------------------
# Registry entry points (repro.api), uniform convention:
# (topology, *, rho, sigma, rounds, **params).  Adaptive adversaries are
# stateful, so a fresh instance is built per run.
# ---------------------------------------------------------------------------


@register_adversary("hotspot")
def build_hotspot_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destinations: Optional[Sequence[int]] = None,
    seed: Optional[int] = None,
) -> HotspotAdversary:
    return HotspotAdversary(topology, rho, sigma, rounds, destinations, seed=seed)


@register_adversary("blocking")
def build_blocking_adversary(
    topology: LineTopology,
    *,
    rho: float,
    sigma: float,
    rounds: int,
    destination: Optional[int] = None,
) -> BlockingAdversary:
    return BlockingAdversary(topology, rho, sigma, rounds, destination=destination)
