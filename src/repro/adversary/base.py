"""Adversaries and injection patterns.

An *adversary* (Section 2) is simply a set of packets, each a triple
``(round, source, destination)``.  The simulator asks the adversary which
packets arrive in each round; analyses ask for the whole pattern at once.
:class:`InjectionPattern` is the concrete finite representation used
throughout the library — backed by a columnar
:class:`~repro.core.packet.PacketStore` so million-packet schedules cost flat
integer arrays, not one boxed record per injection.  :class:`Adversary` is
the minimal interface so that programmatic adversaries can be plugged into
the simulator without materialising every round up front;
:class:`StreamingAdversary` is the lazy counterpart the generator library
uses for horizon-scale runs (each round's injections are produced on demand
and never retained).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from array import array
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.packet import Injection, PacketStore, make_injection
from ..network.errors import CheckpointError
from ..network.topology import Topology

__all__ = [
    "Adversary",
    "InjectionPattern",
    "StreamingAdversary",
    "ResumableRows",
    "encode_rng_state",
    "decode_rng_state",
]

#: A round's worth of routes, as ``(source, destination)`` pairs in injection
#: order.  Row generators yield one of these per round, which both the eager
#: (:class:`InjectionPattern`) and lazy (:class:`StreamingAdversary`) paths
#: consume — guaranteeing the two produce identical packets.
RouteRow = List[Tuple[int, int]]


def encode_rng_state(state: tuple) -> list:
    """``random.Random.getstate()`` as a JSON-serialisable list."""
    return [state[0], list(state[1]), state[2]]


def decode_rng_state(data: Sequence) -> tuple:
    """Inverse of :func:`encode_rng_state` (feed to ``Random.setstate``)."""
    return (data[0], tuple(data[1]), data[2])


class ResumableRows:
    """A row iterator with an explicit ``(round, cursor)`` resume API.

    The PR 3 row generators were forward-only plain Python generators: their
    state lived in suspended frames, so a mid-flight run could not be
    snapshotted.  Subclasses instead keep their state in attributes and
    implement

    * :meth:`row` — produce round ``t``'s :data:`RouteRow` (called with
      strictly increasing ``t``, exactly once each);
    * :meth:`state` / :meth:`set_state` — capture / restore the generator's
      internal state (RNG, token buckets, credit counters) as a
      JSON-serialisable mapping.

    Iteration (``next()``) yields one row per round until ``num_rounds``,
    exactly like the old generators, so the eager
    (:class:`InjectionPattern`) and lazy (:class:`StreamingAdversary`)
    front ends consume subclasses unchanged.  :meth:`cursor` additionally
    captures *where* the iterator is; :meth:`restore` repositions a freshly
    constructed iterator there without replaying the skipped rounds.
    """

    def __init__(self, num_rounds: int) -> None:
        self.num_rounds = num_rounds
        self._round = 0

    # -- iterator protocol (what the front ends consume) -------------------------

    def __iter__(self) -> "ResumableRows":
        return self

    def __next__(self) -> RouteRow:
        if self._round >= self.num_rounds:
            raise StopIteration
        row = self.row(self._round)
        self._round += 1
        return row

    # -- subclass hooks -----------------------------------------------------------

    def row(self, round_number: int) -> RouteRow:
        """The ``(source, destination)`` routes injected in ``round_number``."""
        raise NotImplementedError

    def state(self) -> Dict[str, Any]:
        """JSON-serialisable internal state (default: stateless)."""
        return {}

    def set_state(self, state: Mapping[str, Any]) -> None:
        """Restore :meth:`state` output (default: nothing to restore)."""

    # -- resume API ---------------------------------------------------------------

    @property
    def rounds_generated(self) -> int:
        """How many rows have been produced so far."""
        return self._round

    def cursor(self) -> Dict[str, Any]:
        """A resume token for the current round boundary."""
        return {"round": self._round, "state": self.state()}

    def restore(self, cursor: Mapping[str, Any]) -> None:
        """Reposition a *fresh* iterator at a :meth:`cursor` round boundary."""
        if self._round:
            raise CheckpointError(
                f"{type(self).__name__} already generated {self._round} rounds; "
                f"restore() requires a freshly constructed iterator"
            )
        self._round = int(cursor["round"])
        self.set_state(cursor["state"])


class Adversary(ABC):
    """Interface between an injection process and the simulator."""

    #: Declared average rate; ``None`` means "unknown / unchecked".
    rho: Optional[float] = None
    #: Declared burstiness; ``None`` means "unknown / unchecked".
    sigma: Optional[float] = None

    @abstractmethod
    def injections_for_round(self, round_number: int) -> List[Injection]:
        """Packets injected during the given round."""

    @property
    @abstractmethod
    def horizon(self) -> int:
        """Number of rounds over which this adversary injects packets.

        The simulator keeps running past the horizon until all packets drain
        (unless told otherwise), so the horizon is a property of the pattern,
        not of the execution length.
        """

    def all_injections(self) -> List[Injection]:
        """Every injection up to the horizon, in round order."""
        result: List[Injection] = []
        for t in range(self.horizon):
            result.extend(self.injections_for_round(t))
        return result

    @property
    def total_packets(self) -> int:
        """Total number of packets injected up to the horizon."""
        return len(self.all_injections())


class InjectionPattern(Adversary):
    """A finite, explicit adversary: a columnar store of injections.

    The records live in a :class:`~repro.core.packet.PacketStore` (flat int
    arrays, insertion order) plus two lightweight indices: per-round row ids
    (insertion order within the round — the order the simulator feeds packets
    to the algorithm) and a globally sorted row order matching
    :class:`Injection`'s lexicographic comparison.  ``Injection`` objects are
    materialised on demand and never retained.

    Parameters
    ----------
    injections:
        The packets, in any order.  Packet ids are preserved if present
        (non-negative) and assigned fresh otherwise.
    rho, sigma:
        The declared ``(rho, sigma)`` bound, if known.  Use
        :func:`repro.adversary.bounded.check_bounded` to verify the claim or
        :func:`repro.adversary.bounded.tightest_bound` to measure it.
    """

    def __init__(
        self,
        injections: Iterable[Injection],
        *,
        rho: Optional[float] = None,
        sigma: Optional[float] = None,
    ) -> None:
        store = PacketStore()
        by_round: Dict[int, array] = {}
        for injection in injections:
            packet_id = injection.packet_id
            if packet_id < 0:
                packet_id = make_injection(
                    injection.round, injection.source, injection.destination
                ).packet_id
            row = store.append(
                injection.round, injection.source, injection.destination, packet_id
            )
            rows = by_round.get(injection.round)
            if rows is None:
                rows = by_round[injection.round] = array("q")
            rows.append(row)
        self._store = store
        self._by_round = by_round
        self._sorted = array("q", sorted(range(len(store)), key=store.sort_key))
        self.rho = rho
        self.sigma = sigma

    # -- Adversary interface -----------------------------------------------------

    def injections_for_round(self, round_number: int) -> List[Injection]:
        rows = self._by_round.get(round_number)
        if rows is None:
            return []
        injection = self._store.injection
        return [injection(row) for row in rows]

    @property
    def horizon(self) -> int:
        if not self._by_round:
            return 0
        return max(self._by_round) + 1

    def all_injections(self) -> List[Injection]:
        injection = self._store.injection
        return [injection(row) for row in self._sorted]

    # -- container conveniences -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Injection]:
        injection = self._store.injection
        for row in self._sorted:
            yield injection(row)

    def __contains__(self, injection: Injection) -> bool:
        probe = (
            injection.round, injection.source, injection.destination,
            injection.packet_id,
        )
        store = self._store
        return any(store.row_tuple(row) == probe for row in range(len(store)))

    # -- derived views -----------------------------------------------------------

    def destinations(self) -> List[int]:
        """The distinct destinations, sorted ascending (the set ``W``)."""
        return sorted(set(self._store.destinations))

    def sources(self) -> List[int]:
        """The distinct injection sites, sorted ascending."""
        return sorted(set(self._store.sources))

    @property
    def num_destinations(self) -> int:
        """``d = |W|`` — the parameter in the Prop. 3.2 bound."""
        return len(self.destinations())

    def crossings_per_round(
        self, topology: Topology, num_rounds: Optional[int] = None
    ) -> List[Dict[int, int]]:
        """``N_{t}(v)`` for every round and buffer.

        Element ``t`` of the returned list maps each buffer ``v`` to the
        number of packets injected in round ``t`` whose path contains ``v``.
        This is the raw material for both excess tracking and the
        ``(rho, sigma)``-boundedness check.
        """
        horizon = num_rounds if num_rounds is not None else self.horizon
        result: List[Dict[int, int]] = [dict() for _ in range(horizon)]
        store = self._store
        rounds, sources, destinations = (
            store.rounds, store.sources, store.destinations,
        )
        for row in range(len(store)):
            t = rounds[row]
            if t >= horizon:
                continue
            counts = result[t]
            for v in topology.path(sources[row], destinations[row])[:-1]:
                counts[v] = counts.get(v, 0) + 1
        return result

    def restricted_to_rounds(self, first: int, last: int) -> "InjectionPattern":
        """The sub-pattern of injections with ``first <= round <= last``."""
        return InjectionPattern(
            [p for p in self.all_injections() if first <= p.round <= last],
            rho=self.rho,
            sigma=self.sigma,
        )

    def shifted(self, offset: int) -> "InjectionPattern":
        """The same pattern with every injection round shifted by ``offset``."""
        return InjectionPattern(
            [
                Injection(p.round + offset, p.source, p.destination, p.packet_id)
                for p in self.all_injections()
            ],
            rho=self.rho,
            sigma=self.sigma,
        )

    def merged_with(self, other: "InjectionPattern") -> "InjectionPattern":
        """The union of two patterns (rho/sigma of the result are unknown)."""
        return InjectionPattern(
            list(self.all_injections()) + list(other.all_injections())
        )

    @classmethod
    def from_tuples(
        cls,
        tuples: Sequence[tuple],
        *,
        rho: Optional[float] = None,
        sigma: Optional[float] = None,
    ) -> "InjectionPattern":
        """Build a pattern from ``(round, source, destination)`` tuples."""
        injections = [make_injection(t, src, dst) for (t, src, dst) in tuples]
        return cls(injections, rho=rho, sigma=sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InjectionPattern(packets={len(self._store)}, horizon={self.horizon}, "
            f"destinations={self.num_destinations}, rho={self.rho}, sigma={self.sigma})"
        )


class StreamingAdversary(Adversary):
    """A lazy injection stream: rounds are generated on demand, never retained.

    Wraps a *row factory* — a zero-argument callable returning an iterator
    that yields one :data:`RouteRow` (a list of ``(source, destination)``
    pairs) per round.  Packet ids are allocated exactly when a round is
    generated, in round order, so a streaming adversary run inside a
    :func:`~repro.core.packet.packet_id_scope` produces *bit-identical*
    packets to the eager :class:`InjectionPattern` built from the same row
    generator (the registered generator builders expose both via their
    ``stream`` flag).

    Rounds must be requested in non-decreasing order (the simulator's access
    pattern); asking for an earlier round raises, because replaying would
    re-allocate packet ids and silently diverge from the eager path.  For
    whole-pattern analyses, :meth:`materialize` converts an *unconsumed*
    stream into an :class:`InjectionPattern`.
    """

    def __init__(
        self,
        row_factory: Callable[[], Iterator[RouteRow]],
        horizon: int,
        *,
        rho: Optional[float] = None,
        sigma: Optional[float] = None,
    ) -> None:
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon}")
        self._factory = row_factory
        self._horizon = horizon
        self._rows: Optional[Iterator[RouteRow]] = None
        self._next_round = 0
        self.rho = rho
        self.sigma = sigma

    @property
    def horizon(self) -> int:
        return self._horizon

    @property
    def rounds_generated(self) -> int:
        """How many rounds have been produced so far."""
        return self._next_round

    def injections_for_round(self, round_number: int) -> List[Injection]:
        if round_number < self._next_round:
            raise RuntimeError(
                f"streaming adversary already generated round {self._next_round - 1}; "
                f"cannot replay round {round_number} (packet ids would diverge). "
                f"Use materialize() or the eager generator for random access."
            )
        if round_number >= self._horizon:
            return []
        if self._rows is None:
            self._rows = self._factory()
        result: List[Injection] = []
        while self._next_round <= round_number:
            row = next(self._rows, None) or ()
            # Ids for skipped-over rounds are still allocated, keeping the id
            # sequence identical to the eager path regardless of how many
            # rounds the caller actually executes.
            injections = [
                make_injection(self._next_round, source, destination)
                for source, destination in row
            ]
            if self._next_round == round_number:
                result = injections
            self._next_round += 1
        return result

    def all_injections(self) -> List[Injection]:
        raise RuntimeError(
            "a StreamingAdversary never materialises its schedule; call "
            "materialize() on a fresh stream (or build the eager pattern) for "
            "whole-pattern analyses"
        )

    # -- checkpoint support -------------------------------------------------------

    def cursor(self) -> Dict[str, Any]:
        """A resume token for the current round boundary.

        The token pairs the adversary's own position (``next_round``) with
        the underlying row iterator's :meth:`ResumableRows.cursor`.  It does
        *not* capture the packet-id counter — ids are allocated by the
        enclosing :func:`~repro.core.packet.packet_id_scope`, which the
        checkpoint layer snapshots separately; restoring both keeps resumed
        ids aligned with the eager pattern even across rounds that injected
        nothing (no row ever needs to be replayed, so no id can be re-spent).
        """
        if self._rows is None:
            # Not started (or never will be): nothing to capture beyond the
            # position, which must still be 0.
            return {"next_round": self._next_round, "rows": None}
        cursor_fn = getattr(self._rows, "cursor", None)
        if cursor_fn is None:
            raise CheckpointError(
                f"{self!r}: the row iterator ({type(self._rows).__name__}) has "
                f"no cursor() — build the adversary from ResumableRows to "
                f"checkpoint mid-stream"
            )
        return {
            "next_round": self._next_round,
            # The generator class is part of the cursor's identity: resuming
            # a saturating-line cursor into a random-line stream would accept
            # the (shape-compatible) RNG/bucket state and silently produce a
            # mixed execution.
            "rows_type": type(self._rows).__name__,
            "rows": cursor_fn(),
        }

    def resume(self, cursor: Mapping[str, Any]) -> None:
        """Fast-forward a *fresh* stream to a :meth:`cursor` round boundary.

        The factory is invoked once and the produced iterator is repositioned
        via :meth:`ResumableRows.restore` — rounds before the cursor are never
        regenerated, so their packet ids are never re-allocated (they belong
        to the packets already materialised by the checkpointed run).
        """
        if self._rows is not None or self._next_round:
            raise CheckpointError(
                f"{self!r} already generated rounds; resume() requires a "
                f"freshly constructed adversary"
            )
        next_round = int(cursor["next_round"])
        if not (0 <= next_round <= self._horizon):
            raise CheckpointError(
                f"cursor round {next_round} outside [0, {self._horizon}]"
            )
        rows_cursor = cursor.get("rows")
        if rows_cursor is None:
            if next_round:
                raise CheckpointError(
                    f"cursor at round {next_round} carries no row-iterator "
                    f"state; the stream cannot be repositioned"
                )
            return
        rows = self._factory()
        restore_fn = getattr(rows, "restore", None)
        if restore_fn is None:
            raise CheckpointError(
                f"{self!r}: the row factory produced a plain iterator "
                f"({type(rows).__name__}) with no restore(); cannot resume"
            )
        recorded_type = cursor.get("rows_type")
        if recorded_type is not None and recorded_type != type(rows).__name__:
            raise CheckpointError(
                f"cursor was taken from a {recorded_type} row generator but "
                f"this adversary produces {type(rows).__name__}; refusing to "
                f"mix executions"
            )
        restore_fn(rows_cursor)
        self._rows = rows
        self._next_round = next_round

    def materialize(self) -> InjectionPattern:
        """Drain a *fresh* stream into an eager :class:`InjectionPattern`."""
        if self._rows is not None or self._next_round:
            raise RuntimeError(
                "stream already consumed; materialize() is only valid before "
                "the first injections_for_round() call"
            )
        injections: List[Injection] = []
        for t, row in enumerate(self._factory()):
            if t >= self._horizon:
                break
            injections.extend(
                make_injection(t, source, destination) for source, destination in row
            )
        self._next_round = self._horizon  # the ids are spent; refuse reuse
        return InjectionPattern(injections, rho=self.rho, sigma=self.sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StreamingAdversary(horizon={self._horizon}, "
            f"generated={self._next_round}, rho={self.rho}, sigma={self.sigma})"
        )
