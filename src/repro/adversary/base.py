"""Adversaries and injection patterns.

An *adversary* (Section 2) is simply a set of packets, each a triple
``(round, source, destination)``.  The simulator asks the adversary which
packets arrive in each round; analyses ask for the whole pattern at once.
:class:`InjectionPattern` is the concrete finite representation used
throughout the library; :class:`Adversary` is the minimal interface so that
programmatic adversaries (random generators with an unbounded horizon) can be
plugged into the simulator without materialising every round up front.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..core.packet import Injection, make_injection
from ..network.topology import Topology

__all__ = ["Adversary", "InjectionPattern"]


class Adversary(ABC):
    """Interface between an injection process and the simulator."""

    #: Declared average rate; ``None`` means "unknown / unchecked".
    rho: Optional[float] = None
    #: Declared burstiness; ``None`` means "unknown / unchecked".
    sigma: Optional[float] = None

    @abstractmethod
    def injections_for_round(self, round_number: int) -> List[Injection]:
        """Packets injected during the given round."""

    @property
    @abstractmethod
    def horizon(self) -> int:
        """Number of rounds over which this adversary injects packets.

        The simulator keeps running past the horizon until all packets drain
        (unless told otherwise), so the horizon is a property of the pattern,
        not of the execution length.
        """

    def all_injections(self) -> List[Injection]:
        """Every injection up to the horizon, in round order."""
        result: List[Injection] = []
        for t in range(self.horizon):
            result.extend(self.injections_for_round(t))
        return result

    @property
    def total_packets(self) -> int:
        """Total number of packets injected up to the horizon."""
        return len(self.all_injections())


class InjectionPattern(Adversary):
    """A finite, explicit adversary: a list of injections grouped by round.

    Parameters
    ----------
    injections:
        The packets, in any order.  Packet ids are preserved if present
        (non-negative) and assigned fresh otherwise.
    rho, sigma:
        The declared ``(rho, sigma)`` bound, if known.  Use
        :func:`repro.adversary.bounded.check_bounded` to verify the claim or
        :func:`repro.adversary.bounded.tightest_bound` to measure it.
    """

    def __init__(
        self,
        injections: Iterable[Injection],
        *,
        rho: Optional[float] = None,
        sigma: Optional[float] = None,
    ) -> None:
        self._by_round: Dict[int, List[Injection]] = defaultdict(list)
        self._all: List[Injection] = []
        for injection in injections:
            if injection.packet_id < 0:
                injection = make_injection(
                    injection.round, injection.source, injection.destination
                )
            self._by_round[injection.round].append(injection)
            self._all.append(injection)
        self._all.sort(key=lambda p: (p.round, p.source, p.destination, p.packet_id))
        self.rho = rho
        self.sigma = sigma

    # -- Adversary interface -----------------------------------------------------

    def injections_for_round(self, round_number: int) -> List[Injection]:
        return list(self._by_round.get(round_number, []))

    @property
    def horizon(self) -> int:
        if not self._by_round:
            return 0
        return max(self._by_round) + 1

    def all_injections(self) -> List[Injection]:
        return list(self._all)

    # -- container conveniences -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Injection]:
        return iter(self._all)

    def __contains__(self, injection: Injection) -> bool:
        return injection in self._all

    # -- derived views -----------------------------------------------------------

    def destinations(self) -> List[int]:
        """The distinct destinations, sorted ascending (the set ``W``)."""
        return sorted({p.destination for p in self._all})

    def sources(self) -> List[int]:
        """The distinct injection sites, sorted ascending."""
        return sorted({p.source for p in self._all})

    @property
    def num_destinations(self) -> int:
        """``d = |W|`` — the parameter in the Prop. 3.2 bound."""
        return len(self.destinations())

    def crossings_per_round(
        self, topology: Topology, num_rounds: Optional[int] = None
    ) -> List[Dict[int, int]]:
        """``N_{t}(v)`` for every round and buffer.

        Element ``t`` of the returned list maps each buffer ``v`` to the
        number of packets injected in round ``t`` whose path contains ``v``.
        This is the raw material for both excess tracking and the
        ``(rho, sigma)``-boundedness check.
        """
        horizon = num_rounds if num_rounds is not None else self.horizon
        result: List[Dict[int, int]] = [dict() for _ in range(horizon)]
        for injection in self._all:
            if injection.round >= horizon:
                continue
            counts = result[injection.round]
            for v in topology.path(injection.source, injection.destination)[:-1]:
                counts[v] = counts.get(v, 0) + 1
        return result

    def restricted_to_rounds(self, first: int, last: int) -> "InjectionPattern":
        """The sub-pattern of injections with ``first <= round <= last``."""
        return InjectionPattern(
            [p for p in self._all if first <= p.round <= last],
            rho=self.rho,
            sigma=self.sigma,
        )

    def shifted(self, offset: int) -> "InjectionPattern":
        """The same pattern with every injection round shifted by ``offset``."""
        return InjectionPattern(
            [
                Injection(p.round + offset, p.source, p.destination, p.packet_id)
                for p in self._all
            ],
            rho=self.rho,
            sigma=self.sigma,
        )

    def merged_with(self, other: "InjectionPattern") -> "InjectionPattern":
        """The union of two patterns (rho/sigma of the result are unknown)."""
        return InjectionPattern(list(self._all) + list(other.all_injections()))

    @classmethod
    def from_tuples(
        cls,
        tuples: Sequence[tuple],
        *,
        rho: Optional[float] = None,
        sigma: Optional[float] = None,
    ) -> "InjectionPattern":
        """Build a pattern from ``(round, source, destination)`` tuples."""
        injections = [make_injection(t, src, dst) for (t, src, dst) in tuples]
        return cls(injections, rho=rho, sigma=sigma)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InjectionPattern(packets={len(self._all)}, horizon={self.horizon}, "
            f"destinations={self.num_destinations}, rho={self.rho}, sigma={self.sigma})"
        )
