"""Greedy forwarding algorithms (the baselines the paper improves on).

A :class:`GreedyForwarding` instance is work-conserving: every node holding at
least one packet forwards exactly one packet per round, chosen by a
:class:`~repro.baselines.policies.GreedyPolicy`.  This is the protocol family
studied by classical AQT; its buffer usage on multi-destination lines can grow
with the number of destinations *and* with the adversary's positioning, which
is what the E8 benchmark quantifies against PTS/PPTS/HPTS.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from ..api.registry import register_algorithm
from ..core.packet import Packet
from ..core.pseudobuffer import QueueDiscipline
from ..core.scheduler import Activation, ForwardingAlgorithm
from ..network.topology import Topology
from .policies import GreedyPolicy, fifo, policy_by_name

__all__ = ["GreedyForwarding", "build_greedy"]

#: Single pseudo-buffer key used by greedy algorithms (no virtual output queuing).
_SINGLE_QUEUE = "queue"


class GreedyForwarding(ForwardingAlgorithm):
    """Work-conserving forwarding with a pluggable priority policy.

    Parameters
    ----------
    topology:
        Line or tree.
    policy:
        The greedy priority rule (defaults to FIFO).
    """

    #: Greedy decisions are per-node (each nonempty buffer forwards by its
    #: own priority rule), so the base class's filter-own-selection segment
    #: path is already exact.
    supports_sharding = True

    def __init__(
        self,
        topology: Topology,
        policy: GreedyPolicy = fifo,
        *,
        discipline: QueueDiscipline = QueueDiscipline.FIFO,
    ) -> None:
        super().__init__(topology, discipline=discipline)
        self.policy = policy
        self.name = f"Greedy-{policy.name}"
        #: Round in which each packet arrived at its current node.
        self._arrival_round: Dict[int, int] = {}

    # -- packet placement --------------------------------------------------------

    def classify(self, packet: Packet, node: int) -> Hashable:
        return _SINGLE_QUEUE

    def on_inject(self, round_number: int, packets: List[Packet]) -> None:
        super().on_inject(round_number, packets)
        for packet in packets:
            self._arrival_round[packet.packet_id] = round_number

    def on_arrival(self, packet: Packet, node: int, round_number: int) -> None:
        super().on_arrival(packet, node, round_number)
        self._arrival_round[packet.packet_id] = round_number

    # -- checkpoint support --------------------------------------------------------

    def checkpoint_state(self) -> Dict:
        # Arrival rounds drive the FIFO/LIFO-by-arrival policies, but only
        # for packets still stored somewhere: entries for delivered packets
        # can never be queried again, so the snapshot stays O(packets in
        # flight) no matter how long the run has been going.
        live = {
            packet.packet_id
            for node_buffer in self.buffers.values()
            for packet in node_buffer.all_packets()
        }
        return {
            "arrival": [
                [packet_id, round_number]
                for packet_id, round_number in self._arrival_round.items()
                if packet_id in live
            ]
        }

    def restore_checkpoint_state(self, state: Dict, packets) -> None:
        self._arrival_round = {
            int(packet_id): int(round_number)
            for packet_id, round_number in state["arrival"]
            if int(packet_id) in packets
        }

    # -- forwarding decisions ------------------------------------------------------

    #: Debug/equivalence switch: ``False`` restores the seed engine's
    #: all-nodes scan (the index stays maintained either way).
    use_incremental_selection = True

    def select_activations(self, round_number: int) -> List[Activation]:
        if self.use_incremental_selection:
            # Only nodes currently holding a packet are visited (the nonempty
            # index iterates ascending, matching the buffers-dict order).
            nonempty_nodes = list(self._index.nonempty(_SINGLE_QUEUE))
        else:
            nonempty_nodes = [
                node
                for node, node_buffer in self.buffers.items()
                if node_buffer.existing(_SINGLE_QUEUE)
            ]
        activations: List[Activation] = []
        for node in nonempty_nodes:
            pseudo = self.buffers[node].existing(_SINGLE_QUEUE)
            chosen: Optional[Packet] = min(
                pseudo.packets(),
                key=lambda packet: self.policy(
                    packet, self._arrival_round.get(packet.packet_id, 0)
                ),
            )
            activations.append(
                Activation(node=node, key=_SINGLE_QUEUE, packet=chosen)
            )
        return activations

    # -- segment (sharded) selection -----------------------------------------------

    def boundary_view(self, round_number: int, lo: int, hi: int) -> Dict:
        """Greedy needs no remote state: each node's choice reads only its
        own buffer and the arrival rounds of the packets it holds, so the
        empty view is exact (RPR004 proof obligation, made explicit)."""
        return super().boundary_view(round_number, lo, hi)

    def select_segment_activations(self, round_number, segment_index, segments,
                                   views, carry):
        """Exact by per-node locality: restricting the global
        :meth:`select_activations` sweep to this segment's nodes selects the
        same packets the single-process engine would, because no activation
        depends on a node outside the segment."""
        return super().select_segment_activations(
            round_number, segment_index, segments, views, carry
        )


@register_algorithm("greedy")
def build_greedy(
    topology: Topology, policy: object = "FIFO", **params: object
) -> GreedyForwarding:
    """Registry entry point: ``policy`` may be a name ("FIFO", "NTG", ...) or
    a :class:`GreedyPolicy` instance."""
    resolved = policy_by_name(policy) if isinstance(policy, str) else policy
    return GreedyForwarding(topology, resolved, **params)  # type: ignore[arg-type]
