"""Greedy scheduling policies from classical Adversarial Queuing Theory.

Classical AQT (Borodin et al.; Bhattacharjee, Goel & Lotker) studies *greedy*
protocols: whenever a buffer holds a packet for a link, some packet crosses
that link this round.  The only freedom is the priority rule used to pick
which packet.  The paper's algorithms are deliberately *not* greedy (they may
idle a link even when packets wait); these policies are the baselines the E5
and E8 benchmarks compare against.

Each policy is a keying function: given a packet and the current round, return
a sort key; the packet with the smallest key is forwarded.  Ties are broken by
packet id, which makes executions deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.packet import Packet

__all__ = [
    "GreedyPolicy",
    "longest_in_system",
    "shortest_in_system",
    "nearest_to_go",
    "furthest_to_go",
    "fifo",
    "lifo",
    "ALL_POLICIES",
    "policy_by_name",
]


@dataclass(frozen=True)
class GreedyPolicy:
    """A named greedy priority rule.

    Attributes
    ----------
    name:
        Short identifier used in tables (e.g. ``"LIS"``).
    description:
        One-line explanation.
    key:
        Function ``(packet, arrival_round) -> sortable`` — the packet with the
        minimum key is forwarded first.  ``arrival_round`` is the round in
        which the packet arrived at its *current* node (needed by FIFO/LIFO).
    """

    name: str
    description: str
    key: Callable[[Packet, int], Tuple]

    def __call__(self, packet: Packet, arrival_round: int) -> Tuple:
        return self.key(packet, arrival_round)


longest_in_system = GreedyPolicy(
    name="LIS",
    description="Longest-In-System: oldest injection round first",
    key=lambda packet, arrival: (packet.injected_round, packet.packet_id),
)

shortest_in_system = GreedyPolicy(
    name="SIS",
    description="Shortest-In-System: newest injection round first",
    key=lambda packet, arrival: (-packet.injected_round, packet.packet_id),
)

nearest_to_go = GreedyPolicy(
    name="NTG",
    description="Nearest-To-Go: smallest remaining distance first",
    key=lambda packet, arrival: (packet.remaining_distance, packet.packet_id),
)

furthest_to_go = GreedyPolicy(
    name="FTG",
    description="Furthest-To-Go: largest remaining distance first",
    key=lambda packet, arrival: (-packet.remaining_distance, packet.packet_id),
)

fifo = GreedyPolicy(
    name="FIFO",
    description="First-In-First-Out at each buffer: earliest arrival first",
    key=lambda packet, arrival: (arrival, packet.packet_id),
)

lifo = GreedyPolicy(
    name="LIFO",
    description="Last-In-First-Out at each buffer: latest arrival first",
    key=lambda packet, arrival: (-arrival, packet.packet_id),
)

#: Every built-in policy, in the order used by comparison tables.
ALL_POLICIES: Tuple[GreedyPolicy, ...] = (
    fifo,
    lifo,
    longest_in_system,
    shortest_in_system,
    nearest_to_go,
    furthest_to_go,
)

_POLICY_INDEX: Dict[str, GreedyPolicy] = {p.name: p for p in ALL_POLICIES}


def policy_by_name(name: str) -> GreedyPolicy:
    """Look up a built-in policy by its short name (case-insensitive)."""
    policy: Optional[GreedyPolicy] = _POLICY_INDEX.get(name.upper())
    if policy is None:
        raise KeyError(
            f"unknown greedy policy {name!r}; available: {sorted(_POLICY_INDEX)}"
        )
    return policy
