"""Baseline (greedy) forwarding algorithms used for comparison experiments."""

from .greedy import GreedyForwarding
from .policies import (
    ALL_POLICIES,
    GreedyPolicy,
    fifo,
    furthest_to_go,
    lifo,
    longest_in_system,
    nearest_to_go,
    policy_by_name,
    shortest_in_system,
)

__all__ = [
    "GreedyForwarding",
    "ALL_POLICIES",
    "GreedyPolicy",
    "fifo",
    "furthest_to_go",
    "lifo",
    "longest_in_system",
    "nearest_to_go",
    "policy_by_name",
    "shortest_in_system",
]
