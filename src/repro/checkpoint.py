"""Versioned checkpoint/restore for mid-flight simulations.

A checkpoint is a single file capturing *everything* the engine needs to
continue a run bit-identically from a round boundary:

* the engine counters (round number, injected/delivered totals, the latency
  folds) and the running :class:`~repro.network.events.OccupancyTimeline`
  maxima,
* every retained :class:`~repro.core.packet.Packet` (in-flight only under
  ``history="streaming"``; all packets otherwise), stored columnar,
* the per-node pseudo-buffer layout — every key in creation order with its
  packet ids in queue order — from which occupancy maps and the incremental
  :class:`~repro.core.indexset.BufferIndex` structures are rebuilt by
  replaying the stores,
* algorithm-specific extra state (HPTS staged packets, PPTS discovered
  destinations, greedy arrival rounds) via
  :meth:`~repro.core.scheduler.ForwardingAlgorithm.checkpoint_state`,
* the adversary's resume cursor (RNG, token-bucket and credit state for
  streaming generators; bucket + realized history for adaptive adversaries),
* the packet-id allocator position, so ids allocated after the resume stay
  aligned with the uninterrupted run (and with the eager
  :class:`~repro.adversary.base.InjectionPattern` built from the same rows),
* under ``history="streaming"``, the columnar injection log
  (:class:`~repro.core.packet.PacketStore`); under ``history="full"``, the
  per-round records,
* optionally, the originating :class:`~repro.api.specs.ScenarioSpec`, so
  :meth:`repro.api.session.Session.resume` can rebuild the run's ingredients
  without being told anything else.

File layout (all integers little-endian; see ``docs/CHECKPOINT.md``)::

    MAGIC ("REPROCKPT", 9 bytes)
    u32   format version
    u64   header length in bytes
    .. .  header: canonical JSON (sorted keys, utf-8)
    ...   payload: the raw bytes of each section named in header["sections"],
          concatenated in order; every section is a flat int64 column
    u32   CRC-32 of everything above

Readers raise :class:`~repro.network.errors.CheckpointFormatError` on
truncation/corruption, :class:`~repro.network.errors.CheckpointVersionError`
on an unknown version, and
:class:`~repro.network.errors.CheckpointSpecMismatchError` when a checkpoint
is resumed under a scenario that hashes differently from the one that
produced it (``checkpoint_every`` / ``checkpoint_path`` are normalised out of
the hash: *where* snapshots are written does not change the execution).
"""

from __future__ import annotations

import json
import os
import struct
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Mapping, Optional, Tuple

from .core.packet import Injection, Packet, PacketState, PacketStore, current_allocator
from .network.errors import (
    CheckpointError,
    CheckpointFormatError,
    CheckpointSpecMismatchError,
    CheckpointVersionError,
)
from .network.events import HistoryPolicy, RoundRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, typing only
    from .adversary.base import Adversary
    from .api.specs import ScenarioSpec
    from .core.scheduler import ForwardingAlgorithm
    from .network.simulator import Simulator
    from .network.topology import Topology

__all__ = [
    "FORMAT_VERSION",
    "Checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "restore_into",
    "restore_simulator",
    "resume_spec_hash",
    "verify_spec",
    "stitch_checkpoints",
    "save_stitched",
]

MAGIC = b"REPROCKPT"
FORMAT_VERSION = 1

#: Fixed-size framing around the header: magic + u32 version + u64 length.
_PREFIX = struct.Struct(f"<{len(MAGIC)}sIQ")
_TRAILER = struct.Struct("<I")

_STATE_CODES = {
    PacketState.STAGED: 0,
    PacketState.IN_TRANSIT: 1,
    PacketState.DELIVERED: 2,
}
_CODE_STATES = {code: state for state, code in _STATE_CODES.items()}

#: Column order of the packet table (each a flat int64 section).
_PACKET_COLUMNS = (
    "ids", "sources", "destinations", "injected_rounds", "locations",
    "states", "accepted_rounds", "delivered_rounds", "hops",
)
#: Column order of the streaming injection log (mirrors PacketStore).
_STORE_COLUMNS = ("rounds", "sources", "destinations", "ids")
#: Column order of the full-history round records.
_HISTORY_COLUMNS = (
    "rounds", "injected", "forwarded", "delivered", "max_occupancy",
    "max_occupancy_after", "staged",
)


# ---------------------------------------------------------------------------
# Pseudo-buffer key codec.  Keys are ints (destinations), strings (greedy's
# single queue) or tuples of ints (HPTS ``(level, destination)``); JSON lists
# unambiguously stand in for tuples because lists are unhashable and can
# therefore never be keys themselves.
# ---------------------------------------------------------------------------


def _encode_key(key: Hashable) -> Any:
    if isinstance(key, tuple):
        return [_encode_key(item) for item in key]
    if isinstance(key, (int, str)):
        return key
    raise CheckpointError(
        f"cannot serialise pseudo-buffer key {key!r} of type {type(key).__name__}"
    )


def _decode_key(data: Any) -> Hashable:
    if isinstance(data, list):
        return tuple(_decode_key(item) for item in data)
    return data


# ---------------------------------------------------------------------------
# Snapshot (simulator -> header + sections)
# ---------------------------------------------------------------------------


def resume_spec_hash(spec: "ScenarioSpec") -> str:
    """The spec hash used for resume verification.

    ``checkpoint_every`` / ``checkpoint_path`` are cleared first: they control
    where snapshots land, not what the simulation computes, so a run resumed
    with different checkpointing settings is still the same run.  ``shards``
    is cleared for the same reason — the sharded engine is proven
    bit-identical to the single-process one, so a checkpoint taken sharded
    may be resumed unsharded (and vice versa).  The recovery knobs
    (``recovery`` / ``max_worker_restarts`` / ``heartbeat_timeout``) are
    normalized to their defaults too: worker supervision only decides how a
    run survives process failures, never what it computes, so a checkpoint
    taken under one recovery policy resumes under any other.  ``engine`` /
    ``batch_rounds`` are likewise cleared — the batch kernel is proven
    bit-identical to the object engine, so a checkpoint taken by either
    engine (at any batch cadence) resumes under the other.
    """
    payload = spec.to_dict()
    policy = dict(payload.get("policy") or {})
    policy["checkpoint_every"] = None
    policy["checkpoint_path"] = None
    policy["shards"] = None
    policy["recovery"] = "fail"
    policy["max_worker_restarts"] = 3
    policy["heartbeat_timeout"] = None
    policy["engine"] = None
    policy["batch_rounds"] = 64
    payload["policy"] = policy
    return type(spec).from_dict(payload).spec_hash()


def _snapshot(
    simulator: "Simulator", spec: Optional["ScenarioSpec"]
) -> Tuple[Dict[str, Any], List[Tuple[str, array]]]:
    algorithm = simulator.algorithm
    sections: List[Tuple[str, array]] = []

    # -- packet table ------------------------------------------------------------
    columns = {name: array("q") for name in _PACKET_COLUMNS}
    for packet in simulator.packets.values():
        columns["ids"].append(packet.packet_id)
        columns["sources"].append(packet.source)
        columns["destinations"].append(packet.destination)
        columns["injected_rounds"].append(packet.injected_round)
        columns["locations"].append(packet.location)
        columns["states"].append(_STATE_CODES[packet.state])
        columns["accepted_rounds"].append(
            -1 if packet.accepted_round is None else packet.accepted_round
        )
        columns["delivered_rounds"].append(
            -1 if packet.delivered_round is None else packet.delivered_round
        )
        columns["hops"].append(packet.hops)
    sections.extend((f"packets/{name}", columns[name]) for name in _PACKET_COLUMNS)

    # -- buffer layout -----------------------------------------------------------
    buffer_directory: List[List[Any]] = []
    buffer_ids = array("q")
    for node, node_buffer in algorithm.buffers.items():
        keys = node_buffer.keys()
        if not keys:
            continue
        entry: List[Any] = []
        for key in keys:
            pseudo = node_buffer.existing(key)
            packets = pseudo.packets()  # oldest first == queue order
            entry.append([_encode_key(key), len(packets)])
            buffer_ids.extend(packet.packet_id for packet in packets)
        buffer_directory.append([node, entry])
    sections.append(("buffers/packet_ids", buffer_ids))

    # -- timeline maxima ---------------------------------------------------------
    timeline = simulator._timeline
    timeline_nodes = array("q")
    timeline_loads = array("q")
    for node, load in timeline.per_node_maxima().items():
        timeline_nodes.append(node)
        timeline_loads.append(load)
    sections.append(("timeline/nodes", timeline_nodes))
    sections.append(("timeline/loads", timeline_loads))

    # -- streaming injection log -------------------------------------------------
    store = simulator.packet_store
    if store is not None:
        sections.extend(
            (f"store/{name}", getattr(store, "packet_ids" if name == "ids" else name))
            for name in _STORE_COLUMNS
        )

    # -- full-history round records ----------------------------------------------
    history_occupancy: Optional[List[Optional[List[List[int]]]]] = None
    if simulator.record_history:
        history_columns = {name: array("q") for name in _HISTORY_COLUMNS}
        if simulator.record_occupancy_vectors:
            history_occupancy = []
        for record in simulator._history:
            history_columns["rounds"].append(record.round)
            history_columns["injected"].append(record.injected)
            history_columns["forwarded"].append(record.forwarded)
            history_columns["delivered"].append(record.delivered)
            history_columns["max_occupancy"].append(record.max_occupancy)
            history_columns["max_occupancy_after"].append(
                record.max_occupancy_after_forwarding
            )
            history_columns["staged"].append(record.staged)
            if history_occupancy is not None:
                history_occupancy.append(
                    None
                    if record.occupancy is None
                    else [[node, load] for node, load in record.occupancy.items()]
                )
        sections.extend(
            (f"history/{name}", history_columns[name]) for name in _HISTORY_COLUMNS
        )

    # -- adversary cursor ----------------------------------------------------------
    cursor_fn = getattr(simulator.adversary, "cursor", None)
    adversary_cursor = None if cursor_fn is None else cursor_fn()
    realized_in_sections = False
    if isinstance(adversary_cursor, dict) and isinstance(
        adversary_cursor.get("realized"), list
    ):
        # Adaptive adversaries carry their whole realized injection history;
        # keep it out of the JSON header (O(total injections) text per save)
        # and in int64 columns like every other per-packet table.
        adversary_cursor = dict(adversary_cursor)
        realized_rows = adversary_cursor.pop("realized")
        realized_columns = [array("q") for _ in range(4)]
        for row in realized_rows:
            for column, value in zip(realized_columns, row):
                column.append(value)
        sections.extend(
            (f"adversary/realized_{name}", column)
            for name, column in zip(_STORE_COLUMNS, realized_columns)
        )
        realized_in_sections = True

    header: Dict[str, Any] = {
        "format": "repro-checkpoint",
        "spec": None if spec is None else spec.to_dict(),
        "spec_hash": None if spec is None else resume_spec_hash(spec),
        "engine": {
            "round": simulator._round,
            "injected": simulator._injected,
            "delivered": simulator._delivered,
            "latency_sum": simulator._latency_sum,
            "latency_max": simulator._latency_max,
            "num_nodes": simulator.topology.num_nodes,
            "history_policy": simulator.history_policy.value,
            "record_history": simulator.record_history,
            "record_occupancy_vectors": simulator.record_occupancy_vectors,
            "validate_capacity": simulator.validate_capacity,
        },
        "timeline": {
            "max_occupancy": timeline.max_occupancy,
            "max_staged": timeline.max_staged,
        },
        "next_packet_id": current_allocator().next_value,
        "algorithm": {
            "name": algorithm.name,
            "state": algorithm.checkpoint_state(),
            "rounds_until_gc": algorithm._rounds_until_gc,
        },
        "buffers": buffer_directory,
        "adversary": {
            # Wrappers (the sharded engine's segment filter) masquerade as
            # their wrapped adversary via ``checkpoint_kind``, so a segment
            # snapshot stitches into a file a plain single-process resume
            # accepts.
            "kind": getattr(
                simulator.adversary, "checkpoint_kind",
                type(simulator.adversary).__name__,
            ),
            "cursor": adversary_cursor,
            "realized_in_sections": realized_in_sections,
        },
        "history_occupancy": history_occupancy,
    }
    return header, sections


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------


def _to_bytes(column: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - exotic platforms
        column = array("q", column)
        column.byteswap()
    return column.tobytes()


def _from_bytes(data: bytes) -> array:
    column = array("q")
    column.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - exotic platforms
        column.byteswap()
    return column


def _encode(header: Dict[str, Any], sections: List[Tuple[str, array]]) -> bytes:
    directory = [{"name": name, "count": len(column)} for name, column in sections]
    full_header = dict(header, version=FORMAT_VERSION, sections=directory)
    header_bytes = json.dumps(
        full_header, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    parts = [
        _PREFIX.pack(MAGIC, FORMAT_VERSION, len(header_bytes)),
        header_bytes,
    ]
    parts.extend(_to_bytes(column) for _, column in sections)
    body = b"".join(parts)
    return body + _TRAILER.pack(zlib.crc32(body))


@dataclass
class Checkpoint:
    """A parsed checkpoint: the JSON header plus the named int64 columns."""

    header: Dict[str, Any]
    sections: Dict[str, array]

    @property
    def spec(self) -> Optional[Dict[str, Any]]:
        """The embedded scenario spec payload, if one was recorded."""
        return self.header.get("spec")

    @property
    def spec_hash(self) -> Optional[str]:
        return self.header.get("spec_hash")

    @property
    def round(self) -> int:
        """The round boundary this checkpoint was taken at."""
        return self.header["engine"]["round"]

    @property
    def history_policy(self) -> HistoryPolicy:
        return HistoryPolicy(self.header["engine"]["history_policy"])

    def section(self, name: str) -> array:
        try:
            return self.sections[name]
        except KeyError:
            raise CheckpointFormatError(
                f"checkpoint is missing required section {name!r}"
            ) from None


def _decode(data: bytes, source: str) -> Checkpoint:
    minimum = _PREFIX.size + _TRAILER.size
    if len(data) < minimum:
        raise CheckpointFormatError(
            f"{source}: {len(data)} bytes is too short to be a checkpoint "
            f"(need at least {minimum})"
        )
    magic, version, header_len = _PREFIX.unpack_from(data, 0)
    if magic != MAGIC:
        raise CheckpointFormatError(f"{source}: bad magic bytes {magic!r}")
    if version != FORMAT_VERSION:
        raise CheckpointVersionError(version, FORMAT_VERSION)
    body, trailer = data[: -_TRAILER.size], data[-_TRAILER.size:]
    (expected_crc,) = _TRAILER.unpack(trailer)
    if zlib.crc32(body) != expected_crc:
        raise CheckpointFormatError(
            f"{source}: CRC mismatch (file corrupt or truncated)"
        )
    header_start = _PREFIX.size
    header_end = header_start + header_len
    if header_end > len(body):
        raise CheckpointFormatError(
            f"{source}: header length {header_len} overruns the file"
        )
    try:
        header = json.loads(body[header_start:header_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointFormatError(f"{source}: invalid header JSON: {error}") from None
    if not isinstance(header, dict) or header.get("format") != "repro-checkpoint":
        raise CheckpointFormatError(f"{source}: header is not a checkpoint header")
    for field, expected in (
        ("engine", dict), ("algorithm", dict), ("adversary", dict),
        ("timeline", dict), ("buffers", list), ("next_packet_id", int),
    ):
        if not isinstance(header.get(field), expected):
            raise CheckpointFormatError(
                f"{source}: header field {field!r} is missing or not a "
                f"{expected.__name__}"
            )
    engine = header["engine"]
    for field in (
        "round", "injected", "delivered", "latency_sum", "latency_max",
        "num_nodes", "history_policy", "record_history",
        "record_occupancy_vectors", "validate_capacity",
    ):
        if field not in engine:
            raise CheckpointFormatError(
                f"{source}: header engine block is missing {field!r}"
            )
    directory = header.get("sections")
    if not isinstance(directory, list):
        raise CheckpointFormatError(f"{source}: header has no section directory")
    sections: Dict[str, array] = {}
    offset = header_end
    for entry in directory:
        if not isinstance(entry, dict):
            raise CheckpointFormatError(
                f"{source}: malformed section-directory entry {entry!r}"
            )
        name, count = entry.get("name"), entry.get("count")
        if not isinstance(name, str) or not isinstance(count, int) or count < 0:
            raise CheckpointFormatError(
                f"{source}: malformed section-directory entry {entry!r}"
            )
        end = offset + 8 * count
        if end > len(body):
            raise CheckpointFormatError(
                f"{source}: section {name!r} overruns the file (truncated?)"
            )
        sections[name] = _from_bytes(body[offset:end])
        offset = end
    if offset != len(body):
        raise CheckpointFormatError(
            f"{source}: {len(body) - offset} trailing bytes after the last section"
        )
    return Checkpoint(header=header, sections=sections)


def save_checkpoint(
    simulator: "Simulator", path: str, *, spec: Optional["ScenarioSpec"] = None
) -> int:
    """Write a checkpoint of ``simulator`` to ``path``; returns bytes written.

    The write is atomic and durable: the blob is written to a temp file,
    fsync'd, renamed over ``path``, and the directory entry is fsync'd too —
    so both a process crash mid-save and a system crash shortly after a save
    leave a complete snapshot behind (the previous one, or the new one).
    """
    header, sections = _snapshot(simulator, spec)
    blob = _encode(header, sections)
    _atomic_write(path, blob)
    return len(blob)


def _atomic_write(path: str, blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically and durably (fsync + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    descriptor, temp_path = tempfile.mkstemp(
        prefix=".ckpt-", dir=directory or None
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        # Persist the rename itself; without this a power loss can resurrect
        # the old directory entry pointing at the unlinked previous file.
        # Best-effort: directories cannot be opened on some platforms.
        try:
            directory_fd = os.open(directory or ".", os.O_RDONLY)
        except OSError:
            pass
        else:
            try:
                os.fsync(directory_fd)
            finally:
                os.close(directory_fd)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_checkpoint(path: str) -> Checkpoint:
    """Read and validate a checkpoint file (raises the typed errors above)."""
    with open(path, "rb") as handle:
        data = handle.read()
    return _decode(data, source=str(path))


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------


def verify_spec(checkpoint: Checkpoint, spec: "ScenarioSpec") -> None:
    """Raise :class:`CheckpointSpecMismatchError` unless ``spec`` matches the
    scenario that produced ``checkpoint`` (checkpoint-policy fields ignored)."""
    recorded = checkpoint.spec_hash
    if recorded is None:
        return  # engine-level checkpoint with no embedded spec: nothing to check
    offered = resume_spec_hash(spec)
    if offered != recorded:
        raise CheckpointSpecMismatchError(
            f"checkpoint was produced by spec hash {recorded} but resume was "
            f"asked for spec hash {offered} ({spec.label!r}); refusing to mix "
            f"executions"
        )


def _rebuild_packets(checkpoint: Checkpoint) -> Dict[int, Packet]:
    columns = {
        name: checkpoint.section(f"packets/{name}") for name in _PACKET_COLUMNS
    }
    packets: Dict[int, Packet] = {}
    for row in range(len(columns["ids"])):
        injection = Injection(
            columns["injected_rounds"][row],
            columns["sources"][row],
            columns["destinations"][row],
            columns["ids"][row],
        )
        accepted = columns["accepted_rounds"][row]
        delivered = columns["delivered_rounds"][row]
        packet = Packet(
            injection,
            location=columns["locations"][row],
            state=_CODE_STATES[columns["states"][row]],
            accepted_round=None if accepted < 0 else accepted,
            delivered_round=None if delivered < 0 else delivered,
            hops=columns["hops"][row],
        )
        packets[packet.packet_id] = packet
    return packets


def restore_into(simulator: "Simulator", checkpoint: Checkpoint) -> "Simulator":
    """Load ``checkpoint`` into a freshly built (never-run) simulator.

    The simulator's topology/algorithm/adversary must match the snapshot
    structurally; buffers, indices and occupancy maps are rebuilt by
    replaying the recorded stores, the adversary is fast-forwarded via its
    cursor, and the packet-id allocator of the current scope is positioned so
    post-resume ids continue exactly where the checkpointed run stopped.
    """
    engine = checkpoint.header["engine"]
    algorithm = simulator.algorithm
    adversary = simulator.adversary

    if simulator._round or simulator._injected or simulator.packets:
        raise CheckpointError("restore_into() requires a freshly built simulator")
    if algorithm.pending_packets():
        raise CheckpointError("restore_into() requires a never-run algorithm")
    if simulator.topology.num_nodes != engine["num_nodes"]:
        raise CheckpointSpecMismatchError(
            f"checkpoint was taken on {engine['num_nodes']} nodes, the given "
            f"topology has {simulator.topology.num_nodes}"
        )
    recorded_algorithm = checkpoint.header["algorithm"]["name"]
    if algorithm.name != recorded_algorithm:
        raise CheckpointSpecMismatchError(
            f"checkpoint was taken under algorithm {recorded_algorithm!r}, "
            f"got {algorithm.name!r}"
        )
    if simulator.history_policy.value != engine["history_policy"]:
        raise CheckpointSpecMismatchError(
            f"checkpoint used history={engine['history_policy']!r}, the "
            f"simulator was built with history={simulator.history_policy.value!r}"
        )

    # -- packets -----------------------------------------------------------------
    packets = _rebuild_packets(checkpoint)
    simulator.packets = packets

    # -- buffers (replaying stores rebuilds occupancy, BufferIndex and any
    #    on_buffer_change structures such as HPTS's level-destination sets) ----
    buffer_ids = checkpoint.section("buffers/packet_ids")
    position = 0
    for node, entry in checkpoint.header["buffers"]:
        node_buffer = algorithm.buffers.get(node)
        if node_buffer is None:
            raise CheckpointSpecMismatchError(
                f"checkpoint references node {node} absent from the topology"
            )
        for key_data, count in entry:
            key = _decode_key(key_data)
            # Materialise the pseudo-buffer even when empty: creation order
            # determines dict iteration order, which the reference (scan)
            # selection paths and repr output observe.
            node_buffer.pseudo_buffer(key)
            for _ in range(count):
                packet_id = buffer_ids[position]
                position += 1
                try:
                    packet = packets[packet_id]
                except KeyError:
                    raise CheckpointFormatError(
                        f"buffer at node {node} references unknown packet "
                        f"{packet_id}"
                    ) from None
                node_buffer.store(packet, key)
    if position != len(buffer_ids):
        raise CheckpointFormatError(
            f"buffer directory consumed {position} packet ids, section has "
            f"{len(buffer_ids)}"
        )

    # -- algorithm extra state -----------------------------------------------------
    algorithm.restore_checkpoint_state(
        checkpoint.header["algorithm"]["state"], packets
    )
    algorithm._rounds_until_gc = checkpoint.header["algorithm"]["rounds_until_gc"]

    # -- engine counters and running statistics ------------------------------------
    simulator._round = engine["round"]
    simulator._injected = engine["injected"]
    simulator._delivered = engine["delivered"]
    simulator._latency_sum = engine["latency_sum"]
    simulator._latency_max = engine["latency_max"]
    timeline = simulator._timeline
    timeline.max_occupancy = checkpoint.header["timeline"]["max_occupancy"]
    timeline.max_staged = checkpoint.header["timeline"]["max_staged"]
    nodes = checkpoint.section("timeline/nodes")
    loads = checkpoint.section("timeline/loads")
    timeline.load_maxima(dict(zip(nodes, loads)))

    # -- streaming injection log ---------------------------------------------------
    if simulator.packet_store is not None:
        simulator.packet_store = PacketStore.from_columns(
            checkpoint.section("store/rounds"),
            checkpoint.section("store/sources"),
            checkpoint.section("store/destinations"),
            checkpoint.section("store/ids"),
        )

    # -- full-history round records --------------------------------------------------
    if simulator.record_history:
        columns = {
            name: checkpoint.section(f"history/{name}") for name in _HISTORY_COLUMNS
        }
        occupancy_rows = checkpoint.header.get("history_occupancy")
        records: List[RoundRecord] = []
        for row in range(len(columns["rounds"])):
            occupancy = None
            if occupancy_rows is not None and occupancy_rows[row] is not None:
                occupancy = {node: load for node, load in occupancy_rows[row]}
            records.append(
                RoundRecord(
                    round=columns["rounds"][row],
                    injected=columns["injected"][row],
                    forwarded=columns["forwarded"][row],
                    delivered=columns["delivered"][row],
                    max_occupancy=columns["max_occupancy"][row],
                    max_occupancy_after_forwarding=columns["max_occupancy_after"][row],
                    staged=columns["staged"][row],
                    occupancy=occupancy,
                )
            )
        simulator._history = records

    # -- packet-id alignment ---------------------------------------------------------
    # The eager path re-allocates its whole schedule during prepare(), ending
    # exactly at the recorded value; streaming/adaptive adversaries allocate
    # nothing until resumed.  Either way the recorded position is where the
    # next id must come from.
    current_allocator().reset(checkpoint.header["next_packet_id"])

    # -- adversary cursor -------------------------------------------------------------
    cursor = checkpoint.header["adversary"]["cursor"]
    if cursor is not None and checkpoint.header["adversary"].get(
        "realized_in_sections"
    ):
        realized_columns = [
            checkpoint.section(f"adversary/realized_{name}")
            for name in _STORE_COLUMNS
        ]
        cursor = dict(cursor)
        cursor["realized"] = [list(row) for row in zip(*realized_columns)]
    offered_kind = getattr(
        adversary, "checkpoint_kind", type(adversary).__name__
    )
    if cursor is not None:
        recorded_kind = checkpoint.header["adversary"]["kind"]
        if offered_kind != recorded_kind:
            raise CheckpointSpecMismatchError(
                f"checkpoint was taken under a {recorded_kind} adversary, "
                f"got {offered_kind}"
            )
        resume_fn = getattr(adversary, "resume", None)
        if resume_fn is None:
            raise CheckpointSpecMismatchError(
                f"checkpoint carries a cursor for a {recorded_kind} "
                f"adversary, but the given {type(adversary).__name__} "
                f"cannot resume"
            )
        resume_fn(cursor)
    elif hasattr(adversary, "resume"):
        raise CheckpointSpecMismatchError(
            f"checkpoint was taken with a static (cursor-free) adversary but "
            f"the given {type(adversary).__name__} is stateful; resuming it "
            f"from round 0 would diverge"
        )
    return simulator


# ---------------------------------------------------------------------------
# Stitching: per-segment snapshots -> one global checkpoint
# ---------------------------------------------------------------------------


def _require_equal(values: List[Any], what: str) -> Any:
    """All per-segment values must agree; the disagreement is a *format*
    error (typed :class:`CheckpointFormatError`, a :class:`CheckpointError`
    subclass) so recovery code can distinguish "these segment files are not
    a consistent cut" — e.g. a crash mid-checkpoint left one segment a round
    behind — from logical misuse, and fall back to an older consistent cut
    instead of failing the run."""
    first = values[0]
    for value in values[1:]:
        if value != first:
            raise CheckpointFormatError(
                f"segment checkpoints disagree on {what}: {first!r} != {value!r}"
            )
    return first


def _merge_algorithm_states(states: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge per-segment :meth:`ForwardingAlgorithm.checkpoint_state` payloads.

    Convention (documented on ``checkpoint_state``): list-valued entries are
    element-disjoint-or-duplicated across segments and order-insensitive up
    to sorting — they merge by concat + sort + dedupe (HPTS staged packet
    ids sort into global injection order because ids are allocated in round-
    major row order; PPTS observed destinations dedupe to the union; greedy
    arrival pairs are keyed by unique packet ids).  Non-list entries must be
    identical in every segment.
    """
    keys: List[str] = []
    for state in states:
        for key in state:
            if key not in keys:
                keys.append(key)
    merged: Dict[str, Any] = {}
    for key in keys:
        values = [state[key] for state in states if key in state]
        if all(isinstance(value, list) for value in values):
            combined: List[Any] = []
            for value in values:
                combined.extend(value)
            combined.sort(key=lambda item: (isinstance(item, (list, tuple)), item))
            deduped: List[Any] = []
            for item in combined:
                if not deduped or deduped[-1] != item:
                    deduped.append(item)
            merged[key] = deduped
        else:
            merged[key] = _require_equal(values, f"algorithm state {key!r}")
    return merged


def _concat_sorted_rows(
    checkpoints: List[Checkpoint], prefix: str, columns: Tuple[str, ...], sort_by: str
) -> Dict[str, array]:
    """Concatenate per-segment int64 row tables, re-sorted by one column."""
    combined = {name: array("q") for name in columns}
    for checkpoint in checkpoints:
        for name in columns:
            combined[name].extend(checkpoint.section(f"{prefix}/{name}"))
    order = sorted(
        range(len(combined[sort_by])), key=combined[sort_by].__getitem__
    )
    return {
        name: array("q", (column[row] for row in order))
        for name, column in combined.items()
    }


def stitch_checkpoints(
    checkpoints: List[Checkpoint], *, max_staged: Optional[int] = None
) -> Checkpoint:
    """Merge per-segment snapshots of one sharded run into a global checkpoint.

    ``checkpoints`` must be the segments of a single
    :mod:`repro.network.sharded` run, in line order, all taken at the same
    round boundary.  The result is a normal single-engine checkpoint: packet
    and injection-log tables are concatenated and re-sorted into packet-id
    order, buffer directories (already node-ascending per segment) are
    concatenated, counters are summed and maxima maxed, and per-round history
    records are merged element-wise.  ``max_staged`` overrides the timeline's
    staged maximum — per-segment engines only ever saw their own staged
    packets, so the coordinator, which tracked the global per-round sum,
    must supply it whenever the algorithm stages (HPTS); for non-staging
    algorithms the per-segment maxima are all zero and the override may be
    omitted.

    The stitched checkpoint resumes bit-identically in a single-process
    engine (:meth:`repro.api.session.Session.resume`).
    """
    if not checkpoints:
        raise CheckpointError("stitch_checkpoints() needs at least one segment")
    engines = [checkpoint.header["engine"] for checkpoint in checkpoints]
    for field in (
        "round", "num_nodes", "history_policy", "record_history",
        "record_occupancy_vectors", "validate_capacity",
    ):
        _require_equal([engine[field] for engine in engines], f"engine {field!r}")
    _require_equal([c.spec_hash for c in checkpoints], "spec hash")
    _require_equal(
        [c.header["next_packet_id"] for c in checkpoints], "next packet id"
    )
    algorithm_headers = [c.header["algorithm"] for c in checkpoints]
    _require_equal([a["name"] for a in algorithm_headers], "algorithm name")
    _require_equal(
        [a["rounds_until_gc"] for a in algorithm_headers], "gc countdown"
    )
    adversary_headers = [c.header["adversary"] for c in checkpoints]
    _require_equal([a["kind"] for a in adversary_headers], "adversary kind")
    # Every segment advanced the same underlying row stream, so the cursors
    # (RNG / bucket state and position) must be interchangeable.
    _require_equal([a["cursor"] for a in adversary_headers], "adversary cursor")
    if any(a.get("realized_in_sections") for a in adversary_headers):
        raise CheckpointError(
            "adaptive adversaries cannot run sharded; refusing to stitch "
            "segment checkpoints carrying realized-injection sections"
        )

    first = checkpoints[0]
    sections: List[Tuple[str, array]] = []

    packets = _concat_sorted_rows(checkpoints, "packets", _PACKET_COLUMNS, "ids")
    sections.extend((f"packets/{name}", packets[name]) for name in _PACKET_COLUMNS)

    buffer_directory: List[List[Any]] = []
    buffer_ids = array("q")
    for checkpoint in checkpoints:
        buffer_directory.extend(checkpoint.header["buffers"])
        buffer_ids.extend(checkpoint.section("buffers/packet_ids"))
    sections.append(("buffers/packet_ids", buffer_ids))

    # Per-segment maxima arrive in observation order, which depends on the
    # segmentation; re-sort by node id so the stitched bytes are canonical
    # (segment node ranges are disjoint, so the key is unique).
    timeline_pairs: List[Tuple[int, int]] = []
    for checkpoint in checkpoints:
        timeline_pairs.extend(
            zip(
                checkpoint.section("timeline/nodes"),
                checkpoint.section("timeline/loads"),
            )
        )
    timeline_pairs.sort(key=lambda pair: pair[0])
    sections.append(
        ("timeline/nodes", array("q", (node for node, _ in timeline_pairs)))
    )
    sections.append(
        ("timeline/loads", array("q", (load for _, load in timeline_pairs)))
    )

    if first.history_policy is HistoryPolicy.STREAMING:
        store = _concat_sorted_rows(checkpoints, "store", _STORE_COLUMNS, "ids")
        sections.extend((f"store/{name}", store[name]) for name in _STORE_COLUMNS)

    history_occupancy: Optional[List[Optional[List[List[int]]]]] = None
    if engines[0]["record_history"]:
        length = _require_equal(
            [len(c.section("history/rounds")) for c in checkpoints],
            "history length",
        )
        merged_history = {name: array("q") for name in _HISTORY_COLUMNS}
        for row in range(length):
            _require_equal(
                [c.section("history/rounds")[row] for c in checkpoints],
                f"history round at row {row}",
            )
            merged_history["rounds"].append(first.section("history/rounds")[row])
            for name in ("injected", "forwarded", "delivered", "staged"):
                merged_history[name].append(
                    sum(c.section(f"history/{name}")[row] for c in checkpoints)
                )
            for name in ("max_occupancy", "max_occupancy_after"):
                merged_history[name].append(
                    max(c.section(f"history/{name}")[row] for c in checkpoints)
                )
        sections.extend(
            (f"history/{name}", merged_history[name]) for name in _HISTORY_COLUMNS
        )
        if engines[0]["record_occupancy_vectors"]:
            history_occupancy = []
            per_segment = [c.header.get("history_occupancy") for c in checkpoints]
            for row in range(length):
                rows = [
                    occupancy[row] if occupancy is not None else None
                    for occupancy in per_segment
                ]
                if all(entry is None for entry in rows):
                    history_occupancy.append(None)
                else:
                    combined_row: List[List[int]] = []
                    for entry in rows:
                        combined_row.extend(entry or [])
                    combined_row.sort(key=lambda pair: pair[0])
                    history_occupancy.append(combined_row)

    latency_maxima = [
        engine["latency_max"] for engine in engines
        if engine["latency_max"] is not None
    ]
    staged_maximum = max_staged
    if staged_maximum is None:
        staged_maximum = max(
            checkpoint.header["timeline"]["max_staged"]
            for checkpoint in checkpoints
        )
    header: Dict[str, Any] = {
        "format": "repro-checkpoint",
        "spec": first.spec,
        "spec_hash": first.spec_hash,
        "engine": dict(
            engines[0],
            injected=sum(engine["injected"] for engine in engines),
            delivered=sum(engine["delivered"] for engine in engines),
            latency_sum=sum(engine["latency_sum"] for engine in engines),
            latency_max=max(latency_maxima) if latency_maxima else None,
        ),
        "timeline": {
            "max_occupancy": max(
                checkpoint.header["timeline"]["max_occupancy"]
                for checkpoint in checkpoints
            ),
            "max_staged": staged_maximum,
        },
        "next_packet_id": first.header["next_packet_id"],
        "algorithm": {
            "name": algorithm_headers[0]["name"],
            "state": _merge_algorithm_states(
                [a["state"] for a in algorithm_headers]
            ),
            "rounds_until_gc": algorithm_headers[0]["rounds_until_gc"],
        },
        "buffers": buffer_directory,
        "adversary": {
            "kind": adversary_headers[0]["kind"],
            "cursor": adversary_headers[0]["cursor"],
            "realized_in_sections": False,
        },
        "history_occupancy": history_occupancy,
    }
    blob = _encode(header, sections)
    return _decode(blob, source="<stitched>")


def save_stitched(
    checkpoints: List[Checkpoint], path: str, *, max_staged: Optional[int] = None
) -> int:
    """Stitch per-segment snapshots and write the global checkpoint to ``path``."""
    stitched = stitch_checkpoints(checkpoints, max_staged=max_staged)
    blob = _encode(
        {
            key: value
            for key, value in stitched.header.items()
            if key not in ("version", "sections")
        },
        [(entry["name"], stitched.sections[entry["name"]])
         for entry in stitched.header["sections"]],
    )
    _atomic_write(path, blob)
    return len(blob)


def restore_simulator(
    checkpoint: Checkpoint,
    topology: "Topology",
    algorithm: "ForwardingAlgorithm",
    adversary: "Adversary",
) -> "Simulator":
    """Build a :class:`~repro.network.simulator.Simulator` positioned at the
    checkpoint's round boundary, from freshly constructed ingredients."""
    from .network.simulator import Simulator

    engine = checkpoint.header["engine"]
    simulator = Simulator(
        topology,
        algorithm,
        adversary,
        record_history=engine["record_history"],
        record_occupancy_vectors=engine["record_occupancy_vectors"],
        history=engine["history_policy"],
        validate_capacity=engine["validate_capacity"],
    )
    return restore_into(simulator, checkpoint)
