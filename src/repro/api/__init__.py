"""repro.api — the declarative front door for every simulation run.

Everything the paper measures is an instance of one shape: *topology x
adversary x forwarding algorithm x run policy*.  This package makes that
quadruple a first-class, serialisable object (:class:`ScenarioSpec`) and
provides one engine (:class:`Session`) that executes it, replacing the
hand-wired constructor plumbing previously duplicated across the CLI,
benchmarks, examples and the experiment harness.

Quickstart
----------

Fluent builder (the usual entry point)::

    from repro.api import Scenario

    report = (
        Scenario.line(64)
        .algorithm("hpts", levels=3)
        .adversary("hierarchy", rho=1 / 3, sigma=2, rounds=300,
                   branching=4, levels=3)
        .run()
    )
    print(report.max_occupancy, "<=", report.bound)

Batched sweeps share one :class:`Session` (cached topologies, thread-pool
fan-out, per-run packet-id scoping)::

    from repro.api import Scenario, Session

    session = Session()
    specs = [
        Scenario.line(128).algorithm("ppts")
        .adversary("round-robin", rho=1.0, sigma=2, rounds=300,
                   num_destinations=d)
        .build()
        for d in (1, 2, 4, 8, 16)
    ]
    reports = session.run_many(specs)

Spec schema
-----------

A :class:`ScenarioSpec` round-trips through ``to_dict``/``from_dict`` and
``to_json``/``from_json``.  The JSON layout::

    {
      "name": "optional label",
      "topology":  {"kind": "line",  "params": {"num_nodes": 64}},
      "algorithm": {"name": "ppts",  "params": {}},
      "adversary": {"name": "round-robin", "rho": 1.0, "sigma": 2.0,
                    "rounds": 300, "params": {"num_destinations": 8}},
      "policy":    {"rounds": null, "drain": true, "max_drain_rounds": null,
                    "record_history": false, "record_occupancy_vectors": false,
                    "validate_capacity": true, "seed": null}
    }

* ``topology.kind`` selects a :data:`TOPOLOGIES` entry.  Built-ins:
  ``"line"`` (``num_nodes``, ``allow_virtual_sink``), ``"tree"``
  (``family``: ``caterpillar`` / ``star`` / ``binary`` / ``random`` /
  ``parent`` plus family params), ``"forest"`` (``components``: a list of
  tree param dicts).
* ``algorithm.name`` selects an :data:`ALGORITHMS` entry.  Built-ins:
  ``"pts"``, ``"ppts"``, ``"hpts"`` (``levels``, optional ``branching``,
  ``rho``), ``"local"`` (``locality``), ``"downhill"``, ``"greedy"``
  (``policy`` name), ``"tree-pts"``, ``"tree-ppts"`` (``destinations``).
* ``adversary.name`` selects an :data:`ADVERSARIES` entry; ``rho``/``sigma``
  are the Definition 2.1 envelope and ``rounds`` the injection horizon.
  Built-ins: ``"burst"`` (alias ``stress``), ``"round-robin"``, ``"nested"``,
  ``"hierarchy"``, ``"bounded"`` (alias ``random``), ``"single"``,
  ``"bursty"``, ``"convergecast"``, ``"hotspot"``, ``"blocking"``,
  ``"lower-bound"``.
* ``policy`` drives the engine: injection-round override, drain behaviour,
  history recording, capacity validation, and the per-run RNG ``seed``
  (forwarded to adversary builders that accept one).

Extension points
----------------

New components plug in with a decorator — no changes to this package::

    from repro.api import register_algorithm, register_adversary, register_topology

    @register_algorithm("my-algo")
    class MyAlgorithm(ForwardingAlgorithm):
        ...                           # entry(topology, **params)

    @register_adversary("my-traffic")
    def build_my_traffic(topology, *, rho, sigma, rounds, **params):
        return InjectionPattern(...)  # any Adversary

    @register_topology("ring")
    def build_ring(num_nodes=8):
        return RingTopology(num_nodes)

After registration the component is addressable from specs, the fluent
builder, JSON files and the ``--spec`` CLI flag alike.
"""

from __future__ import annotations

from .builder import Scenario
from .registry import (
    ADVERSARIES,
    ALGORITHMS,
    TOPOLOGIES,
    Registry,
    RegistryError,
    register_adversary,
    register_algorithm,
    register_topology,
)
from .session import (
    PreparedRun,
    RunReport,
    Session,
    build_topology,
    reports_to_table,
)
from .specs import (
    AdversarySpec,
    AlgorithmSpec,
    RunPolicy,
    ScenarioSpec,
    SpecError,
    TopologySpec,
)

# Importing the component modules applies their registration decorators, so
# `import repro.api` alone is enough to populate the registries.
from .. import baselines as _baselines  # noqa: F401
from ..adversary import adaptive as _adaptive  # noqa: F401
from ..adversary import generators as _generators  # noqa: F401
from ..adversary import lower_bound as _lower_bound  # noqa: F401
from ..adversary import stress as _stress  # noqa: F401
from ..core import hpts as _hpts  # noqa: F401
from ..core import local as _local  # noqa: F401
from ..core import ppts as _ppts  # noqa: F401
from ..core import pts as _pts  # noqa: F401
from ..core import tree as _tree  # noqa: F401
from ..network import forest as _forest  # noqa: F401
from ..network import topology as _topology  # noqa: F401

__all__ = [
    "Scenario",
    "Session",
    "RunReport",
    "PreparedRun",
    "build_topology",
    "reports_to_table",
    "ScenarioSpec",
    "TopologySpec",
    "AlgorithmSpec",
    "AdversarySpec",
    "RunPolicy",
    "SpecError",
    "Registry",
    "RegistryError",
    "ALGORITHMS",
    "ADVERSARIES",
    "TOPOLOGIES",
    "register_algorithm",
    "register_adversary",
    "register_topology",
]
