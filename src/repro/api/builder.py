"""The fluent front door: compose a :class:`ScenarioSpec` one call at a time.

>>> from repro.api import Scenario
>>> report = (
...     Scenario.line(64)
...     .algorithm("ppts")
...     .adversary("round-robin", rho=1.0, sigma=2, rounds=300, num_destinations=8)
...     .run()
... )
>>> report.within_bound
True

Each chained call returns the same builder; :meth:`Scenario.build` freezes
the accumulated choices into an immutable :class:`ScenarioSpec`, and
:meth:`Scenario.run` builds + executes in one step (on a private
:class:`~repro.api.session.Session` unless one is passed in, e.g. to share a
topology cache across a sweep).
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from .specs import (
    AdversarySpec,
    AlgorithmSpec,
    RunPolicy,
    ScenarioSpec,
    SpecError,
    TopologySpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import RunReport, Session

__all__ = ["Scenario"]


class Scenario:
    """Mutable builder for :class:`ScenarioSpec` with topology entry points."""

    def __init__(self, topology: TopologySpec) -> None:
        self._topology = topology
        self._algorithm: Optional[AlgorithmSpec] = None
        self._adversary: Optional[AdversarySpec] = None
        self._policy = RunPolicy()
        self._name: Optional[str] = None

    # -- topology entry points ----------------------------------------------------

    @classmethod
    def line(cls, num_nodes: int, **params: Any) -> "Scenario":
        """Start from the directed line ``0 -> 1 -> ... -> n-1``."""
        return cls(TopologySpec.line(num_nodes, **params))

    @classmethod
    def tree(cls, family: str, **params: Any) -> "Scenario":
        """Start from a registered in-tree family (caterpillar/star/binary/...)."""
        return cls(TopologySpec.tree(family, **params))

    @classmethod
    def forest(cls, components: list, **params: Any) -> "Scenario":
        """Start from a forest given per-component tree descriptions."""
        return cls(TopologySpec.forest(components, **params))

    @classmethod
    def topology(cls, kind: str, **params: Any) -> "Scenario":
        """Start from any registered topology kind."""
        return cls(TopologySpec(kind, params))

    @classmethod
    def from_spec(cls, spec: ScenarioSpec) -> "Scenario":
        """A builder pre-loaded from an existing spec (for tweaking)."""
        builder = cls(spec.topology)
        builder._algorithm = spec.algorithm
        builder._adversary = spec.adversary
        builder._policy = spec.policy
        builder._name = spec.name
        return builder

    # -- fluent configuration -----------------------------------------------------

    def algorithm(self, name: str, **params: Any) -> "Scenario":
        """Select the forwarding algorithm by registry name."""
        self._algorithm = AlgorithmSpec(name, params)
        return self

    def adversary(
        self,
        name: str,
        *,
        rho: float = 1.0,
        sigma: float = 2.0,
        rounds: int = 200,
        **params: Any,
    ) -> "Scenario":
        """Select the injection process by registry name."""
        self._adversary = AdversarySpec(name, rho, sigma, rounds, params)
        return self

    def policy(self, **overrides: Any) -> "Scenario":
        """Override run-policy fields (drain, seed, record_history, ...)."""
        merged = dict(self._policy.to_dict())
        merged.update(overrides)
        self._policy = RunPolicy.from_dict(merged)
        return self

    def rounds(self, rounds: int) -> "Scenario":
        """Cap the injection rounds executed (see :class:`RunPolicy`)."""
        return self.policy(rounds=rounds)

    def drain(self, drain: bool = True) -> "Scenario":
        return self.policy(drain=drain)

    def seed(self, seed: int) -> "Scenario":
        return self.policy(seed=seed)

    def record_history(self, record: bool = True) -> "Scenario":
        return self.policy(record_history=record)

    def named(self, name: str) -> "Scenario":
        """Attach a display label used in result tables."""
        self._name = name
        return self

    # -- terminal operations ------------------------------------------------------

    def build(self) -> ScenarioSpec:
        """Freeze into an immutable, JSON-serialisable :class:`ScenarioSpec`."""
        if self._algorithm is None:
            raise SpecError("Scenario is missing .algorithm(...)")
        if self._adversary is None:
            raise SpecError("Scenario is missing .adversary(...)")
        return ScenarioSpec(
            topology=self._topology,
            algorithm=self._algorithm,
            adversary=self._adversary,
            policy=self._policy,
            name=self._name,
        )

    def run(self, session: Optional["Session"] = None) -> "RunReport":
        """Build the spec and execute it immediately."""
        from .session import Session

        return (session or Session()).run(self.build())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario(topology={self._topology!r}, algorithm={self._algorithm!r}, "
            f"adversary={self._adversary!r})"
        )
