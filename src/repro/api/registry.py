"""String-keyed registries behind the declarative scenario API.

Three registries back :mod:`repro.api`: one per axis of the paper's scenario
quadruple *topology x adversary x forwarding algorithm* (the fourth axis, the
run policy, is pure data and needs no registry).  Components self-register at
definition time with the decorators exported here::

    from repro.api.registry import register_algorithm

    @register_algorithm("ppts")
    class ParallelPeakToSink(ForwardingAlgorithm):
        ...

    @register_adversary("round-robin", aliases=("round_robin",))
    def _build_round_robin(topology, *, rho, sigma, rounds, num_destinations):
        return round_robin_destination_stress(topology, rho, sigma, rounds,
                                              num_destinations)

Entry calling conventions (what :class:`repro.api.session.Session` expects):

* **topology** entries: ``entry(**params) -> Topology``;
* **algorithm** entries: ``entry(topology, **params) -> ForwardingAlgorithm``;
* **adversary** entries: ``entry(topology, *, rho, sigma, rounds, **params)
  -> Adversary`` (``seed`` is passed through only when the entry accepts it).

This module deliberately imports nothing from the rest of the library except
the leaf ``network.errors`` module, so that ``core/``, ``adversary/`` and
``network/`` modules can import it without cycles.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, TypeVar, Union

from ..network.errors import ReproError

__all__ = [
    "Registry",
    "RegistryError",
    "ALGORITHMS",
    "ADVERSARIES",
    "TOPOLOGIES",
    "register_algorithm",
    "register_adversary",
    "register_topology",
]

T = TypeVar("T")


class RegistryError(ReproError, KeyError):
    """An unknown registry key (carries the list of known keys).

    Subclasses both :class:`~repro.network.errors.ReproError` (so the CLI and
    ``except ReproError`` callers handle it like every other library error)
    and :class:`KeyError`; the message names the registry and every
    registered key to make typos self-diagnosing.
    """

    def __init__(self, kind: str, name: str, known: Iterable[str]) -> None:
        self.kind = kind
        self.name = name
        self.known = sorted(known)
        super().__init__(
            f"unknown {kind} {name!r}; known {kind} names: "
            + (", ".join(self.known) if self.known else "(none)")
        )

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class Registry:
    """A named string -> factory mapping with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, object] = {}
        #: alias -> canonical name (aliases resolve but are not listed).
        self._aliases: Dict[str, str] = {}

    # -- registration -----------------------------------------------------------

    def register(
        self,
        name: str,
        obj: Optional[T] = None,
        *,
        aliases: Iterable[str] = (),
    ) -> Union[T, Callable[[T], T]]:
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering an existing name replaces the entry (so reloading a
        module, or a downstream package shadowing a built-in, just works).
        """

        def _store(target: T) -> T:
            # A canonical registration always wins over a same-named alias,
            # so shadowing a built-in alias (e.g. "random") works too.
            self._aliases.pop(name, None)
            self._entries[name] = target
            for alias in aliases:
                self._aliases[alias] = name
            return target

        if obj is not None:
            return _store(obj)
        return _store

    # -- lookup -----------------------------------------------------------------

    def canonical(self, name: str) -> str:
        """Resolve an alias to its canonical key (identity for canonical keys)."""
        return self._aliases.get(name, name)

    def get(self, name: str) -> Any:
        """The registered entry, or raise :class:`RegistryError`."""
        key = self.canonical(name)
        try:
            return self._entries[key]
        except KeyError:
            raise RegistryError(self.kind, name, self._entries) from None

    def names(self) -> List[str]:
        """All canonical keys, sorted."""
        return sorted(self._entries)

    def aliases_of(self, name: str) -> List[str]:
        """All aliases resolving to ``name`` (itself canonical), sorted."""
        key = self.canonical(name)
        return sorted(a for a, target in self._aliases.items() if target == key)

    def catalog(self) -> List[Dict[str, object]]:
        """One row per canonical entry: name, aliases, first docstring line.

        This is the discovery surface behind ``python -m repro registry``
        (lint rule RPR005 keeps it honest: every registered name must be
        reachable from the CLI or the docs).
        """
        rows: List[Dict[str, object]] = []
        for name in self.names():
            entry = self._entries[name]
            doc = (getattr(entry, "__doc__", None) or "").strip()
            rows.append(
                {
                    "name": name,
                    "aliases": self.aliases_of(name),
                    "summary": doc.splitlines()[0] if doc else "",
                }
            )
        return rows

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, entries={self.names()})"


#: Forwarding algorithms: ``entry(topology, **params) -> ForwardingAlgorithm``.
ALGORITHMS = Registry("algorithm")
#: Injection processes: ``entry(topology, *, rho, sigma, rounds, **params)``.
ADVERSARIES = Registry("adversary")
#: Topology builders: ``entry(**params) -> Topology``.
TOPOLOGIES = Registry("topology")

register_algorithm = ALGORITHMS.register
register_adversary = ADVERSARIES.register
register_topology = TOPOLOGIES.register
