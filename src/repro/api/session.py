"""The Session runner: build a :class:`ScenarioSpec` and execute it.

A :class:`Session` turns declarative specs into simulations:

* registry lookups resolve the topology / adversary / algorithm names,
* shared topology construction is cached per topology-spec hash (building a
  127-node random tree once per sweep, not once per run),
* every run executes inside a fresh :func:`repro.core.packet.packet_id_scope`,
  so packet ids (and therefore results) are deterministic and independent of
  what ran before — which also makes :meth:`Session.run_many`'s thread-pool
  fan-out safe,
* results come back as :class:`RunReport` rows carrying the measured maximum
  occupancy next to the algorithm's closed-form bound.
"""

from __future__ import annotations

import inspect
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..checkpoint import Checkpoint
    from ..network.faults import FaultPlan

from ..analysis.metrics import check_against_bound
from ..analysis.tables import format_table
from ..core.packet import packet_id_scope
from ..core.pseudobuffer import QueueDiscipline
from ..core.scheduler import ForwardingAlgorithm
from ..network.events import SimulationResult
from ..network.simulator import Simulator
from ..network.topology import Topology
from .registry import ADVERSARIES, ALGORITHMS, TOPOLOGIES
from .specs import RunPolicy, ScenarioSpec, SpecError, TopologySpec

__all__ = [
    "Session",
    "RunReport",
    "PreparedRun",
    "build_topology",
    "reports_to_table",
]


@dataclass
class RunReport:
    """One executed scenario: the spec, the result, and the bound comparison."""

    name: str
    algorithm: str
    result: SimulationResult
    bound: Optional[float]
    within_bound: bool
    #: Scenario parameters worth reporting (merged topology/adversary/algorithm).
    params: Dict[str, Any] = field(default_factory=dict)
    #: The originating spec (``None`` for compatibility-layer runs).
    spec: Optional[ScenarioSpec] = None
    #: Recovery telemetry from the sharded supervisor (``None`` for
    #: single-process runs): ``restarts`` counts worker respawns the run
    #: absorbed and ``recovery_time_s`` the wall clock spent restitching
    #: (``None`` unless a clock was injected).  Surfaced in the CLI's
    #: ``--json`` rows so a run that survived faults is distinguishable from
    #: one that never saw any — their results are bit-identical by design.
    recovery: Optional[Dict[str, Any]] = None
    #: Engine-routing telemetry: which engine the policy requested
    #: (``"delta"``/``"batch"``/``"auto"``), which one actually ran, the
    #: refusal message when ``"auto"`` fell back to the object engine, and —
    #: for sharded runs — which boundary transport carried the supersteps
    #: (``"shm"``, ``"processes"`` or ``"local"``).  Engines are bit-identical
    #: by construction, so this exists purely to make silent fallbacks
    #: diagnosable; surfaced in the CLI's ``--json`` rows.
    engine: Optional[Dict[str, Any]] = None

    @property
    def max_occupancy(self) -> int:
        return self.result.max_occupancy

    def as_row(self, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Flatten to a dict row for the ASCII table formatter / JSON output."""
        row: Dict[str, Any] = {"scenario": self.name, "algorithm": self.algorithm}
        row.update(self.params)
        row.update(
            {
                "max_occupancy": self.result.max_occupancy,
                "bound": None if self.bound is None else round(self.bound, 2),
                "within_bound": self.within_bound,
                "packets": self.result.packets_injected,
                "delivered": self.result.packets_delivered,
                "max_latency": self.result.max_latency,
            }
        )
        if extra:
            row.update(extra)
        return row


@dataclass
class PreparedRun:
    """A scenario with its three ingredients already constructed.

    The compatibility layer (:func:`repro.experiments.harness.run_workload`,
    hand-built objects in tests) funnels through this so every execution path
    shares one engine: :meth:`Session.run`.
    """

    topology: Topology
    algorithm: ForwardingAlgorithm
    adversary: Any
    policy: RunPolicy = field(default_factory=RunPolicy)
    name: str = "prepared"
    #: Reporting params merged into the resulting row.
    params: Dict[str, Any] = field(default_factory=dict)
    #: Declared burst envelope used for the bound comparison; ``None`` falls
    #: back to the adversary's own ``sigma`` attribute (which equals the
    #: spec-declared value for every registered builder except the
    #: lower-bound construction, which intentionally claims no bound).
    sigma: Optional[float] = None


Runnable = Union[ScenarioSpec, PreparedRun]


def _accepts_keyword(callable_obj: Any, keyword: str) -> bool:
    """Whether ``callable_obj`` can take ``keyword`` as a keyword argument."""
    try:
        signature = inspect.signature(callable_obj)
    except (TypeError, ValueError):  # pragma: no cover - builtins
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == keyword and parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            return True
    return False


def _coerce_discipline(params: Dict[str, Any]) -> Dict[str, Any]:
    """Allow ``"FIFO"`` / ``"LIFO"`` strings for the queue-discipline enum in
    JSON specs."""
    discipline = params.get("discipline")
    if isinstance(discipline, str):
        try:
            params = dict(params)
            params["discipline"] = QueueDiscipline[discipline.upper()]
        except KeyError:
            raise SpecError(
                f"unknown queue discipline {discipline!r}; "
                f"expected one of {[d.name for d in QueueDiscipline]}"
            ) from None
    return params


def build_topology(spec: TopologySpec) -> Topology:
    """Construct the topology described by ``spec`` (uncached)."""
    builder = TOPOLOGIES.get(spec.kind)
    return builder(**spec.params)


class Session:
    """Executes scenario specs, one at a time or as batched sweeps.

    Parameters
    ----------
    max_workers:
        Default thread-pool width for :meth:`run_many` (``None`` lets the
        executor pick).  Simulations are pure-Python and GIL-bound, so the win
        is overlap of independent runs, not raw parallel speed-up; pass
        ``max_workers=0`` to force sequential execution.
    cache_topologies:
        Reuse one :class:`Topology` instance per distinct
        :class:`TopologySpec` (topologies are read-only during simulation, so
        sharing across concurrent runs is safe).
    """

    def __init__(
        self,
        *,
        max_workers: Optional[int] = None,
        cache_topologies: bool = True,
    ) -> None:
        self.max_workers = max_workers
        self.cache_topologies = cache_topologies
        self._topology_cache: Dict[str, Topology] = {}
        #: How many topologies this session has actually constructed (cache
        #: misses included, hits excluded).  The process-pool warm-up test
        #: uses this to prove workers stop rebuilding per run.
        self.topology_builds = 0

    # -- construction -----------------------------------------------------------

    def topology(self, spec: TopologySpec) -> Topology:
        """The (cached) topology for ``spec``."""
        if not self.cache_topologies:
            self.topology_builds += 1
            return build_topology(spec)
        key = spec.spec_hash()
        if key not in self._topology_cache:
            self.topology_builds += 1
            self._topology_cache[key] = build_topology(spec)
        return self._topology_cache[key]

    def prepare(self, spec: ScenarioSpec) -> PreparedRun:
        """Resolve a spec's registry names into live objects.

        Called inside the run's packet-id scope by :meth:`run`; also usable
        directly to inspect what a spec would build.
        """
        topology = self.topology(spec.topology)

        adversary_builder = ADVERSARIES.get(spec.adversary.name)
        adversary_params = dict(spec.adversary.params)
        if (
            spec.policy.seed is not None
            and "seed" not in adversary_params
            and _accepts_keyword(adversary_builder, "seed")
        ):
            adversary_params["seed"] = spec.policy.seed
        adversary = adversary_builder(
            topology,
            rho=spec.adversary.rho,
            sigma=spec.adversary.sigma,
            rounds=spec.adversary.rounds,
            **adversary_params,
        )

        algorithm_builder = ALGORITHMS.get(spec.algorithm.name)
        algorithm = algorithm_builder(
            topology, **_coerce_discipline(spec.algorithm.params)
        )

        params = self._report_params(spec, topology)
        return PreparedRun(
            topology=topology,
            algorithm=algorithm,
            adversary=adversary,
            policy=spec.policy,
            name=spec.label,
            params=params,
        )

    @staticmethod
    def _report_params(spec: ScenarioSpec, topology: Topology) -> Dict[str, Any]:
        """The scenario parameters reported in a run's result row."""
        params: Dict[str, Any] = {"n": topology.num_nodes}
        params.update(spec.topology.params)
        params.pop("num_nodes", None)  # reported as "n"
        params.update(
            {"rho": spec.adversary.rho, "sigma": spec.adversary.sigma,
             "rounds": spec.adversary.rounds}
        )
        params.update(spec.adversary.params)
        params.update(spec.algorithm.params)
        return params

    # -- execution --------------------------------------------------------------

    def run(
        self, scenario: Runnable, *, faults: Optional["FaultPlan"] = None
    ) -> RunReport:
        """Execute one scenario and report the measured-vs-bound outcome.

        A spec whose policy sets ``shards > 1`` routes transparently to the
        sharded engine (:mod:`repro.network.sharded`) — the report is built
        from the merged result, which is bit-identical to ``shards=1``.
        Sharded runs are supervised: worker failures are handled per the
        spec's ``policy.recovery`` / ``max_worker_restarts`` /
        ``heartbeat_timeout`` knobs, and ``faults`` optionally threads a
        deterministic :class:`~repro.network.faults.FaultPlan` through the
        supervisor for reproducible chaos runs (sharded specs only — faults
        describe worker/transport failures, which a single-process run does
        not have).
        """
        if isinstance(scenario, ScenarioSpec):
            if scenario.policy.shards is not None and scenario.policy.shards > 1:
                return self._run_sharded(scenario, faults=faults)
            if faults is not None:
                raise SpecError(
                    "faults describe segment-worker failures and need a "
                    "sharded run; set policy.shards > 1 to use a FaultPlan"
                )
            with packet_id_scope():
                prepared = self.prepare(scenario)
                return self._execute(prepared, spec=scenario)
        if faults is not None:
            raise SpecError(
                "faults require a ScenarioSpec with policy.shards > 1, "
                f"got {type(scenario).__name__}"
            )
        if isinstance(scenario, PreparedRun):
            if (
                scenario.policy.shards is not None
                and scenario.policy.shards > 1
            ):
                from ..network.errors import UnshardableScenarioError

                raise UnshardableScenarioError(
                    "PreparedRun carries live (unpicklable) ingredients that "
                    "cannot be shipped to segment workers; describe the "
                    "scenario as a ScenarioSpec to run with shards > 1"
                )
            # Pre-built ingredients already carry their packet ids; no scope.
            return self._execute(scenario, spec=None)
        raise SpecError(
            f"Session.run expects a ScenarioSpec or PreparedRun, "
            f"got {type(scenario).__name__}"
        )

    def run_many(
        self,
        scenarios: Iterable[Runnable],
        *,
        max_workers: Optional[int] = None,
        use_processes: bool = False,
    ) -> List[RunReport]:
        """Execute a batch of scenarios, fanned out over a worker pool.

        Results come back in input order.  Topologies are constructed up
        front through the shared cache (so concurrent runs never race on
        construction); each spec then executes in its own packet-id scope.
        (:class:`PreparedRun` items carry pre-built, pre-numbered ingredients
        and run unscoped, exactly as :meth:`run` would execute them.)

        With ``use_processes=True`` the batch runs on a
        :class:`~concurrent.futures.ProcessPoolExecutor` instead of threads.
        Simulations are pure-Python and GIL-bound, so this is the option that
        actually scales CPU-bound sweeps across cores.  Every item must be a
        :class:`ScenarioSpec` (specs are plain picklable data; live
        :class:`PreparedRun` ingredients stay in-process).  Each worker is
        *warmed once* by a pool initializer: the batch's distinct topology
        specs are pickled a single time into the initializer arguments, and
        every worker builds each topology (plus its next-hop table) exactly
        once into a persistent per-worker :class:`Session` — submitting a
        hundred same-topology runs no longer rebuilds the network a hundred
        times per worker.  Results are identical to the thread path because
        every run is seeded through its spec and executes in a fresh
        packet-id scope either way.
        """
        items: Sequence[Runnable] = list(scenarios)
        workers = self.max_workers if max_workers is None else max_workers
        if use_processes:
            for position, item in enumerate(items):
                if not isinstance(item, ScenarioSpec):
                    # A typed, actionable error (SpecError -> ReproError), not
                    # a bare ValueError: live PreparedRun ingredients cannot
                    # cross a process boundary.
                    raise SpecError(
                        f"run_many(use_processes=True) requires every item to "
                        f"be a ScenarioSpec (plain picklable data); item "
                        f"{position} is a {type(item).__name__}.  Describe the "
                        f"scenario declaratively, or drop use_processes to "
                        f"run live PreparedRun objects in-process."
                    )
            if workers == 0 or len(items) <= 1:
                return [self.run(item) for item in items]
            distinct_topologies: Dict[str, TopologySpec] = {}
            for item in items:
                distinct_topologies.setdefault(
                    item.topology.spec_hash(), item.topology
                )
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_warm_worker,
                initargs=(
                    tuple(distinct_topologies.values()),
                    self.cache_topologies,
                ),
            ) as pool:
                return list(pool.map(_run_spec_in_worker, items))
        if self.cache_topologies:  # warm the topology cache sequentially
            for item in items:
                if isinstance(item, ScenarioSpec):
                    self.topology(item.topology)
        if workers == 0 or len(items) <= 1:
            return [self.run(item) for item in items]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.run, items))

    def resume(
        self,
        checkpoint: Union[str, "Checkpoint"],
        spec: Optional[ScenarioSpec] = None,
    ) -> RunReport:
        """Resume a checkpointed run and drive it to completion.

        ``checkpoint`` is a file path (or an already-loaded
        :class:`~repro.checkpoint.Checkpoint`).  The scenario is rebuilt from
        the spec embedded in the snapshot; passing ``spec`` explicitly is
        allowed only when it hashes identically (modulo the checkpoint-policy
        fields) — anything else raises
        :class:`~repro.network.errors.CheckpointSpecMismatchError` rather
        than silently mixing two executions.  The resumed run's
        :class:`RunReport` is bit-identical to what the uninterrupted run
        would have returned.
        """
        from ..checkpoint import Checkpoint, load_checkpoint, verify_spec
        from ..network.errors import CheckpointError

        loaded = (
            checkpoint
            if isinstance(checkpoint, Checkpoint)
            else load_checkpoint(checkpoint)
        )
        if spec is not None:
            verify_spec(loaded, spec)
        elif loaded.spec is None:
            raise CheckpointError(
                "checkpoint carries no embedded scenario spec; pass the "
                "originating ScenarioSpec to Session.resume()"
            )
        else:
            spec = ScenarioSpec.from_dict(loaded.spec)
        if spec.policy.shards is not None and spec.policy.shards > 1:
            # Resuming always continues in-process: sharding is outside the
            # resume-identity hash (results are proven identical), and
            # restore targets one engine.  A stitched sharded checkpoint
            # therefore resumes exactly like a single-process one.
            payload = spec.to_dict()
            payload["policy"] = dict(payload["policy"], shards=None)
            spec = ScenarioSpec.from_dict(payload)
        with packet_id_scope():
            prepared = self.prepare(spec)
            return self._execute(prepared, spec=spec, checkpoint=loaded)

    # -- internals ---------------------------------------------------------------

    def _run_sharded(
        self, spec: ScenarioSpec, faults: Optional["FaultPlan"] = None
    ) -> RunReport:
        """Execute a spec on the sharded engine and assemble the report.

        The merged :class:`SimulationResult` comes back from the segment
        workers; only the bound comparison needs a local algorithm instance,
        which is given every worker's discovered state first (PPTS learns
        its destination set from the packets it stores, and each worker only
        saw its own segment's).
        """
        from ..network.sharded import run_sharded

        result, extras = run_sharded(spec, faults=faults)
        topology = self.topology(spec.topology)
        algorithm_builder = ALGORITHMS.get(spec.algorithm.name)
        algorithm = algorithm_builder(
            topology, **_coerce_discipline(spec.algorithm.params)
        )
        algorithm.fold_sibling_state(extras["algorithm_states"])
        # Mirror _execute's sigma source exactly: the *built* adversary's
        # declared sigma (workers report it), with no spec fallback — an
        # adversary that claims no envelope gets no bound, sharded or not.
        sigma = extras.get("adversary_sigma")
        bound = (
            algorithm.theoretical_bound(sigma) if sigma is not None else None
        )
        within = check_against_bound(result, bound).satisfied
        return RunReport(
            name=spec.label,
            algorithm=result.algorithm,
            result=result,
            bound=bound,
            within_bound=within,
            params=self._report_params(spec, topology),
            spec=spec,
            recovery=extras.get("recovery"),
            # Same visibility rule as _execute: routing telemetry surfaces
            # only when the policy actually routed (engine="batch"/"auto");
            # a plain delta run reports none, sharded or not.
            engine=(
                extras.get("engine")
                if spec.policy.engine in ("batch", "auto")
                else None
            ),
        )

    def _execute(
        self,
        prepared: PreparedRun,
        *,
        spec: Optional[ScenarioSpec],
        checkpoint: Optional["Checkpoint"] = None,
    ) -> RunReport:
        policy = prepared.policy
        simulator: Optional[Simulator] = None
        engine_info: Optional[Dict[str, Any]] = None
        if policy.engine in ("batch", "auto"):
            from ..network.batch import BatchSimulator
            from ..network.errors import UnbatchableScenarioError

            engine_info = {
                "requested": policy.engine,
                "selected": "batch",
                "fallback_reason": None,
            }
            try:
                simulator = BatchSimulator(
                    prepared.topology,
                    prepared.algorithm,
                    prepared.adversary,
                    batch_rounds=policy.batch_rounds,
                    record_history=policy.record_history,
                    record_occupancy_vectors=policy.record_occupancy_vectors,
                    history=policy.history,
                    validate_capacity=policy.validate_capacity,
                )
            except UnbatchableScenarioError as refusal:
                if policy.engine == "batch":
                    raise
                # engine="auto": the scenario is outside the vectorized
                # family; the object engine computes the same thing.
                engine_info["selected"] = "delta"
                engine_info["fallback_reason"] = str(refusal)
        if simulator is None:
            simulator = Simulator(
                prepared.topology,
                prepared.algorithm,
                prepared.adversary,
                record_history=policy.record_history,
                record_occupancy_vectors=policy.record_occupancy_vectors,
                history=policy.history,
                validate_capacity=policy.validate_capacity,
            )
        if checkpoint is not None:
            from ..checkpoint import restore_into

            restore_into(simulator, checkpoint)
        result = simulator.run(
            policy.rounds,
            drain=policy.drain,
            max_drain_rounds=policy.max_drain_rounds,
            checkpoint_every=policy.checkpoint_every,
            checkpoint_path=policy.checkpoint_path,
            checkpoint_spec=spec,
        )
        sigma = prepared.sigma
        if sigma is None:
            sigma = getattr(prepared.adversary, "sigma", None)
        bound = (
            prepared.algorithm.theoretical_bound(sigma) if sigma is not None else None
        )
        within = check_against_bound(result, bound).satisfied
        return RunReport(
            name=prepared.name,
            algorithm=prepared.algorithm.name,
            result=result,
            bound=bound,
            within_bound=within,
            params=dict(prepared.params),
            spec=spec,
            engine=engine_info,
        )


#: The per-worker Session installed by :func:`_warm_worker`.  Lives for the
#: whole worker process, so its topology cache persists across submitted runs.
_WORKER_SESSION: Optional[Session] = None


def _warm_worker(
    topology_specs: Tuple[TopologySpec, ...], cache_topologies: bool = True
) -> None:
    """Process-pool initializer: warm one persistent Session per worker.

    Runs once per worker process.  Builds every distinct topology of the
    batch (the specs are pickled once, in the initializer arguments, not per
    submitted run) and precomputes its next-hop table, so the per-run cost in
    the worker is simulation only.  With ``cache_topologies=False`` there is
    nowhere to keep the warm objects, so the pre-build is skipped — each run
    then constructs its own topology, exactly as that configuration asks.
    """
    global _WORKER_SESSION
    session = Session(cache_topologies=cache_topologies)
    if cache_topologies:
        for spec in topology_specs:
            session.topology(spec).next_hop_table()
    _WORKER_SESSION = session


def _run_spec_in_worker(spec: ScenarioSpec, *, cache_topologies: bool = True) -> RunReport:
    """Process-pool entry point: execute one spec in the worker's Session.

    Module-level so it pickles by reference.  Uses the warm per-worker
    session installed by :func:`_warm_worker`; falls back to a throwaway
    Session when called outside a warmed pool.
    """
    session = _WORKER_SESSION
    if session is None:
        session = Session(cache_topologies=cache_topologies)
    return session.run(spec)


def reports_to_table(
    reports: Iterable[RunReport],
    columns: Optional[List[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Render run reports with the shared ASCII table formatter."""
    return format_table([report.as_row() for report in reports], columns, title=title)
