"""Frozen declarative specs for the scenario quadruple.

Every simulation the library can run is described by a
:class:`ScenarioSpec` — the composition of

* a :class:`TopologySpec` (*where* packets travel),
* an :class:`AdversarySpec` (*what* traffic arrives, and its declared
  ``(rho, sigma)`` bound),
* an :class:`AlgorithmSpec` (*how* packets are forwarded), and
* a :class:`RunPolicy` (*how* the execution is driven and observed).

Specs are frozen dataclasses with strict validation, dict/JSON round-tripping
(``ScenarioSpec.from_dict(spec.to_dict()) == spec``) and a stable canonical
hash used by :class:`repro.api.session.Session` to cache shared topology
construction.  ``params`` mappings are normalised through JSON at
construction time, so a spec is JSON-serialisable by construction — putting a
non-serialisable object in ``params`` fails fast, not at save time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Optional, Type, TypeVar

from ..network.errors import ConfigurationError

__all__ = [
    "SpecError",
    "TopologySpec",
    "AdversarySpec",
    "AlgorithmSpec",
    "RunPolicy",
    "ScenarioSpec",
]


class SpecError(ConfigurationError):
    """A malformed or inconsistent scenario spec."""


_SpecT = TypeVar("_SpecT", bound="_SpecBase")


def _normalize_params(params: Optional[Mapping[str, Any]], owner: str) -> Dict[str, Any]:
    """Copy ``params`` through JSON: validates serialisability and makes the
    stored form identical to what ``from_dict`` reconstructs (tuples become
    lists, keys become strings), so round-trip equality holds."""
    if params is None:
        return {}
    if not isinstance(params, Mapping):
        raise SpecError(f"{owner} params must be a mapping, got {type(params).__name__}")
    try:
        return json.loads(json.dumps(dict(params), sort_keys=True))
    except TypeError as error:
        raise SpecError(f"{owner} params are not JSON-serialisable: {error}") from None


def _require_str(value: Any, what: str) -> None:
    if not isinstance(value, str) or not value:
        raise SpecError(f"{what} must be a non-empty string, got {value!r}")


def _check_keys(payload: Mapping[str, Any], allowed: set, what: str) -> None:
    if not isinstance(payload, Mapping):
        raise SpecError(f"{what} must be a mapping, got {type(payload).__name__}")
    unknown = set(payload) - allowed
    if unknown:
        raise SpecError(
            f"unknown key(s) {sorted(unknown)} in {what}; allowed: {sorted(allowed)}"
        )


class _SpecBase:
    """Shared dict/JSON plumbing for the frozen spec dataclasses."""

    def to_dict(self) -> Dict[str, Any]:
        result: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, _SpecBase):
                value = value.to_dict()
            result[spec_field.name] = value
        return result

    @classmethod
    def from_dict(cls: Type[_SpecT], payload: Mapping[str, Any]) -> _SpecT:
        _check_keys(payload, {f.name for f in fields(cls)}, cls.__name__)
        return cls(**dict(payload))

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls: Type[_SpecT], text: str) -> _SpecT:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"invalid spec JSON: {error}") from None
        return cls.from_dict(payload)

    def canonical_json(self) -> str:
        """A stable serialisation: equal specs produce identical strings."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def spec_hash(self) -> str:
        """A short stable digest (cache keys, run labels)."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def __hash__(self) -> int:
        return hash(self.canonical_json())


@dataclass(frozen=True)
class TopologySpec(_SpecBase):
    """Which network to build: a registered topology kind plus its params.

    ``kind`` is a key of :data:`repro.api.registry.TOPOLOGIES` (seed library:
    ``"line"``, ``"tree"``, ``"forest"``); ``params`` are passed verbatim to
    the registered builder.
    """

    kind: str = "line"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_str(self.kind, "TopologySpec.kind")
        object.__setattr__(self, "params", _normalize_params(self.params, "topology"))

    # -- convenience constructors ------------------------------------------------

    @classmethod
    def line(cls, num_nodes: int, **params: Any) -> "TopologySpec":
        return cls("line", {"num_nodes": num_nodes, **params})

    @classmethod
    def tree(cls, family: str, **params: Any) -> "TopologySpec":
        return cls("tree", {"family": family, **params})

    @classmethod
    def forest(cls, components: list, **params: Any) -> "TopologySpec":
        return cls("forest", {"components": components, **params})


@dataclass(frozen=True)
class AlgorithmSpec(_SpecBase):
    """Which forwarding algorithm to run: a registered name plus constructor
    params (everything after the topology argument)."""

    name: str = "ppts"
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_str(self.name, "AlgorithmSpec.name")
        object.__setattr__(self, "params", _normalize_params(self.params, "algorithm"))


@dataclass(frozen=True)
class AdversarySpec(_SpecBase):
    """Which injection process to run and its declared envelope.

    ``rho``/``sigma`` are the paper's ``(rho, sigma)``-boundedness parameters
    (Definition 2.1); ``rounds`` is the injection horizon handed to the
    registered builder; ``params`` are builder-specific extras (destination
    counts, seeds, burst periods, ...).
    """

    name: str = "bounded"
    rho: float = 1.0
    sigma: float = 2.0
    rounds: int = 200
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _require_str(self.name, "AdversarySpec.name")
        if not isinstance(self.rho, (int, float)) or not (0 < float(self.rho) <= 1):
            raise SpecError(f"AdversarySpec.rho must be in (0, 1], got {self.rho!r}")
        if not isinstance(self.sigma, (int, float)) or float(self.sigma) < 0:
            raise SpecError(f"AdversarySpec.sigma must be >= 0, got {self.sigma!r}")
        if not isinstance(self.rounds, int) or isinstance(self.rounds, bool) or self.rounds < 0:
            raise SpecError(
                f"AdversarySpec.rounds must be a non-negative int, got {self.rounds!r}"
            )
        object.__setattr__(self, "rho", float(self.rho))
        object.__setattr__(self, "sigma", float(self.sigma))
        object.__setattr__(self, "params", _normalize_params(self.params, "adversary"))


@dataclass(frozen=True)
class RunPolicy(_SpecBase):
    """How the simulator drives and observes the run.

    Attributes
    ----------
    rounds:
        Injection-round override for :meth:`Simulator.run` (``None`` = the
        adversary's horizon).
    drain:
        Keep executing after the horizon until all packets deliver.
    max_drain_rounds:
        Safety cap on drain rounds (``None`` = automatic).
    record_history / record_occupancy_vectors:
        Per-round measurement detail (memory grows with execution length).
    history:
        Retention policy name — ``"full"``, ``"summary"`` or ``"streaming"``
        (:class:`repro.network.events.HistoryPolicy`); ``None`` derives it
        from the two flags above.  ``"streaming"`` keeps a run's memory
        proportional to packets in flight (delivered packets are released,
        the injection log is columnar) — summary statistics are identical to
        the other policies.
    validate_capacity:
        Raise on infeasible activation sets (the paper proves the bundled
        algorithms never produce one; keep on unless profiling).
    seed:
        Per-run RNG seed, forwarded to adversary builders that accept one
        (unless the adversary spec pins its own ``seed`` param).
    checkpoint_every:
        Write a :mod:`repro.checkpoint` snapshot to ``checkpoint_path`` after
        every this-many injection rounds (each save atomically replaces the
        previous one), so a horizon-scale run that dies can be resumed with
        :meth:`repro.api.session.Session.resume`.  Both fields are excluded
        from the resume-identity hash: checkpointing does not change what the
        simulation computes.
    checkpoint_path:
        Where the periodic snapshots go; required when ``checkpoint_every``
        is set.
    shards:
        Partition the line into this many contiguous segments and run one
        engine per worker process (:mod:`repro.network.sharded`).  ``None``
        or ``1`` means single-process.  Sharding never changes what the
        simulation computes — results are bit-identical to ``shards=1`` —
        so, like the checkpoint fields, it is excluded from the
        resume-identity hash.
    recovery:
        What the sharded coordinator does when a segment worker dies or
        stops answering: ``"fail"`` (default) raises the typed
        :class:`~repro.network.errors.WorkerFailedError` immediately,
        ``"restart"`` respawns a replacement worker from the per-segment
        periodic checkpoints and resumes the superstep loop, ``"fold"``
        merges the orphaned segment into a neighbouring worker instead of
        respawning.  Recovery never changes what the simulation computes —
        results are bit-identical to the fault-free run — so all three
        recovery fields are excluded from the resume-identity hash.
    max_worker_restarts:
        Recovery budget: how many worker failures the coordinator absorbs
        before giving up with
        :class:`~repro.network.errors.RecoveryExhaustedError`.
    heartbeat_timeout:
        Seconds the coordinator waits for a worker's phase reply before
        declaring it hung (process transport only; ``None`` waits forever).
    engine:
        Which round engine executes the run: ``None``/``"delta"`` is the
        object engine (:class:`repro.network.simulator.Simulator`),
        ``"batch"`` the vectorized flat-array kernel
        (:mod:`repro.network.batch`), ``"auto"`` tries the batch kernel and
        falls back to the object engine when the scenario is refused with
        :class:`~repro.network.errors.UnbatchableScenarioError`.  The engine
        never changes what the simulation computes — batch results are
        bit-identical to the object engine — so, like the checkpoint and
        sharding fields, both engine fields are excluded from the
        resume-identity hash.
    batch_rounds:
        How many injection rounds the batch kernel advances per array sweep
        before syncing back to object state (checkpoint cadence clamps a
        sweep early so saves still land on exact round boundaries).
    """

    rounds: Optional[int] = None
    drain: bool = True
    max_drain_rounds: Optional[int] = None
    record_history: bool = False
    record_occupancy_vectors: bool = False
    history: Optional[str] = None
    validate_capacity: bool = True
    seed: Optional[int] = None
    checkpoint_every: Optional[int] = None
    checkpoint_path: Optional[str] = None
    shards: Optional[int] = None
    recovery: str = "fail"
    max_worker_restarts: int = 3
    heartbeat_timeout: Optional[float] = None
    engine: Optional[str] = None
    batch_rounds: int = 64

    def __post_init__(self) -> None:
        if self.rounds is not None and (not isinstance(self.rounds, int) or self.rounds < 0):
            raise SpecError(f"RunPolicy.rounds must be None or int >= 0, got {self.rounds!r}")
        if self.max_drain_rounds is not None and (
            not isinstance(self.max_drain_rounds, int) or self.max_drain_rounds < 0
        ):
            raise SpecError(
                f"RunPolicy.max_drain_rounds must be None or int >= 0, "
                f"got {self.max_drain_rounds!r}"
            )
        if self.seed is not None and not isinstance(self.seed, int):
            raise SpecError(f"RunPolicy.seed must be None or int, got {self.seed!r}")
        if self.checkpoint_every is not None and (
            not isinstance(self.checkpoint_every, int) or self.checkpoint_every < 1
        ):
            raise SpecError(
                f"RunPolicy.checkpoint_every must be None or int >= 1, "
                f"got {self.checkpoint_every!r}"
            )
        if self.checkpoint_path is not None and (
            not isinstance(self.checkpoint_path, str) or not self.checkpoint_path
        ):
            raise SpecError(
                f"RunPolicy.checkpoint_path must be None or a non-empty string, "
                f"got {self.checkpoint_path!r}"
            )
        if self.checkpoint_every is not None and self.checkpoint_path is None:
            raise SpecError("RunPolicy.checkpoint_every requires checkpoint_path")
        if self.shards is not None and (
            not isinstance(self.shards, int)
            or isinstance(self.shards, bool)
            or self.shards < 1
        ):
            raise SpecError(
                f"RunPolicy.shards must be None or int >= 1, got {self.shards!r}"
            )
        if self.recovery not in ("fail", "restart", "fold"):
            raise SpecError(
                f"RunPolicy.recovery must be 'fail', 'restart' or 'fold', "
                f"got {self.recovery!r}"
            )
        if (
            not isinstance(self.max_worker_restarts, int)
            or isinstance(self.max_worker_restarts, bool)
            or self.max_worker_restarts < 0
        ):
            raise SpecError(
                f"RunPolicy.max_worker_restarts must be an int >= 0, "
                f"got {self.max_worker_restarts!r}"
            )
        if self.heartbeat_timeout is not None and (
            not isinstance(self.heartbeat_timeout, (int, float))
            or isinstance(self.heartbeat_timeout, bool)
            or self.heartbeat_timeout <= 0
        ):
            raise SpecError(
                f"RunPolicy.heartbeat_timeout must be None or a number > 0 "
                f"seconds, got {self.heartbeat_timeout!r}"
            )
        if self.engine is not None and self.engine not in ("delta", "batch", "auto"):
            raise SpecError(
                f"RunPolicy.engine must be None, 'delta', 'batch' or 'auto', "
                f"got {self.engine!r}"
            )
        if (
            not isinstance(self.batch_rounds, int)
            or isinstance(self.batch_rounds, bool)
            or self.batch_rounds < 1
        ):
            raise SpecError(
                f"RunPolicy.batch_rounds must be an int >= 1, "
                f"got {self.batch_rounds!r}"
            )
        for flag in ("drain", "record_history", "record_occupancy_vectors", "validate_capacity"):
            if not isinstance(getattr(self, flag), bool):
                raise SpecError(f"RunPolicy.{flag} must be a bool")
        if self.history is not None:
            if self.history not in ("full", "summary", "streaming"):
                raise SpecError(
                    f"RunPolicy.history must be None, 'full', 'summary' or "
                    f"'streaming', got {self.history!r}"
                )
            if (
                self.history != "full"
                and (self.record_history or self.record_occupancy_vectors)
            ):
                raise SpecError(
                    f"record_history/record_occupancy_vectors require "
                    f"history='full', got history={self.history!r}"
                )


@dataclass(frozen=True)
class ScenarioSpec(_SpecBase):
    """The full declarative description of one simulation run."""

    topology: TopologySpec = field(default_factory=TopologySpec)
    algorithm: AlgorithmSpec = field(default_factory=AlgorithmSpec)
    adversary: AdversarySpec = field(default_factory=AdversarySpec)
    policy: RunPolicy = field(default_factory=RunPolicy)
    #: Optional human-readable label used in result tables.
    name: Optional[str] = None

    def __post_init__(self) -> None:
        for attr, expected in (
            ("topology", TopologySpec),
            ("algorithm", AlgorithmSpec),
            ("adversary", AdversarySpec),
            ("policy", RunPolicy),
        ):
            if not isinstance(getattr(self, attr), expected):
                raise SpecError(
                    f"ScenarioSpec.{attr} must be a {expected.__name__}, "
                    f"got {type(getattr(self, attr)).__name__}"
                )
        if self.name is not None:
            _require_str(self.name, "ScenarioSpec.name")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        _check_keys(payload, {f.name for f in fields(cls)}, "ScenarioSpec")
        data = dict(payload)
        for attr, spec_cls in (
            ("topology", TopologySpec),
            ("algorithm", AlgorithmSpec),
            ("adversary", AdversarySpec),
            ("policy", RunPolicy),
        ):
            if attr in data and isinstance(data[attr], Mapping):
                data[attr] = spec_cls.from_dict(data[attr])
        return cls(**data)

    @property
    def label(self) -> str:
        """The display name: explicit ``name`` or a compact derived one."""
        if self.name is not None:
            return self.name
        return f"{self.topology.kind}/{self.adversary.name}/{self.algorithm.name}"


# @dataclass(frozen=True, eq=True) generates a field-based __hash__ that would
# choke on the dict-valued ``params`` fields; restore the canonical-JSON hash.
for _spec_cls in (TopologySpec, AlgorithmSpec, AdversarySpec, RunPolicy, ScenarioSpec):
    _spec_cls.__hash__ = _SpecBase.__hash__  # type: ignore[method-assign]
del _spec_cls
