"""Per-packet latency analysis.

The paper's metric is buffer space, but the classical AQT literature it builds
on (Andrews et al.'s ``O(distance + 1/session-rate)`` per-packet delay, the
greedy-protocol delay results) is about latency, and the PTS family trades
latency away deliberately: a packet that never becomes "bad" may sit in a
buffer forever.  These helpers quantify that trade so the E8-style comparisons
can report it honestly.

All functions operate on a finished :class:`~repro.network.simulator.Simulator`
that retains every :class:`~repro.core.packet.Packet` it created (the
``full`` and ``summary`` history policies), not on the summary result,
because latency needs per-packet data.  Streaming simulators release
delivered packets, so these helpers reject them instead of silently
reporting empty statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.packet import PacketState
from ..network.errors import ConfigurationError
from ..network.simulator import Simulator
from .statistics import SeriesSummary, summarise

__all__ = [
    "LatencyBreakdown",
    "latency_breakdown",
    "latency_by_distance",
    "stretch_summary",
    "delivery_rate",
]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Latency statistics of one finished simulation."""

    delivered: int
    undelivered: int
    latency: SeriesSummary
    #: Latency minus the packet's hop distance (queueing delay only).
    queueing_delay: SeriesSummary
    #: latency / max(distance, 1): the per-packet "stretch".
    stretch: SeriesSummary


def _delivered_packets(simulator: Simulator):
    if not simulator.retain_packets:
        raise ConfigurationError(
            "per-packet latency analysis needs a packet-retaining run; this "
            "simulator used history='streaming' (delivered packets were "
            "released) — use the summary statistics on its SimulationResult, "
            "or re-run with history='summary' or 'full'"
        )
    return [
        packet
        for packet in simulator.packets.values()
        if packet.state is PacketState.DELIVERED and packet.latency is not None
    ]


def latency_breakdown(simulator: Simulator) -> LatencyBreakdown:
    """Latency, queueing delay and stretch over all delivered packets."""
    delivered = _delivered_packets(simulator)
    undelivered = len(simulator.packets) - len(delivered)
    latencies = [packet.latency for packet in delivered]
    distances = [abs(packet.destination - packet.source) for packet in delivered]
    # A packet moving every round from its injection round onward arrives
    # after distance - 1 full rounds (it moves in its injection round too), so
    # the queueing delay is latency - (distance - 1).
    queueing = [
        max(0, latency - max(0, distance - 1))
        for latency, distance in zip(latencies, distances)
    ]
    stretch = [
        latency / max(1, distance - 1) if distance > 1 else float(latency + 1)
        for latency, distance in zip(latencies, distances)
    ]
    return LatencyBreakdown(
        delivered=len(delivered),
        undelivered=undelivered,
        latency=summarise(latencies),
        queueing_delay=summarise(queueing),
        stretch=summarise(stretch),
    )


def latency_by_distance(
    simulator: Simulator, *, num_buckets: int = 5
) -> List[Dict[str, object]]:
    """Mean/max latency grouped into distance buckets (rows for a table).

    Useful for eyeballing the ``O(distance + ...)`` shape: with a
    work-conserving algorithm the mean latency should grow roughly linearly
    with the route length.
    """
    delivered = _delivered_packets(simulator)
    if not delivered:
        return []
    distances = [abs(packet.destination - packet.source) for packet in delivered]
    max_distance = max(distances)
    bucket_width = max(1, (max_distance + num_buckets - 1) // num_buckets)
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for packet, distance in zip(delivered, distances):
        low = ((distance - 1) // bucket_width) * bucket_width + 1
        key = (low, low + bucket_width - 1)
        buckets.setdefault(key, []).append(packet.latency)
    rows = []
    for (low, high), values in sorted(buckets.items()):
        summary = summarise(values)
        rows.append(
            {
                "distance": f"{low}-{high}",
                "packets": summary.count,
                "mean_latency": round(summary.mean, 1),
                "max_latency": int(summary.maximum),
            }
        )
    return rows


def stretch_summary(simulator: Simulator) -> Optional[float]:
    """The mean stretch (latency / shortest possible), or ``None`` if nothing delivered."""
    breakdown = latency_breakdown(simulator)
    if breakdown.delivered == 0:
        return None
    return breakdown.stretch.mean


def delivery_rate(simulator: Simulator) -> float:
    """Fraction of injected packets that were delivered (1.0 for drained runs)."""
    if not simulator.retain_packets:
        raise ConfigurationError(
            "delivery_rate needs a packet-retaining run (this simulator used "
            "history='streaming'); read packets_delivered / packets_injected "
            "off its SimulationResult instead"
        )
    total = len(simulator.packets)
    if total == 0:
        return 1.0
    delivered = sum(
        1
        for packet in simulator.packets.values()
        if packet.state is PacketState.DELIVERED
    )
    return delivered / total
