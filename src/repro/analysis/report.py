"""One-stop text reports for a simulation run.

``build_report`` assembles everything a user typically wants to see after one
execution — the headline occupancy vs. the applicable bound, per-node maxima,
delivery and latency statistics, and (when history was recorded) a compact
occupancy trajectory — into a single printable string.  The CLI and the
examples use it; tests treat it as the canonical "human-readable summary" of a
run so its structure stays stable.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.scheduler import ForwardingAlgorithm
from ..network.events import SimulationResult
from ..network.simulator import Simulator
from .latency import latency_breakdown, latency_by_distance
from .metrics import check_against_bound, occupancy_profile
from .tables import format_kv, format_table, render_series

__all__ = ["build_report", "report_sections"]


def report_sections(
    simulator: Simulator,
    result: SimulationResult,
    *,
    sigma: Optional[float] = None,
) -> Dict[str, str]:
    """The individual sections of the report, keyed by heading.

    Separated from :func:`build_report` so callers can pick the pieces they
    need (e.g. only the summary block in a tight loop).
    """
    algorithm: ForwardingAlgorithm = simulator.algorithm
    bound = algorithm.theoretical_bound(sigma) if sigma is not None else None
    check = check_against_bound(result, bound)

    summary = format_kv(
        {
            "algorithm": result.algorithm,
            "nodes": result.num_nodes,
            "rounds executed": result.rounds_executed,
            "packets injected": result.packets_injected,
            "packets delivered": result.packets_delivered,
            "packets undelivered": result.packets_undelivered,
            "drained": result.drained,
            "max occupancy": result.max_occupancy,
            "bound": None if bound is None else round(float(bound), 2),
            "within bound": check.satisfied if bound is not None else None,
            "max staged": result.max_staged,
        },
        title="Summary",
    )

    top_nodes = sorted(
        result.max_occupancy_per_node.items(), key=lambda item: -item[1]
    )[:8]
    hotspots = format_table(
        [{"node": node, "max_occupancy": load} for node, load in top_nodes],
        title="Most loaded buffers",
    )

    breakdown = latency_breakdown(simulator)
    latency = format_kv(
        {
            "delivered": breakdown.delivered,
            "undelivered": breakdown.undelivered,
            "mean latency": round(breakdown.latency.mean, 2),
            "max latency": breakdown.latency.maximum,
            "mean queueing delay": round(breakdown.queueing_delay.mean, 2),
            "mean stretch": round(breakdown.stretch.mean, 2),
        },
        title="Latency",
    )
    by_distance = format_table(
        latency_by_distance(simulator), title="Latency by route length"
    )

    sections: Dict[str, str] = {
        "summary": summary,
        "hotspots": hotspots,
        "latency": latency,
        "latency_by_distance": by_distance,
    }
    profile = occupancy_profile(result, num_buckets=40)
    if profile:
        sections["trajectory"] = render_series(profile, label="max occupancy over time ")
    return sections


def build_report(
    simulator: Simulator,
    result: SimulationResult,
    *,
    sigma: Optional[float] = None,
    title: str = "Simulation report",
) -> str:
    """A complete multi-section text report for one finished run."""
    sections = report_sections(simulator, result, sigma=sigma)
    parts = [title, "=" * len(title), ""]
    order = ["summary", "trajectory", "hotspots", "latency", "latency_by_distance"]
    for key in order:
        if key in sections:
            parts.append(sections[key])
            parts.append("")
    return "\n".join(parts).rstrip() + "\n"
