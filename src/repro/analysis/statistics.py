"""Aggregate statistics over experiment sweeps.

Benchmarks and examples usually report a single deterministic run per
parameter point; for randomized adversaries it is often more informative to
aggregate several seeds.  These helpers compute the usual summary statistics
(numpy-backed) and confidence-style spreads over a collection of
:class:`~repro.experiments.harness.ExperimentRow` or plain numbers, grouped by
arbitrary parameter keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["SeriesSummary", "summarise", "group_by", "aggregate_rows", "linear_fit"]


@dataclass(frozen=True)
class SeriesSummary:
    """Summary statistics of one numeric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p95: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": round(self.mean, 3),
            "std": round(self.std, 3),
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p95": round(self.p95, 3),
        }


def summarise(values: Iterable[float]) -> SeriesSummary:
    """Summary statistics of a numeric series (empty series -> all zeros)."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        return SeriesSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return SeriesSummary(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
        p95=float(np.percentile(array, 95)),
    )


def group_by(
    rows: Iterable[Mapping[str, object]],
    keys: Sequence[str],
) -> Dict[Tuple, List[Mapping[str, object]]]:
    """Group dict rows by the given keys (missing keys group under ``None``)."""
    groups: Dict[Tuple, List[Mapping[str, object]]] = {}
    for row in rows:
        group_key = tuple(row.get(key) for key in keys)
        groups.setdefault(group_key, []).append(row)
    return groups


def aggregate_rows(
    rows: Iterable[Mapping[str, object]],
    group_keys: Sequence[str],
    value_key: str,
    *,
    extractor: Callable[[Mapping[str, object]], float] = None,
) -> List[Dict[str, object]]:
    """Aggregate a value column over groups of rows.

    Returns one output row per group, carrying the group keys plus the summary
    statistics of ``value_key`` (or of ``extractor(row)`` when given).
    """
    result: List[Dict[str, object]] = []
    for group_key, members in sorted(
        group_by(rows, group_keys).items(), key=lambda item: str(item[0])
    ):
        if extractor is not None:
            values = [extractor(row) for row in members]
        else:
            values = [float(row[value_key]) for row in members if row.get(value_key) is not None]
        summary = summarise(values)
        output: Dict[str, object] = dict(zip(group_keys, group_key))
        output.update({f"{value_key}_{k}": v for k, v in summary.as_dict().items()})
        result.append(output)
    return result


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope and intercept of ``ys`` against ``xs``.

    Used by shape checks that assert a measured series grows (near-)linearly —
    e.g. the E2 occupancy-vs-destinations curve.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a line")
    slope, intercept = np.polyfit(np.asarray(xs, dtype=float), np.asarray(ys, dtype=float), 1)
    return float(slope), float(intercept)
