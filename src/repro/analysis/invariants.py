"""Round-by-round invariant checking for the paper's potential arguments.

The correctness proofs of PTS and PPTS rest on two invariants relating
*badness* (packets sitting at position >= 2 of a pseudo-buffer, counted with
everything upstream) to *excess* (how much of the adversary's burst budget is
currently outstanding, Definition 2.2):

* after the injection step:   ``B^t(i)   <= xi_t(i) + 1``
* after the forwarding step:  ``B^{t+}(i) <= xi_t(i)``
* and forwarding never increases badness; it strictly decreases it wherever
  it was positive (Lemma 3.4 / the key step of Prop. 3.2).

:class:`InvariantMonitor` wraps any line algorithm whose pseudo-buffers are
keyed by destination (PTS, PPTS) and records these quantities every round, so
users can check the invariants on their own workloads — the same machinery
the integration tests use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..adversary.base import InjectionPattern
from ..core.badness import line_total_badness
from ..core.excess import ExcessTracker
from ..core.scheduler import Activation, ForwardingAlgorithm
from ..network.simulator import Simulator
from ..network.topology import LineTopology

__all__ = ["InvariantViolation", "InvariantReport", "InvariantMonitor", "check_invariants"]


@dataclass(frozen=True)
class InvariantViolation:
    """One (round, buffer) pair where an invariant failed."""

    round: int
    buffer: int
    #: Which invariant failed: "post-injection", "post-forwarding",
    #: "monotonicity" or "strict-decrease".
    kind: str
    badness: float
    excess: float


@dataclass
class InvariantReport:
    """Outcome of an invariant-checked execution."""

    rounds_checked: int
    violations: List[InvariantViolation] = field(default_factory=list)
    #: max over rounds and buffers of B^t(i) - xi_t(i) (should be <= 1).
    max_badness_minus_excess: float = float("-inf")

    @property
    def ok(self) -> bool:
        """Whether every invariant held on every checked round."""
        return not self.violations


class InvariantMonitor:
    """Wraps a line algorithm to record badness around every forwarding step.

    The wrapped algorithm must key its pseudo-buffers by destination node
    (true for PTS and PPTS).  The monitor itself never changes behaviour: it
    only snapshots ``line_total_badness`` before and after forwarding.
    """

    def __init__(self, algorithm: ForwardingAlgorithm, destinations: Sequence[int]) -> None:
        self.algorithm = algorithm
        self.destinations = list(destinations)
        self.pre_forwarding: List[Dict[int, int]] = []
        self.post_forwarding: List[Dict[int, int]] = []
        self._install()

    def _install(self) -> None:
        original_select = self.algorithm.select_activations
        original_round_end = self.algorithm.on_round_end
        monitor = self

        def wrapped_select(round_number: int) -> List[Activation]:
            monitor.pre_forwarding.append(
                line_total_badness(monitor.algorithm.buffers, monitor.destinations)
            )
            return original_select(round_number)

        def wrapped_round_end(round_number: int) -> None:
            monitor.post_forwarding.append(
                line_total_badness(monitor.algorithm.buffers, monitor.destinations)
            )
            original_round_end(round_number)

        self.algorithm.select_activations = wrapped_select  # type: ignore[method-assign]
        self.algorithm.on_round_end = wrapped_round_end  # type: ignore[method-assign]


def check_invariants(
    topology: LineTopology,
    algorithm: ForwardingAlgorithm,
    pattern: InjectionPattern,
    rho: float,
    *,
    destinations: Optional[Sequence[int]] = None,
    num_rounds: Optional[int] = None,
) -> InvariantReport:
    """Run the algorithm against the pattern and check the potential invariants.

    Parameters
    ----------
    topology, algorithm, pattern:
        The usual simulation ingredients (line topologies only).
    rho:
        The adversary's rate, needed to compute the excess.
    destinations:
        Destination set used for badness accounting; defaults to the pattern's
        destination set.
    num_rounds:
        How many injection rounds to check; defaults to the pattern horizon
        (drain rounds are not checked — the invariants concern loaded rounds).

    Returns
    -------
    InvariantReport
        With one :class:`InvariantViolation` per failed (round, buffer) pair.
    """
    destinations = list(destinations) if destinations is not None else pattern.destinations()
    monitor = InvariantMonitor(algorithm, destinations)
    horizon = num_rounds if num_rounds is not None else pattern.horizon

    simulator = Simulator(topology, algorithm, pattern)
    simulator.run(num_rounds=horizon, drain=False)

    crossings = pattern.crossings_per_round(topology, horizon)
    tracker = ExcessTracker(topology.num_nodes, rho)
    report = InvariantReport(rounds_checked=min(horizon, len(monitor.pre_forwarding)))

    for t in range(report.rounds_checked):
        tracker.observe_round(crossings[t] if t < len(crossings) else {})
        before = monitor.pre_forwarding[t]
        after = monitor.post_forwarding[t]
        for buffer in topology.nodes:
            excess = tracker.excess(buffer)
            badness_before = before.get(buffer, 0)
            badness_after = after.get(buffer, 0)
            report.max_badness_minus_excess = max(
                report.max_badness_minus_excess, badness_before - excess
            )
            if badness_before > excess + 1 + 1e-9:
                report.violations.append(
                    InvariantViolation(t, buffer, "post-injection", badness_before, excess)
                )
            if badness_after > excess + 1e-9:
                report.violations.append(
                    InvariantViolation(t, buffer, "post-forwarding", badness_after, excess)
                )
            if badness_after > badness_before:
                report.violations.append(
                    InvariantViolation(t, buffer, "monotonicity", badness_after, excess)
                )
            if badness_before > 0 and badness_after > badness_before - 1:
                report.violations.append(
                    InvariantViolation(t, buffer, "strict-decrease", badness_after, excess)
                )
    return report
