"""Space-bandwidth tradeoff analysis (Section 1 "Implications", experiment E7).

The paper's headline interpretation: if the number of distinct destinations in
a line system grows by a factor ``alpha`` at unchanged per-link load, a system
designer can either

* multiply every buffer by ``alpha`` (stick with PPTS), or
* multiply both buffer space *and* link bandwidth by ``O(log alpha)``
  (run HPTS with ``ceil(log2 alpha)`` levels, whose time-division multiplexing
  needs that many "virtual links" per physical link at the original rate).

This module computes both sides of the tradeoff analytically (from the bounds)
and empirically (by simulating PPTS vs HPTS on scaled destination sets), and
produces the crossover summary the E7 benchmark prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core import bounds

__all__ = ["TradeoffPoint", "analytic_tradeoff_curve", "empirical_tradeoff_point"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One row of the space-bandwidth tradeoff table."""

    scale_factor: float
    destinations: int
    space_only_buffers: float
    space_bandwidth_buffers: float
    bandwidth_multiplier: int
    #: Ratio of the two buffer costs (> 1 means the bandwidth route is cheaper in space).
    space_saving: float


def analytic_tradeoff_curve(
    base_destinations: int,
    scale_factors: List[float],
    sigma: float,
    rho: float,
) -> List[TradeoffPoint]:
    """The tradeoff computed purely from the paper's bounds."""
    points: List[TradeoffPoint] = []
    for alpha in scale_factors:
        row = bounds.bandwidth_space_tradeoff(base_destinations, alpha, sigma, rho)
        space_only = float(row["space_only_buffers"])
        space_bandwidth = float(row["space_bandwidth_buffers"])
        points.append(
            TradeoffPoint(
                scale_factor=alpha,
                destinations=int(row["scaled_destinations"]),
                space_only_buffers=space_only,
                space_bandwidth_buffers=space_bandwidth,
                bandwidth_multiplier=int(row["bandwidth_multiplier"]),
                space_saving=space_only / space_bandwidth if space_bandwidth else 0.0,
            )
        )
    return points


def empirical_tradeoff_point(
    num_nodes: int,
    num_destinations: int,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    levels: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Measure the tradeoff on a concrete workload.

    Runs the round-robin destination stress (the workload that forces the
    ``+ d`` term) against PPTS at full rate, and against HPTS at the reduced
    per-level rate ``rho / ell`` (modelling the ``ell``-fold bandwidth
    expansion as an ``ell``-fold rate reduction on each virtual link).

    Returns a dict row with the measured occupancies and the matching bounds.
    """
    if levels is None:
        levels = max(1, math.ceil(math.log2(max(2, num_destinations))))
    # Choose an HPTS-compatible line length: smallest m with m**levels >= n.
    branching = max(2, math.ceil(num_nodes ** (1.0 / levels)))
    hpts_nodes = branching**levels

    # Imported lazily: repro.api pulls in this module via repro.analysis, so a
    # top-level import would be circular.
    from ..api.builder import Scenario
    from ..api.session import Session

    session = Session()

    # PPTS at the original rate on the original line.
    ppts_spec = (
        Scenario.line(num_nodes)
        .algorithm("ppts")
        .adversary(
            "round-robin", rho=rho, sigma=sigma, rounds=num_rounds,
            num_destinations=num_destinations,
        )
        .build()
    )

    # HPTS with ell levels: each level's time slice sees rate rho / ell.
    hpts_rho = min(1.0 / levels, rho)
    hpts_spec = (
        Scenario.line(hpts_nodes)
        .algorithm("hpts", levels=levels, branching=branching, rho=hpts_rho)
        .adversary(
            "round-robin", rho=hpts_rho, sigma=sigma, rounds=num_rounds,
            num_destinations=num_destinations,
        )
        .build()
    )
    ppts_report, hpts_report = session.run_many([ppts_spec, hpts_spec])

    return {
        "destinations": num_destinations,
        "levels": levels,
        "ppts_measured": ppts_report.result.max_occupancy,
        "ppts_bound": bounds.ppts_upper_bound(num_destinations, sigma),
        "hpts_measured": hpts_report.result.max_occupancy,
        "hpts_bound": bounds.hpts_upper_bound(hpts_nodes, levels, sigma),
        "bandwidth_multiplier": levels,
    }
