"""Space-bandwidth tradeoff analysis (Section 1 "Implications", experiment E7).

The paper's headline interpretation: if the number of distinct destinations in
a line system grows by a factor ``alpha`` at unchanged per-link load, a system
designer can either

* multiply every buffer by ``alpha`` (stick with PPTS), or
* multiply both buffer space *and* link bandwidth by ``O(log alpha)``
  (run HPTS with ``ceil(log2 alpha)`` levels, whose time-division multiplexing
  needs that many "virtual links" per physical link at the original rate).

This module computes both sides of the tradeoff analytically (from the bounds)
and empirically (by simulating PPTS vs HPTS on scaled destination sets), and
produces the crossover summary the E7 benchmark prints.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..adversary.stress import round_robin_destination_stress
from ..core import bounds
from ..core.hpts import HierarchicalPeakToSink
from ..core.ppts import ParallelPeakToSink
from ..network.simulator import run_simulation
from ..network.topology import LineTopology

__all__ = ["TradeoffPoint", "analytic_tradeoff_curve", "empirical_tradeoff_point"]


@dataclass(frozen=True)
class TradeoffPoint:
    """One row of the space-bandwidth tradeoff table."""

    scale_factor: float
    destinations: int
    space_only_buffers: float
    space_bandwidth_buffers: float
    bandwidth_multiplier: int
    #: Ratio of the two buffer costs (> 1 means the bandwidth route is cheaper in space).
    space_saving: float


def analytic_tradeoff_curve(
    base_destinations: int,
    scale_factors: List[float],
    sigma: float,
    rho: float,
) -> List[TradeoffPoint]:
    """The tradeoff computed purely from the paper's bounds."""
    points: List[TradeoffPoint] = []
    for alpha in scale_factors:
        row = bounds.bandwidth_space_tradeoff(base_destinations, alpha, sigma, rho)
        space_only = float(row["space_only_buffers"])
        space_bandwidth = float(row["space_bandwidth_buffers"])
        points.append(
            TradeoffPoint(
                scale_factor=alpha,
                destinations=int(row["scaled_destinations"]),
                space_only_buffers=space_only,
                space_bandwidth_buffers=space_bandwidth,
                bandwidth_multiplier=int(row["bandwidth_multiplier"]),
                space_saving=space_only / space_bandwidth if space_bandwidth else 0.0,
            )
        )
    return points


def empirical_tradeoff_point(
    num_nodes: int,
    num_destinations: int,
    rho: float,
    sigma: float,
    num_rounds: int,
    *,
    levels: Optional[int] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Measure the tradeoff on a concrete workload.

    Runs the round-robin destination stress (the workload that forces the
    ``+ d`` term) against PPTS at full rate, and against HPTS at the reduced
    per-level rate ``rho / ell`` (modelling the ``ell``-fold bandwidth
    expansion as an ``ell``-fold rate reduction on each virtual link).

    Returns a dict row with the measured occupancies and the matching bounds.
    """
    if levels is None:
        levels = max(1, math.ceil(math.log2(max(2, num_destinations))))
    # Choose an HPTS-compatible line length: smallest m with m**levels >= n.
    branching = max(2, math.ceil(num_nodes ** (1.0 / levels)))
    hpts_nodes = branching**levels

    # PPTS at the original rate on the original line.
    ppts_line = LineTopology(num_nodes)
    ppts_pattern = round_robin_destination_stress(
        ppts_line, rho, sigma, num_rounds, num_destinations
    )
    ppts_result = run_simulation(
        ppts_line, ParallelPeakToSink(ppts_line), ppts_pattern
    )

    # HPTS with ell levels: each level's time slice sees rate rho / ell.
    hpts_line = LineTopology(hpts_nodes)
    hpts_rho = min(1.0 / levels, rho)
    hpts_pattern = round_robin_destination_stress(
        hpts_line, hpts_rho, sigma, num_rounds, num_destinations
    )
    hpts_result = run_simulation(
        hpts_line,
        HierarchicalPeakToSink(hpts_line, levels, branching, rho=hpts_rho),
        hpts_pattern,
    )

    return {
        "destinations": num_destinations,
        "levels": levels,
        "ppts_measured": ppts_result.max_occupancy,
        "ppts_bound": bounds.ppts_upper_bound(num_destinations, sigma),
        "hpts_measured": hpts_result.max_occupancy,
        "hpts_bound": bounds.hpts_upper_bound(hpts_nodes, levels, sigma),
        "bandwidth_multiplier": levels,
    }
