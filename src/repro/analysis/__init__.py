"""Analysis utilities: metrics, tables, invariants, statistics and the tradeoff."""

from .invariants import (
    InvariantMonitor,
    InvariantReport,
    InvariantViolation,
    check_invariants,
)
from .latency import (
    LatencyBreakdown,
    delivery_rate,
    latency_breakdown,
    latency_by_distance,
    stretch_summary,
)
from .metrics import (
    BoundCheck,
    check_against_bound,
    comparison_table,
    occupancy_profile,
    relative_gap,
)
from .report import build_report, report_sections
from .statistics import SeriesSummary, aggregate_rows, group_by, linear_fit, summarise
from .tables import format_kv, format_table, render_series
from .tradeoff import TradeoffPoint, analytic_tradeoff_curve, empirical_tradeoff_point

__all__ = [
    "InvariantMonitor",
    "InvariantReport",
    "InvariantViolation",
    "check_invariants",
    "LatencyBreakdown",
    "delivery_rate",
    "latency_breakdown",
    "latency_by_distance",
    "stretch_summary",
    "BoundCheck",
    "check_against_bound",
    "comparison_table",
    "occupancy_profile",
    "relative_gap",
    "build_report",
    "report_sections",
    "SeriesSummary",
    "aggregate_rows",
    "group_by",
    "linear_fit",
    "summarise",
    "format_kv",
    "format_table",
    "render_series",
    "TradeoffPoint",
    "analytic_tradeoff_curve",
    "empirical_tradeoff_point",
]
