"""Plain-text table rendering for benchmark and example output.

The benchmarks print the same rows/series the paper's results state, so the
formatter favours alignment and stable column order over fancy styling.  Only
the standard library is used; output renders identically in CI logs and
terminals.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_kv", "render_series"]


def _stringify(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    *,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Parameters
    ----------
    rows:
        One dict per row.  Missing keys render as ``-``.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    column_names = list(columns) if columns is not None else list(rows[0].keys())
    header = [str(name) for name in column_names]
    body = [[_stringify(row.get(name)) for name in column_names] for row in rows]
    widths = [
        max(len(header[idx]), *(len(line[idx]) for line in body))
        for idx in range(len(header))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(header[idx].ljust(widths[idx]) for idx in range(len(header))))
    lines.append(separator)
    for line in body:
        lines.append(" | ".join(line[idx].ljust(widths[idx]) for idx in range(len(header))))
    return "\n".join(lines)


def format_kv(pairs: Dict[str, object], *, title: Optional[str] = None) -> str:
    """Render a key/value mapping as aligned ``key: value`` lines."""
    if not pairs:
        return (title + "\n" if title else "") + "(empty)"
    width = max(len(str(key)) for key in pairs)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in pairs.items():
        lines.append(f"{str(key).ljust(width)} : {_stringify(value)}")
    return "\n".join(lines)


def render_series(values: Iterable[float], *, width: int = 40, label: str = "") -> str:
    """A one-line sparkline-style bar rendering of a numeric series.

    Handy for showing occupancy trajectories in text output without plotting
    dependencies.
    """
    values = list(values)
    if not values:
        return f"{label}(empty)"
    peak = max(values) or 1
    blocks = " .:-=+*#%@"
    scaled = [blocks[min(len(blocks) - 1, int(v / peak * (len(blocks) - 1)))] for v in values]
    if len(scaled) > width:
        stride = len(scaled) / width
        scaled = [scaled[int(i * stride)] for i in range(width)]
    return f"{label}[{''.join(scaled)}] peak={peak}"
