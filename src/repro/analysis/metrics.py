"""Derived metrics over simulation results.

These helpers turn :class:`~repro.network.events.SimulationResult` objects
into the numbers the benchmarks report: bound slack, occupancy profiles,
latency statistics and cross-algorithm comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..network.events import SimulationResult

__all__ = [
    "BoundCheck",
    "check_against_bound",
    "occupancy_profile",
    "comparison_table",
    "relative_gap",
]


@dataclass(frozen=True)
class BoundCheck:
    """The measured max occupancy next to a theoretical bound."""

    measured: int
    bound: float
    #: ``measured <= bound`` (with a tiny tolerance for float bounds).
    satisfied: bool
    #: ``bound - measured``: unused headroom (negative means violation).
    slack: float
    #: ``measured / bound``: how much of the bound the workload actually used.
    utilisation: float


def check_against_bound(result: SimulationResult, bound: Optional[float]) -> BoundCheck:
    """Compare a run's max occupancy against a closed-form bound.

    ``bound`` may be ``None`` (no bound applies, e.g. greedy baselines); the
    check is then trivially "satisfied" with zero utilisation so tables still
    have something to print.
    """
    measured = result.max_occupancy
    if bound is None:
        return BoundCheck(
            measured=measured, bound=float("inf"), satisfied=True, slack=float("inf"),
            utilisation=0.0,
        )
    return BoundCheck(
        measured=measured,
        bound=float(bound),
        satisfied=measured <= bound + 1e-9,
        slack=float(bound) - measured,
        utilisation=measured / bound if bound > 0 else 0.0,
    )


def occupancy_profile(result: SimulationResult, num_buckets: int = 10) -> List[int]:
    """Max occupancy per time bucket (coarse trajectory for reports).

    Requires the result to carry history; returns an empty list otherwise.
    """
    timeline = result.occupancy_timeline()
    if not timeline or num_buckets <= 0:
        return []
    bucket_size = max(1, len(timeline) // num_buckets)
    profile = []
    for start in range(0, len(timeline), bucket_size):
        profile.append(max(timeline[start : start + bucket_size]))
    return profile


def relative_gap(baseline: SimulationResult, candidate: SimulationResult) -> float:
    """``baseline.max_occupancy / candidate.max_occupancy`` (>1 means candidate wins).

    Returns ``inf`` when the candidate held no packets at all (degenerate runs).
    """
    if candidate.max_occupancy == 0:
        return float("inf")
    return baseline.max_occupancy / candidate.max_occupancy


def comparison_table(
    results: Iterable[SimulationResult],
    bounds: Optional[Dict[str, Optional[float]]] = None,
) -> List[Dict[str, object]]:
    """Rows comparing several algorithms on the same workload.

    ``bounds`` optionally maps algorithm name to its theoretical bound so the
    table can show bound columns alongside the measurements.
    """
    rows: List[Dict[str, object]] = []
    for result in results:
        bound = (bounds or {}).get(result.algorithm)
        check = check_against_bound(result, bound)
        rows.append(
            {
                "algorithm": result.algorithm,
                "max_occupancy": result.max_occupancy,
                "bound": None if bound is None else round(float(bound), 2),
                "within_bound": check.satisfied,
                "delivered": result.packets_delivered,
                "max_latency": result.max_latency,
                "mean_latency": None
                if result.mean_latency is None
                else round(result.mean_latency, 1),
            }
        )
    return rows


def max_occupancy_series(results: Sequence[SimulationResult]) -> List[int]:
    """The max-occupancy column of a sweep (convenience for plotting/benchmarks)."""
    return [result.max_occupancy for result in results]
