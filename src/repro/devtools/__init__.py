"""Developer tooling for the repro engine.

Nothing in this package is imported by the runtime engine; it exists so
contracts that the engine relies on (determinism, ``__slots__`` discipline,
checkpoint coverage, sharding hooks) can be checked mechanically.  See
:mod:`repro.devtools.lint` and ``docs/LINTING.md``.
"""

__all__ = ["lint"]
