"""Command-line entry point: ``python -m repro.devtools.lint``.

Exit codes are CI-friendly: 0 = clean (modulo the committed baseline),
1 = non-baselined findings, 2 = usage or internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .framework import RULES, Baseline, Finding, LintConfig, run_lint
from . import rules as _rules  # noqa: F401  (importing registers the rules)

__all__ = ["main", "build_doc_surfaces"]

DEFAULT_BASELINE = "lint_baseline.json"


def build_doc_surfaces(targets: Sequence[Path], docs_dirs: Sequence[Path]) -> Dict[str, str]:
    """Collect the user-facing texts RPR005 searches for registered names.

    The CLI module inside the analysed tree counts (its help strings are a
    discovery surface), plus every markdown file in the given docs
    directories and a top-level README next to them.
    """
    surfaces: Dict[str, str] = {}
    for target in targets:
        root = target if target.is_dir() else target.parent
        for candidate in sorted(root.rglob("cli.py")):
            surfaces[candidate.as_posix()] = candidate.read_text(encoding="utf-8")
    for docs_dir in docs_dirs:
        if not docs_dir.is_dir():
            continue
        for markdown in sorted(docs_dir.glob("*.md")):
            surfaces[markdown.as_posix()] = markdown.read_text(encoding="utf-8")
        readme = docs_dir.parent / "README.md"
        if readme.exists():
            surfaces[readme.as_posix()] = readme.read_text(encoding="utf-8")
    return surfaces


def _default_docs_dirs(targets: Sequence[Path]) -> List[Path]:
    dirs = [Path("docs")]
    for target in targets:
        # src/repro -> <repo>/docs when invoked from elsewhere.
        dirs.append(target.resolve().parent.parent / "docs")
    unique: List[Path] = []
    seen = set()
    for d in dirs:
        key = d.resolve() if d.exists() else d
        if key not in seen:
            seen.add(key)
            unique.append(d)
    return unique


def _print_stats(result, baseline: Baseline, stream) -> None:
    codes = sorted(set(result.per_rule_active) | set(result.per_rule_baselined) | set(RULES))
    stream.write("rule      active  baselined  description\n")
    for code in codes:
        spec = RULES.get(code)
        summary = spec.summary if spec else "(parse failures)"
        stream.write(
            f"{code:<8}  {result.per_rule_active.get(code, 0):>6}  "
            f"{result.per_rule_baselined.get(code, 0):>9}  {summary[:70]}\n"
        )
    debt = len(result.baselined)
    stream.write(
        f"\nbaseline debt: {debt} finding(s) grandfathered, "
        f"{len(result.stale_baseline)} stale entr{'y' if len(result.stale_baseline) == 1 else 'ies'}\n"
    )
    for entry in result.stale_baseline:
        stream.write(
            f"  stale: {entry.code} {entry.path} [{entry.symbol}] — remove from baseline\n"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "Contract linter for the repro engine: determinism (RPR001), "
            "__slots__ (RPR002), checkpoint coverage (RPR003), sharding hooks "
            "(RPR004), registry hygiene (RPR005), error discipline (RPR006) "
            "and frozen-spec mutation (RPR007).  See docs/LINTING.md."
        ),
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", help="output format"
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding as active)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current active findings to the baseline file and "
        "exit 0 (requires --justification)",
    )
    parser.add_argument(
        "--justification",
        default=None,
        metavar="TEXT",
        help="why the baselined findings are acceptable debt; recorded on "
        "every entry written by --write-baseline (required with it, must "
        "be non-empty)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and baseline debt",
    )
    parser.add_argument(
        "--docs-dir",
        action="append",
        default=None,
        help="documentation directory searched by RPR005 (repeatable; "
        "default: ./docs and <target>/../../docs)",
    )
    args = parser.parse_args(argv)

    if args.write_baseline:
        # A baseline entry without a reason is unpayable debt: nobody can
        # later tell whether it is still justified.  Refuse up front.
        if args.justification is None or not args.justification.strip():
            parser.error(
                "--write-baseline requires --justification TEXT explaining "
                "why the grandfathered findings are acceptable (empty "
                "strings are rejected)"
            )
    elif args.justification is not None:
        parser.error("--justification only makes sense with --write-baseline")

    targets = [Path(p) for p in args.paths]
    for target in targets:
        if not target.exists():
            parser.error(f"path does not exist: {target}")

    select = None
    if args.select:
        select = [code.strip().upper() for code in args.select.split(",") if code.strip()]
        unknown = [code for code in select if code not in RULES]
        if unknown:
            parser.error(f"unknown rule code(s): {', '.join(unknown)}")

    baseline_path = Path(args.baseline)
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)
    docs_dirs = [Path(d) for d in args.docs_dir] if args.docs_dir else _default_docs_dirs(targets)
    doc_surfaces = build_doc_surfaces(targets, docs_dirs)

    result = run_lint(
        targets,
        config=LintConfig(),
        baseline=baseline,
        doc_surfaces=doc_surfaces,
        select=select,
    )

    if args.write_baseline:
        Baseline.write(
            baseline_path, result.active, justification=args.justification.strip()
        )
        sys.stdout.write(
            f"wrote {len(result.active)} finding(s) to {baseline_path} "
            f"(justification: {args.justification.strip()})\n"
        )
        return 0

    if args.format == "json":
        payload = {
            "findings": [f.to_json() for f in result.active],
            "baselined": [f.to_json() for f in result.baselined],
            "stale_baseline": [
                {"code": e.code, "path": e.path, "symbol": e.symbol}
                for e in result.stale_baseline
            ],
            "stats": {
                "active": result.per_rule_active,
                "baselined": result.per_rule_baselined,
            },
            "exit_code": result.exit_code,
        }
        sys.stdout.write(json.dumps(payload, indent=2) + "\n")
    else:
        for finding in result.active:
            sys.stdout.write(finding.render() + "\n")
        if result.active:
            sys.stdout.write(f"\n{len(result.active)} finding(s)\n")
        else:
            sys.stdout.write("clean\n")
        if result.baselined:
            sys.stdout.write(
                f"({len(result.baselined)} baselined finding(s) not shown; "
                "run with --stats for debt)\n"
            )
        if args.stats:
            sys.stdout.write("\n")
    if args.stats and args.format == "text":
        _print_stats(result, baseline, sys.stdout)

    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
